//! Single-head self-attention with hand-written backward.
//!
//! The transformer stand-ins (ViT/BERT tiny) treat each example as a
//! `[seq, hidden]` matrix flattened into one row of the batch tensor.

use swift_tensor::{matmul, matmul_a_bt, matmul_at_b, CounterRng, Tensor};

use crate::layer::{ActivationCache, Layer, Mode, StepCtx};

/// Multi-head scaled-dot-product self-attention (single-head when
/// `heads == 1`).
///
/// Per example `X ∈ [S, H]` and per head `h` over slice `H_h = H/heads`:
/// `Q_h = XW_q[:, h]`, `K_h`, `V_h` likewise,
/// `A_h = softmax(Q_h K_hᵀ/√H_h)`, `Y = concat_h(A_h V_h) W_o`.
#[derive(Debug)]
pub struct SelfAttention {
    name: String,
    seq: usize,
    hidden: usize,
    heads: usize,
    /// `[Wq, Wk, Wv, Wo]` — contiguous so [`Layer::params`] borrows.
    params: [Tensor; 4],
    /// The matching gradients, aligned with `params`.
    grads: [Tensor; 4],
    /// Caches X, Q, K, V, A, Z stacked over the batch.
    cache: ActivationCache,
}

const WQ: usize = 0;
const WK: usize = 1;
const WV: usize = 2;
const WO: usize = 3;

/// Cached tensors are stacked along a synthetic leading axis; we pack the
/// six of them into one tensor to reuse the single-slot cache:
/// `[6, B*S, max(H, S)]` would waste space, so instead we keep a private
/// struct serialized as separate cache entries keyed by sub-tags.
#[derive(Debug, Clone)]
struct AttnCacheEntry {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    a: Tensor,
    z: Tensor,
}

impl SelfAttention {
    /// Creates a single-head self-attention layer for sequences of `seq`
    /// tokens with `hidden` channels.
    pub fn new(name: impl Into<String>, seq: usize, hidden: usize, rng: &mut CounterRng) -> Self {
        Self::multi_head(name, seq, hidden, 1, rng)
    }

    /// Creates a multi-head self-attention layer; `hidden` must divide
    /// evenly by `heads`.
    pub fn multi_head(
        name: impl Into<String>,
        seq: usize,
        hidden: usize,
        heads: usize,
        rng: &mut CounterRng,
    ) -> Self {
        assert!(
            heads >= 1 && hidden.is_multiple_of(heads),
            "hidden must split evenly across heads"
        );
        let bound = (1.0 / hidden as f32).sqrt();
        let mut w = || Tensor::uniform([hidden, hidden], -bound, bound, rng);
        let g = || Tensor::zeros([hidden, hidden]);
        SelfAttention {
            name: name.into(),
            seq,
            hidden,
            heads,
            params: [w(), w(), w(), w()],
            grads: [g(), g(), g(), g()],
            cache: ActivationCache::new(),
        }
    }

    fn batch_of(&self, input: &Tensor) -> usize {
        let n = input.numel();
        let per = self.seq * self.hidden;
        assert_eq!(n % per, 0, "input is not a multiple of seq×hidden");
        n / per
    }

    fn example(&self, t: &Tensor, b: usize) -> Tensor {
        let per = self.seq * self.hidden;
        Tensor::from_vec(
            [self.seq, self.hidden],
            t.data()[b * per..(b + 1) * per].to_vec(),
        )
    }
}

/// Copies columns `[start, start+width)` of a `[rows, _]` matrix.
fn col_slice(t: &Tensor, start: usize, width: usize) -> Tensor {
    let (rows, cols) = t.shape().as_matrix();
    let mut out = vec![0.0f32; rows * width];
    for r in 0..rows {
        out[r * width..(r + 1) * width]
            .copy_from_slice(&t.data()[r * cols + start..r * cols + start + width]);
    }
    Tensor::from_vec([rows, width], out)
}

/// Writes `src` (`[rows, width]`) into columns starting at `start`.
fn write_col_slice(dst: &mut Tensor, start: usize, src: &Tensor) {
    let (rows, cols) = dst.shape().as_matrix();
    let (srows, width) = src.shape().as_matrix();
    assert_eq!(rows, srows);
    for r in 0..rows {
        dst.data_mut()[r * cols + start..r * cols + start + width]
            .copy_from_slice(&src.data()[r * width..(r + 1) * width]);
    }
}

// Private cache storage: flatten the six tensors into one payload tensor.
fn pack(entry: &AttnCacheEntry) -> Tensor {
    let mut data = Vec::new();
    for t in [&entry.x, &entry.q, &entry.k, &entry.v, &entry.a, &entry.z] {
        data.extend_from_slice(t.data());
    }
    Tensor::from_vec([data.len()], data)
}

fn unpack(t: &Tensor, b: usize, s: usize, h: usize, heads: usize) -> AttnCacheEntry {
    let sh = b * s * h;
    let ss = b * s * s * heads;
    let d = t.data();
    let mut off = 0usize;
    let mut take = |n: usize, shape: Vec<usize>| {
        let out = Tensor::from_vec(shape, d[off..off + n].to_vec());
        off += n;
        out
    };
    AttnCacheEntry {
        x: take(sh, vec![b * s, h]),
        q: take(sh, vec![b * s, h]),
        k: take(sh, vec![b * s, h]),
        v: take(sh, vec![b * s, h]),
        a: take(ss, vec![b * s, heads * s]),
        z: take(sh, vec![b * s, h]),
    }
}

impl Layer for SelfAttention {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor {
        let b = self.batch_of(input);
        let (s, h) = (self.seq, self.hidden);
        let scale = 1.0 / (h as f32 / self.heads as f32).sqrt();
        let mut y_data = Vec::with_capacity(b * s * h);
        let mut xs = Vec::with_capacity(b * s * h);
        let mut qs = Vec::with_capacity(b * s * h);
        let mut ks = Vec::with_capacity(b * s * h);
        let mut vs = Vec::with_capacity(b * s * h);
        let mut as_ = Vec::with_capacity(b * s * s);
        let mut zs = Vec::with_capacity(b * s * h);
        for e in 0..b {
            let x = self.example(input, e);
            let q = matmul(&x, &self.params[WQ]);
            let k = matmul(&x, &self.params[WK]);
            let v = matmul(&x, &self.params[WV]);
            // Per-head attention over column slices of Q/K/V.
            let hh = h / self.heads;
            let mut a = Tensor::zeros([s, self.heads * s]);
            let mut z = Tensor::zeros([s, h]);
            for head in 0..self.heads {
                let qh = col_slice(&q, head * hh, hh);
                let kh = col_slice(&k, head * hh, hh);
                let vh = col_slice(&v, head * hh, hh);
                let ah = matmul_a_bt(&qh, &kh).scale(scale).softmax_rows();
                let zh = matmul(&ah, &vh);
                write_col_slice(&mut a, head * s, &ah);
                write_col_slice(&mut z, head * hh, &zh);
            }
            let y = matmul(&z, &self.params[WO]);
            y_data.extend_from_slice(y.data());
            if mode == Mode::Train {
                xs.extend_from_slice(x.data());
                qs.extend_from_slice(q.data());
                ks.extend_from_slice(k.data());
                vs.extend_from_slice(v.data());
                as_.extend_from_slice(a.data());
                zs.extend_from_slice(z.data());
            }
        }
        if mode == Mode::Train {
            let entry = AttnCacheEntry {
                x: Tensor::from_vec([b * s, h], xs),
                q: Tensor::from_vec([b * s, h], qs),
                k: Tensor::from_vec([b * s, h], ks),
                v: Tensor::from_vec([b * s, h], vs),
                a: Tensor::from_vec([b * s, self.heads * s], as_),
                z: Tensor::from_vec([b * s, h], zs),
            };
            self.cache.put(ctx, pack(&entry));
        }
        Tensor::from_vec([b, s * h], y_data)
    }

    fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor {
        let b = self.batch_of(grad_out);
        let (s, h) = (self.seq, self.hidden);
        let hh = h / self.heads;
        let scale = 1.0 / (hh as f32).sqrt();
        let packed = self.cache.take(ctx);
        let cache = unpack(&packed, b, s, h, self.heads);
        let mut dx_data = Vec::with_capacity(b * s * h);
        for e in 0..b {
            let slice_sh = |t: &Tensor| {
                Tensor::from_vec([s, h], t.data()[e * s * h..(e + 1) * s * h].to_vec())
            };
            let x = slice_sh(&cache.x);
            let q = slice_sh(&cache.q);
            let k = slice_sh(&cache.k);
            let v = slice_sh(&cache.v);
            let z = slice_sh(&cache.z);
            let per_a = s * self.heads * s;
            let a_all = Tensor::from_vec(
                [s, self.heads * s],
                cache.a.data()[e * per_a..(e + 1) * per_a].to_vec(),
            );
            let dy = self.example(grad_out, e);
            // Y = Z Wo
            self.grads[WO].add_inplace(&matmul_at_b(&z, &dy));
            let dz = matmul_a_bt(&dy, &self.params[WO]); // dy · Woᵀ
                                                         // Per-head backward through Z_h = A_h V_h and the softmax.
            let mut dq = Tensor::zeros([s, h]);
            let mut dk = Tensor::zeros([s, h]);
            let mut dv = Tensor::zeros([s, h]);
            for head in 0..self.heads {
                let a = col_slice(&a_all, head * s, s);
                let qh = col_slice(&q, head * hh, hh);
                let kh = col_slice(&k, head * hh, hh);
                let vh = col_slice(&v, head * hh, hh);
                let dzh = col_slice(&dz, head * hh, hh);
                let da = matmul_a_bt(&dzh, &vh); // dz_h · V_hᵀ
                let dvh = matmul_at_b(&a, &dzh); // A_hᵀ dz_h
                                                 // softmax backward, row-wise
                let mut dsm = Tensor::zeros([s, s]);
                for r in 0..s {
                    let a_row = &a.data()[r * s..(r + 1) * s];
                    let da_row = &da.data()[r * s..(r + 1) * s];
                    let dot: f32 = a_row.iter().zip(da_row.iter()).map(|(x, y)| x * y).sum();
                    let out = &mut dsm.data_mut()[r * s..(r + 1) * s];
                    for c in 0..s {
                        out[c] = a_row[c] * (da_row[c] - dot);
                    }
                }
                let dscores = dsm.scale(scale);
                // scores = Q_h K_hᵀ
                let dqh = matmul(&dscores, &kh);
                let dkh = matmul_at_b(&dscores, &qh);
                write_col_slice(&mut dq, head * hh, &dqh);
                write_col_slice(&mut dk, head * hh, &dkh);
                write_col_slice(&mut dv, head * hh, &dvh);
            }
            // Q = X Wq etc.
            self.grads[WQ].add_inplace(&matmul_at_b(&x, &dq));
            self.grads[WK].add_inplace(&matmul_at_b(&x, &dk));
            self.grads[WV].add_inplace(&matmul_at_b(&x, &dv));
            let mut dx = matmul_a_bt(&dq, &self.params[WQ]);
            dx.add_inplace(&matmul_a_bt(&dk, &self.params[WK]));
            dx.add_inplace(&matmul_a_bt(&dv, &self.params[WV]));
            dx_data.extend_from_slice(dx.data());
        }
        Tensor::from_vec([b, s * h], dx_data)
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        &mut self.params
    }

    fn grads(&self) -> &[Tensor] {
        &self.grads
    }

    fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut self.grads
    }

    fn params_and_grads_mut(&mut self) -> (&mut [Tensor], &[Tensor]) {
        (&mut self.params, &self.grads)
    }

    fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::numeric_grad_check;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = CounterRng::new(0, 0);
        let mut attn = SelfAttention::new("a", 4, 8, &mut rng);
        let x = Tensor::randn([3, 32], 0.0, 1.0, &mut rng);
        let y = attn.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[3, 32]);
    }

    #[test]
    fn attention_rows_mix_values() {
        // With uniform attention-ish small weights, output should blend
        // token values — a constant input stays constant.
        let mut rng = CounterRng::new(1, 0);
        let mut attn = SelfAttention::new("a", 3, 4, &mut rng);
        let x = Tensor::ones([1, 12]);
        let y = attn.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        // All tokens identical → all output tokens identical.
        let t0: Vec<f32> = y.data()[0..4].to_vec();
        let t1: Vec<f32> = y.data()[4..8].to_vec();
        for (a, b) in t0.iter().zip(t1.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_check_small() {
        let mut rng = CounterRng::new(2, 0);
        let attn = SelfAttention::new("a", 3, 4, &mut rng);
        numeric_grad_check(Box::new(attn), 2, 12, 8e-2);
    }

    #[test]
    fn grads_zeroable() {
        let mut rng = CounterRng::new(3, 0);
        let mut attn = SelfAttention::new("a", 2, 4, &mut rng);
        let ctx = StepCtx::new(0, 0);
        let x = Tensor::randn([2, 8], 0.0, 1.0, &mut rng);
        attn.forward(ctx, &x, Mode::Train);
        attn.backward(ctx, &Tensor::ones([2, 8]));
        assert!(attn.grads().iter().any(|g| g.sum_sq() > 0.0));
        attn.zero_grads();
        assert!(attn.grads().iter().all(|g| g.sum_sq() == 0.0));
    }

    #[test]
    fn multi_head_grad_check() {
        let mut rng = CounterRng::new(5, 0);
        let attn = SelfAttention::multi_head("mh", 3, 8, 2, &mut rng);
        numeric_grad_check(Box::new(attn), 2, 24, 8e-2);
    }

    #[test]
    fn multi_head_reduces_to_single_when_heads_is_one() {
        let mut r1 = CounterRng::new(6, 0);
        let mut r2 = CounterRng::new(6, 0);
        let mut a = SelfAttention::new("a", 3, 4, &mut r1);
        let mut b = SelfAttention::multi_head("a", 3, 4, 1, &mut r2);
        let x = Tensor::randn([2, 12], 0.0, 1.0, &mut CounterRng::new(7, 0));
        let ya = a.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        let yb = b.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        assert!(ya.bit_eq(&yb));
    }

    #[test]
    fn heads_attend_independently() {
        // With 2 heads, the attention cache holds two distinct row-
        // stochastic maps; outputs differ from the single-head layer with
        // identical weights.
        let mut rng = CounterRng::new(8, 0);
        let mut mh = SelfAttention::multi_head("mh", 4, 8, 2, &mut rng);
        let x = Tensor::randn([1, 32], 0.0, 1.0, &mut CounterRng::new(9, 0));
        let ctx = StepCtx::new(0, 0);
        let _y = mh.forward(ctx, &x, Mode::Train);
        let packed = mh.cache.take(ctx);
        let cache = unpack(&packed, 1, 4, 8, 2);
        // Each head's attention rows sum to 1.
        for head in 0..2 {
            let a = col_slice(&cache.a, head * 4, 4);
            for r in 0..4 {
                let sum: f32 = a.data()[r * 4..(r + 1) * 4].iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "head {head} row {r} sum {sum}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn uneven_heads_rejected() {
        SelfAttention::multi_head("x", 2, 6, 4, &mut CounterRng::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn wrong_width_panics() {
        let mut rng = CounterRng::new(4, 0);
        let mut attn = SelfAttention::new("a", 4, 8, &mut rng);
        attn.forward(StepCtx::new(0, 0), &Tensor::ones([1, 30]), Mode::Eval);
    }
}
