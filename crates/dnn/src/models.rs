//! Model zoo: runnable stand-ins for the paper's benchmark models, plus
//! stage partitioning for pipeline parallelism.
//!
//! The paper trains billion-parameter models (Table 2); here every model is
//! a faithful *structural* miniature — the CNN keeps the
//! large-activation/small-weight profile of Wide-ResNet, the transformer
//! stand-ins keep the small-activation/stacked-block profile of
//! ViT-128/32 and BERT-128 — so the fault-tolerance machinery exercises the
//! same code paths at laptop scale.

use swift_tensor::{CounterRng, Tensor};

use crate::activation::{ActKind, Activation};
use crate::attention::SelfAttention;
use crate::conv::Conv2d;
use crate::dropout::Dropout;
use crate::layer::{Layer, Mode, StepCtx};
use crate::linear::Linear;
use crate::norm::LayerNorm;
use crate::sequential::Sequential;

/// Applies an inner [`Linear`] token-wise: reshapes `[B, S·H_in]` to
/// `[B·S, H_in]`, applies the linear map, reshapes back to `[B, S·H_out]`.
#[derive(Debug)]
pub struct TokenLinear {
    inner: Linear,
    seq: usize,
}

impl TokenLinear {
    /// Creates a token-wise linear layer for `seq`-token sequences.
    pub fn new(
        name: impl Into<String>,
        seq: usize,
        in_dim: usize,
        out_dim: usize,
        rng: &mut CounterRng,
    ) -> Self {
        TokenLinear {
            inner: Linear::new(name, in_dim, out_dim, rng),
            seq,
        }
    }
}

impl Layer for TokenLinear {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor {
        let b = input.numel() / (self.seq * self.inner.in_dim());
        let x = input.reshape([b * self.seq, self.inner.in_dim()]);
        let y = self.inner.forward(ctx, &x, mode);
        y.reshape([b, self.seq * self.inner.out_dim()])
    }

    fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor {
        let b = grad_out.numel() / (self.seq * self.inner.out_dim());
        let g = grad_out.reshape([b * self.seq, self.inner.out_dim()]);
        let dx = self.inner.backward(ctx, &g);
        dx.reshape([b, self.seq * self.inner.in_dim()])
    }

    fn params(&self) -> &[Tensor] {
        self.inner.params()
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        self.inner.params_mut()
    }

    fn grads(&self) -> &[Tensor] {
        self.inner.grads()
    }

    fn grads_mut(&mut self) -> &mut [Tensor] {
        self.inner.grads_mut()
    }

    fn params_and_grads_mut(&mut self) -> (&mut [Tensor], &[Tensor]) {
        self.inner.params_and_grads_mut()
    }

    fn clear_cache(&mut self) {
        self.inner.clear_cache();
    }
}

/// A plain MLP: `dims[0] → dims[1] → … → dims.last()` with ReLU between
/// hidden layers (none after the output).
pub fn mlp(name: &str, dims: &[usize], seed: u64) -> Sequential {
    assert!(dims.len() >= 2, "need at least input and output dims");
    let mut rng = CounterRng::new(seed, 0x3310);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for i in 0..dims.len() - 1 {
        layers.push(Box::new(Linear::new(
            format!("fc{i}"),
            dims[i],
            dims[i + 1],
            &mut rng,
        )));
        if i + 2 < dims.len() {
            layers.push(Box::new(Activation::relu(format!("relu{i}"))));
        }
    }
    Sequential::new(name, layers)
}

/// One transformer block: attention + token-wise GELU MLP, each followed
/// by layer norm, with optional deterministic dropout.
fn transformer_block(
    layers: &mut Vec<Box<dyn Layer>>,
    block: usize,
    seq: usize,
    hidden: usize,
    dropout_p: f32,
    seed: u64,
    rng: &mut CounterRng,
) {
    layers.push(Box::new(SelfAttention::new(
        format!("attn{block}"),
        seq,
        hidden,
        rng,
    )));
    layers.push(Box::new(LayerNorm::new(
        format!("ln_a{block}"),
        seq * hidden,
        rng,
    )));
    layers.push(Box::new(TokenLinear::new(
        format!("mlp_up{block}"),
        seq,
        hidden,
        hidden * 2,
        rng,
    )));
    layers.push(Box::new(Activation::new(
        format!("gelu{block}"),
        ActKind::Gelu,
    )));
    layers.push(Box::new(TokenLinear::new(
        format!("mlp_down{block}"),
        seq,
        hidden * 2,
        hidden,
        rng,
    )));
    if dropout_p > 0.0 {
        layers.push(Box::new(Dropout::new(
            format!("drop{block}"),
            dropout_p,
            seed,
            block as u64,
        )));
    }
    layers.push(Box::new(LayerNorm::new(
        format!("ln_m{block}"),
        seq * hidden,
        rng,
    )));
}

/// ViT-tiny: token embedding, `blocks` transformer blocks, linear
/// classifier head. Input is `[B, seq·in_dim]` (patch features).
#[allow(clippy::too_many_arguments)]
pub fn vit_tiny(
    name: &str,
    seq: usize,
    in_dim: usize,
    hidden: usize,
    blocks: usize,
    classes: usize,
    dropout_p: f32,
    seed: u64,
) -> Sequential {
    let mut rng = CounterRng::new(seed, 0x517);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(TokenLinear::new(
        "embed", seq, in_dim, hidden, &mut rng,
    )));
    for b in 0..blocks {
        transformer_block(&mut layers, b, seq, hidden, dropout_p, seed, &mut rng);
    }
    layers.push(Box::new(Linear::new(
        "head",
        seq * hidden,
        classes,
        &mut rng,
    )));
    Sequential::new(name, layers)
}

/// BERT-tiny: structurally identical miniature of BERT-128 — token
/// embedding over a one-hot vocab, transformer stack, classification head
/// (next-token prediction on the synthetic Markov stream).
pub fn bert_tiny(
    name: &str,
    seq: usize,
    vocab: usize,
    hidden: usize,
    blocks: usize,
    dropout_p: f32,
    seed: u64,
) -> Sequential {
    let mut rng = CounterRng::new(seed, 0xBE27);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    layers.push(Box::new(TokenLinear::new(
        "embed", seq, vocab, hidden, &mut rng,
    )));
    for b in 0..blocks {
        transformer_block(&mut layers, b, seq, hidden, dropout_p, seed, &mut rng);
    }
    layers.push(Box::new(Linear::new("head", seq * hidden, vocab, &mut rng)));
    Sequential::new(name, layers)
}

/// Wide-ResNet-tiny: a small CNN with the Wide-ResNet activation profile
/// (activations ≫ weights). Input is `[B, 3·size·size]` channel-major.
pub fn wide_resnet_tiny(
    name: &str,
    size: usize,
    width: usize,
    classes: usize,
    seed: u64,
) -> Sequential {
    let mut rng = CounterRng::new(seed, 0x3357);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new("conv1", 3, width, size, size, 3, &mut rng)),
        Box::new(Activation::relu("relu1")),
        Box::new(Conv2d::new("conv2", width, width, size, size, 3, &mut rng)),
        Box::new(Activation::relu("relu2")),
        Box::new(Linear::new("head", width * size * size, classes, &mut rng)),
    ];
    Sequential::new(name, layers)
}

/// Splits a model into `n` contiguous pipeline stages, balancing parameter
/// counts greedily (first-fit against the ideal per-stage share, mirroring
/// Megatron-style layer partitioning).
///
/// # Panics
/// Panics when there are fewer layers than stages.
pub fn split_stages(model: Sequential, n: usize) -> Vec<Sequential> {
    assert!(n >= 1);
    let name = model.name().to_string();
    let mut layers = model.into_layers();
    assert!(
        layers.len() >= n,
        "fewer layers ({}) than stages ({n})",
        layers.len()
    );
    let counts: Vec<usize> = layers.iter().map(|l| l.param_count()).collect();
    let param_layers: Vec<usize> = (0..counts.len()).filter(|&i| counts[i] > 0).collect();

    let boundaries = if param_layers.len() >= n {
        // Balance over *parameter-bearing* layers so every stage holds
        // trainable state (a parameterless stage would make its recovery
        // vacuous); parameter-free layers (activations, dropout) attach to
        // the stage of the preceding parameterized layer.
        let weights: Vec<f64> = param_layers.iter().map(|&i| counts[i] as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut prefix = vec![0f64; weights.len() + 1];
        for (i, &w) in weights.iter().enumerate() {
            prefix[i + 1] = prefix[i] + w;
        }
        let mut bounds = vec![0usize];
        let mut start = 0usize;
        for j in 0..n - 1 {
            let target = total * (j + 1) as f64 / n as f64;
            let max_end = weights.len() - (n - 1 - j);
            let mut end = (start + 1).min(max_end);
            while end < max_end && prefix[end] < target {
                end += 1;
            }
            // Stage boundary sits right before the group's first
            // parameterized layer.
            bounds.push(param_layers[end]);
            start = end;
        }
        bounds.push(counts.len());
        bounds
    } else {
        // Too few parameterized layers: fall back to balancing raw layer
        // counts (still ≥1 layer per stage).
        let mut bounds = vec![0usize];
        for j in 1..n {
            bounds.push(j * counts.len() / n);
        }
        bounds.push(counts.len());
        // De-duplicate degenerate boundaries.
        for j in 1..bounds.len() {
            if bounds[j] <= bounds[j - 1] {
                bounds[j] = bounds[j - 1] + 1;
            }
        }
        bounds
    };
    let mut stages = Vec::with_capacity(n);
    for (i, window) in boundaries.windows(2).enumerate().rev() {
        let tail = layers.split_off(window[0]);
        stages.push((i, tail));
    }
    stages.reverse();
    stages
        .into_iter()
        .map(|(i, ls)| Sequential::new(format!("{name}/stage{i}"), ls))
        .collect()
}

impl Sequential {
    /// Consumes the model, yielding its layers (used by stage splitting).
    pub fn into_layers(self) -> Vec<Box<dyn Layer>> {
        self.into_parts().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{accuracy, softmax_cross_entropy};
    use swift_data::{BlobsDataset, Dataset};
    use swift_optim::OptimizerKind;

    #[test]
    fn mlp_learns_blobs() {
        let ds = BlobsDataset::new(0, 8, 3, 0.3);
        let mut model = mlp("m", &[8, 32, 3], 42);
        let mut opt = OptimizerKind::SgdMomentum {
            lr: 0.05,
            weight_decay: 0.0,
            momentum: 0.9,
            dampening: 0.0,
        }
        .build();
        let mut last_acc = 0.0;
        for it in 0..60 {
            let batch = ds.batch(it, 32);
            let ctx = StepCtx::new(it, 0);
            let logits = model.forward(ctx, &batch.x, Mode::Train);
            let (_, grad) = softmax_cross_entropy(&logits, &batch.y);
            model.backward(ctx, &grad);
            model.optimizer_step(opt.as_mut());
            model.zero_grads();
            last_acc = accuracy(&logits, &batch.y);
        }
        assert!(last_acc > 0.9, "MLP failed to learn blobs: acc {last_acc}");
    }

    #[test]
    fn vit_tiny_learns_blobs() {
        use swift_optim::OptimizerKind;
        let ds = BlobsDataset::new(2, 24, 3, 0.3); // 4 tokens × 6 dims
        let mut model = vit_tiny("vit", 4, 6, 16, 2, 3, 0.0, 21);
        let mut opt = OptimizerKind::Adam {
            lr: 3e-3,
            weight_decay: 0.0,
        }
        .build();
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..50 {
            let b = ds.batch(it, 16);
            let ctx = StepCtx::new(it, 0);
            let y = model.forward(ctx, &b.x, Mode::Train);
            let (l, g) = softmax_cross_entropy(&y, &b.y);
            model.backward(ctx, &g);
            model.optimizer_step(opt.as_mut());
            model.zero_grads();
            if it == 0 {
                first = l;
            }
            last = l;
        }
        assert!(
            last < 0.5 * first,
            "transformer failed to learn: {first} -> {last}"
        );
    }

    #[test]
    fn bert_tiny_learns_markov_stream() {
        use swift_data::TokenDataset;
        use swift_optim::OptimizerKind;
        let ds = TokenDataset::new(5, 8, 3, 0.95);
        let mut model = bert_tiny("bert", 3, 8, 16, 2, 0.0, 22);
        let mut opt = OptimizerKind::Adam {
            lr: 3e-3,
            weight_decay: 0.0,
        }
        .build();
        let mut accs = Vec::new();
        for it in 0..150 {
            let b = ds.batch(it, 16);
            let ctx = StepCtx::new(it, 0);
            let y = model.forward(ctx, &b.x, Mode::Train);
            let (_, g) = softmax_cross_entropy(&y, &b.y);
            accs.push(accuracy(&y, &b.y));
            model.backward(ctx, &g);
            model.optimizer_step(opt.as_mut());
            model.zero_grads();
        }
        let late: f32 = accs[140..].iter().sum::<f32>() / 10.0;
        let early: f32 = accs[..10].iter().sum::<f32>() / 10.0;
        assert!(
            late > 0.7 && late > early + 0.3,
            "BERT-tiny should learn the Markov chain: early {early}, late {late}"
        );
    }

    #[test]
    fn vit_tiny_builds_and_runs() {
        let mut m = vit_tiny("vit", 4, 6, 8, 2, 5, 0.1, 1);
        let ctx = StepCtx::new(0, 0);
        let x = Tensor::ones([2, 24]);
        let y = m.forward(ctx, &x, Mode::Train);
        assert_eq!(y.shape().dims(), &[2, 5]);
        let dx = m.backward(ctx, &Tensor::ones([2, 5]));
        assert_eq!(dx.shape().dims(), &[2, 24]);
    }

    #[test]
    fn bert_tiny_builds_and_runs() {
        let mut m = bert_tiny("bert", 3, 12, 8, 2, 0.0, 2);
        let ctx = StepCtx::new(0, 0);
        let x = Tensor::zeros([2, 36]);
        let y = m.forward(ctx, &x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 12]);
    }

    #[test]
    fn wrn_tiny_activation_heavy() {
        let m = wide_resnet_tiny("wrn", 8, 16, 10, 3);
        // CNN stand-in: activations (B·width·size²) dominate weights for
        // moderate batch — the §5.4 "logging unsuitable" profile.
        let act_elems_per_example = 16 * 8 * 8;
        assert!(act_elems_per_example * 64 > m.param_count() / 2);
    }

    #[test]
    fn stage_split_preserves_structure() {
        let m = vit_tiny("vit", 4, 6, 8, 4, 5, 0.0, 4);
        let n_layers = m.len();
        let total_params = m.param_count();
        let stages = split_stages(m, 4);
        assert_eq!(stages.len(), 4);
        assert_eq!(stages.iter().map(|s| s.len()).sum::<usize>(), n_layers);
        assert_eq!(
            stages.iter().map(|s| s.param_count()).sum::<usize>(),
            total_params
        );
        assert!(stages.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn stage_split_forward_equals_monolithic() {
        let mut mono = vit_tiny("vit", 4, 6, 8, 2, 5, 0.0, 5);
        let mut stages = split_stages(vit_tiny("vit", 4, 6, 8, 2, 5, 0.0, 5), 3);
        let ctx = StepCtx::new(0, 0);
        let x = Tensor::randn([2, 24], 0.0, 1.0, &mut CounterRng::new(9, 9));
        let y_mono = mono.forward(ctx, &x, Mode::Eval);
        let mut h = x.clone();
        for s in &mut stages {
            h = s.forward(ctx, &h, Mode::Eval);
        }
        assert!(
            h.bit_eq(&y_mono),
            "staged forward must be bitwise identical"
        );
    }

    #[test]
    fn stage_split_gives_every_stage_parameters() {
        // An MLP with 3 linears split 3 ways: each stage must hold
        // trainable state (no vacuous ReLU-only stages).
        for n in [2usize, 3] {
            let stages = split_stages(mlp("m", &[8, 24, 24, 3], 1), n);
            for (i, s) in stages.iter().enumerate() {
                assert!(
                    s.param_count() > 0,
                    "{n}-way split: stage {i} has no parameters"
                );
            }
        }
        let stages = split_stages(vit_tiny("v", 4, 6, 8, 4, 5, 0.0, 2), 4);
        for (i, s) in stages.iter().enumerate() {
            assert!(s.param_count() > 0, "vit stage {i} has no parameters");
        }
    }

    #[test]
    fn stage_split_one_stage_is_identity() {
        let m = mlp("m", &[4, 8, 2], 6);
        let n = m.len();
        let stages = split_stages(m, 1);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].len(), n);
    }

    #[test]
    #[should_panic(expected = "fewer layers")]
    fn too_many_stages_panics() {
        split_stages(mlp("m", &[4, 2], 7), 5);
    }
}
