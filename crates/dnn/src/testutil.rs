//! Shared test helpers: finite-difference gradient checking.

use swift_tensor::{CounterRng, Tensor};

use crate::layer::{Layer, Mode, StepCtx};

/// Verifies a layer's analytic gradients against central finite
/// differences, for both the input gradient and every parameter gradient.
///
/// The scalar loss is `Σ (output ⊙ w)` for a fixed random `w`, whose
/// gradient w.r.t. the output is exactly `w`. Evaluations run in
/// [`Mode::Train`] with a fixed [`StepCtx`] so stochastic layers (dropout)
/// use the same mask for every probe.
///
/// Only used in tests; tolerance is relative-ish (`|a−n| ≤ tol·(1+|n|)`).
pub fn numeric_grad_check(mut layer: Box<dyn Layer>, batch: usize, in_dim: usize, tol: f32) {
    let ctx = StepCtx::new(0, 0);
    let mut rng = CounterRng::new(0xC0FFEE, 0);
    let x = Tensor::randn([batch, in_dim], 0.0, 1.0, &mut rng);

    // Learn the output shape, build the loss weights.
    let y0 = layer.forward(ctx, &x, Mode::Train);
    layer.clear_cache();
    let w = Tensor::randn(*y0.shape(), 0.0, 1.0, &mut rng);

    // Analytic pass.
    layer.zero_grads();
    let _ = layer.forward(ctx, &x, Mode::Train);
    let dx = layer.backward(ctx, &w);
    let analytic_param_grads: Vec<Tensor> = layer.grads().to_vec();

    let eps = 1e-2f32;
    let eval = |layer: &mut Box<dyn Layer>, x: &Tensor| -> f32 {
        let y = layer.forward(ctx, x, Mode::Train);
        layer.clear_cache();
        y.mul(&w).sum()
    };

    // Input gradient: probe a deterministic sample of elements.
    let probes = probe_indices(x.numel(), 24);
    for &i in &probes {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let numeric = (eval(&mut layer, &xp) - eval(&mut layer, &xm)) / (2.0 * eps);
        let analytic = dx.data()[i];
        assert!(
            (analytic - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "input grad mismatch at {i}: analytic {analytic} vs numeric {numeric}"
        );
    }

    // Parameter gradients.
    let n_params = layer.params().len();
    #[allow(clippy::needless_range_loop)] // p_idx indexes params and grads in lockstep
    for p_idx in 0..n_params {
        let numel = layer.params()[p_idx].numel();
        for &i in &probe_indices(numel, 12) {
            let orig = layer.params()[p_idx].data()[i];
            layer.params_mut()[p_idx].data_mut()[i] = orig + eps;
            let fp = eval(&mut layer, &x);
            layer.params_mut()[p_idx].data_mut()[i] = orig - eps;
            let fm = eval(&mut layer, &x);
            layer.params_mut()[p_idx].data_mut()[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = analytic_param_grads[p_idx].data()[i];
            assert!(
                (analytic - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "param {p_idx} grad mismatch at {i}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }
}

/// A deterministic spread of up to `k` indices over `[0, n)`.
fn probe_indices(n: usize, k: usize) -> Vec<usize> {
    if n <= k {
        (0..n).collect()
    } else {
        (0..k).map(|j| j * n / k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_indices_cover_bounds() {
        assert_eq!(probe_indices(3, 10), vec![0, 1, 2]);
        let p = probe_indices(100, 10);
        assert_eq!(p.len(), 10);
        assert!(p.iter().all(|&i| i < 100));
        assert_eq!(p[0], 0);
    }
}
