//! Global-norm gradient clipping, and its interaction with update-undo.
//!
//! Clipping rescales the gradients *before* the optimizer step. Because
//! SWIFT's undo consumes the cached post-clip gradients (`g_t` is whatever
//! the update actually used, §4), clipping needs no extra undo machinery —
//! the invariant tested here.

use swift_tensor::Tensor;

/// Scales `grads` so their global L2 norm is at most `max_norm`; returns
/// the pre-clip norm. No-op (scale 1) when already within bounds.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0);
    let total_sq: f32 = grads.iter().map(|g| g.sum_sq()).sum();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            g.scale_inplace(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_optim::OptimizerKind;
    use swift_tensor::CounterRng;

    #[test]
    fn clips_to_the_bound() {
        let mut grads = vec![Tensor::full([4], 3.0), Tensor::full([4], 4.0)];
        // Global norm = sqrt(16·(9+16)/ ... ) = sqrt(4·9 + 4·16) = 10.
        let pre = clip_grad_norm(&mut grads, 5.0);
        assert!((pre - 10.0).abs() < 1e-5);
        let post: f32 = grads.iter().map(|g| g.sum_sq()).sum::<f32>().sqrt();
        assert!((post - 5.0).abs() < 1e-4);
        // Direction preserved: ratios unchanged.
        assert!((grads[1].data()[0] / grads[0].data()[0] - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn within_bound_is_untouched() {
        let mut grads = vec![Tensor::full([2], 0.1)];
        let orig = grads[0].clone();
        let pre = clip_grad_norm(&mut grads, 5.0);
        assert!(pre < 5.0);
        assert!(grads[0].bit_eq(&orig));
    }

    #[test]
    fn undo_works_with_clipped_gradients() {
        // The undo contract: pass the gradients the step actually used —
        // i.e. the clipped ones.
        let mut rng = CounterRng::new(4, 0);
        let mut opt = OptimizerKind::Adam {
            lr: 1e-2,
            weight_decay: 0.01,
        }
        .build();
        let mut p = Tensor::randn([64], 0.0, 1.0, &mut rng);
        let before = p.clone();
        let mut grads = vec![Tensor::randn([64], 0.0, 5.0, &mut rng)];
        clip_grad_norm(&mut grads, 1.0);
        opt.step(
            std::slice::from_mut(&mut p),
            std::slice::from_ref(&grads[0]),
        );
        opt.undo(
            std::slice::from_mut(&mut p),
            std::slice::from_ref(&grads[0]),
        )
        .unwrap();
        assert!(p.max_abs_diff(&before) < 1e-4);
    }
}
