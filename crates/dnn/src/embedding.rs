//! Token embedding: table lookup with scatter-add backward.
//!
//! Input tokens are ids encoded as floats (`[B, S]`, each value an integer
//! in `[0, vocab)`); the output stacks the looked-up rows to `[B, S·H]`.
//! Unlike one-hot × matmul (`TokenLinear`), the lookup touches only the
//! rows actually used — the memory-access pattern of real LM embeddings,
//! and the access pattern Check-N-Run-style incremental checkpointing
//! exploits (paper §8's recommendation-model discussion).

use swift_tensor::{CounterRng, Tensor};

use crate::layer::{ActivationCache, Layer, Mode, StepCtx};

/// A learned embedding table `[vocab, hidden]`.
#[derive(Debug)]
pub struct Embedding {
    name: String,
    vocab: usize,
    hidden: usize,
    /// `[table]` — contiguous so [`Layer::params`] borrows.
    params: [Tensor; 1],
    /// `[grad_table]`, aligned with `params`.
    grads: [Tensor; 1],
    cache_ids: ActivationCache,
}

impl Embedding {
    /// Creates an embedding with N(0, 0.02) initialization (BERT-style).
    pub fn new(name: impl Into<String>, vocab: usize, hidden: usize, rng: &mut CounterRng) -> Self {
        Embedding {
            name: name.into(),
            vocab,
            hidden,
            params: [Tensor::randn([vocab, hidden], 0.0, 0.02, rng)],
            grads: [Tensor::zeros([vocab, hidden])],
            cache_ids: ActivationCache::new(),
        }
    }

    /// The embedding table `[vocab, hidden]`.
    pub fn table(&self) -> &Tensor {
        &self.params[0]
    }

    /// Mutable table access.
    pub fn table_mut(&mut self) -> &mut Tensor {
        &mut self.params[0]
    }

    /// The accumulated table gradient.
    pub fn grad_table(&self) -> &Tensor {
        &self.grads[0]
    }

    /// Rows of the table that iteration's batch actually touched — the
    /// sparsity incremental checkpointing exploits.
    pub fn touched_rows(ids: &Tensor) -> std::collections::BTreeSet<usize> {
        ids.data().iter().map(|&v| v as usize).collect()
    }
}

impl Layer for Embedding {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor {
        let n = input.numel(); // B·S token ids
        let (b, s) = input.shape().as_matrix();
        let mut out = vec![0.0f32; n * self.hidden];
        for (i, &idf) in input.data().iter().enumerate() {
            let id = idf as usize;
            assert!(
                id < self.vocab && idf.fract() == 0.0 && idf >= 0.0,
                "token id {idf} invalid for vocab {}",
                self.vocab
            );
            out[i * self.hidden..(i + 1) * self.hidden]
                .copy_from_slice(&self.params[0].data()[id * self.hidden..(id + 1) * self.hidden]);
        }
        if mode == Mode::Train {
            self.cache_ids.put(ctx, input.clone());
        }
        Tensor::from_vec([b, s * self.hidden], out)
    }

    fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor {
        let ids = self.cache_ids.take(ctx);
        for (i, &idf) in ids.data().iter().enumerate() {
            let id = idf as usize;
            let g = &grad_out.data()[i * self.hidden..(i + 1) * self.hidden];
            let row = &mut self.grads[0].data_mut()[id * self.hidden..(id + 1) * self.hidden];
            for (r, &gv) in row.iter_mut().zip(g.iter()) {
                *r += gv;
            }
        }
        // Token ids have no gradient; return zeros of the input shape.
        Tensor::zeros(*ids.shape())
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        &mut self.params
    }

    fn grads(&self) -> &[Tensor] {
        &self.grads
    }

    fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut self.grads
    }

    fn params_and_grads_mut(&mut self) -> (&mut [Tensor], &[Tensor]) {
        (&mut self.params, &self.grads)
    }

    fn clear_cache(&mut self) {
        self.cache_ids.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embedding {
        let mut rng = CounterRng::new(1, 0);
        Embedding::new("e", 6, 4, &mut rng)
    }

    #[test]
    fn forward_looks_up_rows() {
        let mut e = emb();
        let ids = Tensor::from_vec([1, 3], vec![2.0, 0.0, 2.0]);
        let y = e.forward(StepCtx::new(0, 0), &ids, Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 12]);
        let row2 = &e.table().data()[8..12];
        assert_eq!(&y.data()[0..4], row2);
        assert_eq!(&y.data()[8..12], row2, "repeated token reuses the row");
        assert_eq!(&y.data()[4..8], &e.table().data()[0..4]);
    }

    #[test]
    fn backward_scatter_adds() {
        let mut e = emb();
        let ctx = StepCtx::new(0, 0);
        let ids = Tensor::from_vec([1, 3], vec![2.0, 0.0, 2.0]);
        e.forward(ctx, &ids, Mode::Train);
        let dy = Tensor::ones([1, 12]);
        e.backward(ctx, &dy);
        // Row 2 appears twice → gradient 2.0 per element; row 0 once.
        assert!(e.grad_table().data()[8..12].iter().all(|&v| v == 2.0));
        assert!(e.grad_table().data()[0..4].iter().all(|&v| v == 1.0));
        // Untouched rows stay zero.
        assert!(e.grad_table().data()[4..8].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matches_one_hot_matmul() {
        // Lookup must equal one-hot × table.
        let mut e = emb();
        let ids = Tensor::from_vec([2, 2], vec![1.0, 3.0, 5.0, 0.0]);
        let y = e.forward(StepCtx::new(0, 0), &ids, Mode::Eval);
        for (i, &idf) in ids.data().iter().enumerate() {
            let id = idf as usize;
            let expect = &e.table().data()[id * 4..(id + 1) * 4];
            assert_eq!(&y.data()[i * 4..(i + 1) * 4], expect);
        }
    }

    #[test]
    fn touched_rows_sparsity() {
        let ids = Tensor::from_vec([2, 3], vec![1.0, 1.0, 4.0, 0.0, 4.0, 4.0]);
        let touched = Embedding::touched_rows(&ids);
        assert_eq!(touched.into_iter().collect::<Vec<_>>(), vec![0, 1, 4]);
    }

    #[test]
    #[should_panic(expected = "invalid for vocab")]
    fn out_of_vocab_rejected() {
        let mut e = emb();
        e.forward(
            StepCtx::new(0, 0),
            &Tensor::from_vec([1, 1], vec![9.0]),
            Mode::Eval,
        );
    }

    #[test]
    fn trains_with_optimizer_and_undo() {
        use swift_optim::OptimizerKind;
        let mut e = emb();
        let ctx = StepCtx::new(0, 0);
        let ids = Tensor::from_vec([1, 2], vec![1.0, 3.0]);
        e.forward(ctx, &ids, Mode::Train);
        e.backward(ctx, &Tensor::ones([1, 8]));
        let before = e.table().clone();
        let mut opt = OptimizerKind::SgdMomentum {
            lr: 0.1,
            weight_decay: 0.0,
            momentum: 0.9,
            dampening: 0.0,
        }
        .build();
        let g = e.grad_table().clone();
        opt.step(
            std::slice::from_mut(e.table_mut()),
            std::slice::from_ref(&g),
        );
        assert!(e.table().max_abs_diff(&before) > 0.0);
        opt.undo(
            std::slice::from_mut(e.table_mut()),
            std::slice::from_ref(&g),
        )
        .unwrap();
        assert!(
            e.table().max_abs_diff(&before) < 1e-6,
            "embedding update is undoable too"
        );
    }
}
