//! # swift-dnn
//!
//! A layered DNN library with hand-written backpropagation — the training
//! substrate for the SWIFT reproduction.
//!
//! Everything is built for *deterministic replay* (paper §6): activation
//! caches are keyed per micro-batch ([`StepCtx`]), dropout draws
//! counter-based masks keyed by the training coordinates, and all kernels
//! are bitwise deterministic. On top of the layers sit:
//!
//! - [`Sequential`] — models with flat parameter-group indexing matching
//!   the layer-wise wait-free update of mainstream frameworks (paper
//!   Fig. 4), plus the `apply_update` / `undo_update` hooks SWIFT's
//!   update-undo rides on;
//! - [`models`] — structural miniatures of the paper's Table 2 benchmarks
//!   and [`models::split_stages`] for pipeline partitioning;
//! - [`profile`] — performance profiles of the *full-scale* paper models
//!   (the constants that drive the evaluation simulator and reproduce
//!   Table 3 analytically).

pub mod activation;
pub mod attention;
pub mod clip;
pub mod conv;
pub mod dropout;
pub mod embedding;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod models;
pub mod norm;
pub mod profile;
pub mod sequential;
#[doc(hidden)]
pub mod testutil;

pub use activation::{ActKind, Activation};
pub use attention::SelfAttention;
pub use clip::clip_grad_norm;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use layer::{ActivationCache, Layer, Mode, StepCtx};
pub use linear::Linear;
pub use loss::{accuracy, mse, softmax_cross_entropy, softmax_cross_entropy_scaled};
pub use models::{bert_tiny, mlp, split_stages, vit_tiny, wide_resnet_tiny, TokenLinear};
pub use norm::LayerNorm;
pub use profile::{
    all_models, bert_128, vit_128_32, wide_resnet_50, PaperModel, RecoveryFamily, Testbed, TESTBED,
};
pub use sequential::{ModelState, Sequential};
