//! 2-D convolution via im2col, with hand-written backward.
//!
//! Present for the CNN stand-in (Wide-ResNet-tiny): the paper's §5.4 point
//! that CNN activations are too large for logging is a *structural*
//! property this layer lets us exhibit with real numbers.

use swift_tensor::{matmul, matmul_at_b, CounterRng, Tensor};

use crate::layer::{ActivationCache, Layer, Mode, StepCtx};

/// Same-padding, stride-1 2-D convolution.
///
/// Tensors are flattened channel-major: example `e`, channel `c`, pixel
/// `(h, w)` lives at `x[e, c·H·W + h·W + w]`. The kernel size must be odd
/// (symmetric padding).
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    c_in: usize,
    c_out: usize,
    height: usize,
    width: usize,
    ksize: usize,
    /// `[weight, bias]` with weight `[c_out, c_in · k · k]` — contiguous
    /// so [`Layer::params`] borrows.
    params: [Tensor; 2],
    /// `[grad_weight, grad_bias]`, aligned with `params`.
    grads: [Tensor; 2],
    /// Caches the stacked im2col matrix `[B·H·W, c_in·k·k]`.
    cache_col: ActivationCache,
}

const W: usize = 0;
const B: usize = 1;

impl Conv2d {
    /// Creates a convolution layer for `height × width` feature maps.
    pub fn new(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        height: usize,
        width: usize,
        ksize: usize,
        rng: &mut CounterRng,
    ) -> Self {
        assert!(ksize % 2 == 1, "kernel size must be odd for same padding");
        let fan_in = c_in * ksize * ksize;
        let bound = (1.0 / fan_in as f32).sqrt();
        Conv2d {
            name: name.into(),
            c_in,
            c_out,
            height,
            width,
            ksize,
            params: [
                Tensor::uniform([c_out, fan_in], -bound, bound, rng),
                Tensor::uniform([c_out], -bound, bound, rng),
            ],
            grads: [Tensor::zeros([c_out, fan_in]), Tensor::zeros([c_out])],
            cache_col: ActivationCache::new(),
        }
    }

    /// The kernel weights `[c_out, c_in·k·k]`.
    pub fn weight(&self) -> &Tensor {
        &self.params[W]
    }

    /// Mutable kernel access.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.params[W]
    }

    /// The per-channel bias `[c_out]`.
    pub fn bias(&self) -> &Tensor {
        &self.params[B]
    }

    /// Mutable bias access.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.params[B]
    }

    /// Elements per example on the input side.
    pub fn in_elems(&self) -> usize {
        self.c_in * self.height * self.width
    }

    /// Elements per example on the output side.
    pub fn out_elems(&self) -> usize {
        self.c_out * self.height * self.width
    }

    /// Builds the im2col matrix `[H·W, c_in·k·k]` for one example.
    fn im2col(&self, x: &[f32]) -> Tensor {
        let (h, w, k, ci) = (self.height, self.width, self.ksize, self.c_in);
        let pad = k / 2;
        let cols = ci * k * k;
        let mut out = vec![0.0f32; h * w * cols];
        for oh in 0..h {
            for ow in 0..w {
                let row = oh * w + ow;
                for c in 0..ci {
                    for dh in 0..k {
                        let ih = oh as isize + dh as isize - pad as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for dw in 0..k {
                            let iw = ow as isize + dw as isize - pad as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            out[row * cols + c * k * k + dh * k + dw] =
                                x[c * h * w + ih as usize * w + iw as usize];
                        }
                    }
                }
            }
        }
        Tensor::from_vec([h * w, cols], out)
    }

    /// Scatters a `[H·W, c_in·k·k]` gradient back to input layout.
    fn col2im(&self, dcol: &Tensor) -> Vec<f32> {
        let (h, w, k, ci) = (self.height, self.width, self.ksize, self.c_in);
        let pad = k / 2;
        let cols = ci * k * k;
        let mut dx = vec![0.0f32; ci * h * w];
        let d = dcol.data();
        for oh in 0..h {
            for ow in 0..w {
                let row = oh * w + ow;
                for c in 0..ci {
                    for dh in 0..k {
                        let ih = oh as isize + dh as isize - pad as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for dw in 0..k {
                            let iw = ow as isize + dw as isize - pad as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            dx[c * h * w + ih as usize * w + iw as usize] +=
                                d[row * cols + c * k * k + dh * k + dw];
                        }
                    }
                }
            }
        }
        dx
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor {
        let per_in = self.in_elems();
        let b = input.numel() / per_in;
        assert_eq!(
            b * per_in,
            input.numel(),
            "input is not a multiple of C·H·W"
        );
        let hw = self.height * self.width;
        let cols = self.c_in * self.ksize * self.ksize;
        let mut y = Vec::with_capacity(b * self.out_elems());
        let mut col_stack = Vec::with_capacity(b * hw * cols);
        for e in 0..b {
            let col = self.im2col(&input.data()[e * per_in..(e + 1) * per_in]);
            // [H·W, c_out] = col · Wᵀ
            let y_col =
                swift_tensor::matmul_a_bt(&col, &self.params[W]).add_row_vector(&self.params[B]);
            // Transpose to channel-major [c_out, H·W].
            let y_cm = y_col.transpose();
            y.extend_from_slice(y_cm.data());
            if mode == Mode::Train {
                col_stack.extend_from_slice(col.data());
            }
        }
        if mode == Mode::Train {
            self.cache_col
                .put(ctx, Tensor::from_vec([b * hw, cols], col_stack));
        }
        Tensor::from_vec([b, self.out_elems()], y)
    }

    fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor {
        let per_out = self.out_elems();
        let b = grad_out.numel() / per_out;
        let hw = self.height * self.width;
        let cols = self.c_in * self.ksize * self.ksize;
        let col_stack = self.cache_col.take(ctx);
        let mut dx = Vec::with_capacity(b * self.in_elems());
        for e in 0..b {
            // dY channel-major [c_out, H·W] → row-major [H·W, c_out].
            let dy_cm = Tensor::from_vec(
                [self.c_out, hw],
                grad_out.data()[e * per_out..(e + 1) * per_out].to_vec(),
            );
            let dy_col = dy_cm.transpose();
            let col = Tensor::from_vec(
                [hw, cols],
                col_stack.data()[e * hw * cols..(e + 1) * hw * cols].to_vec(),
            );
            // dW += dy_colᵀ · col
            self.grads[W].add_inplace(&matmul_at_b(&dy_col, &col));
            self.grads[B].add_inplace(&dy_col.sum_rows());
            // dCol = dy_col · W
            let dcol = matmul(&dy_col, &self.params[W]);
            dx.extend_from_slice(&self.col2im(&dcol));
        }
        Tensor::from_vec([b, self.in_elems()], dx)
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        &mut self.params
    }

    fn grads(&self) -> &[Tensor] {
        &self.grads
    }

    fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut self.grads
    }

    fn params_and_grads_mut(&mut self) -> (&mut [Tensor], &[Tensor]) {
        (&mut self.params, &self.grads)
    }

    fn clear_cache(&mut self) {
        self.cache_col.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::numeric_grad_check;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut rng = CounterRng::new(0, 0);
        let mut conv = Conv2d::new("c", 1, 1, 4, 4, 3, &mut rng);
        // Kernel with 1 at the center, zero bias → identity.
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0;
        *conv.weight_mut() = Tensor::from_vec([1, 9], w);
        *conv.bias_mut() = Tensor::zeros([1]);
        let x = Tensor::randn([2, 16], 0.0, 1.0, &mut rng);
        let y = conv.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        assert!(y.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn shifting_kernel_shifts_image() {
        let mut rng = CounterRng::new(1, 0);
        let mut conv = Conv2d::new("c", 1, 1, 3, 3, 3, &mut rng);
        // 1 at position (dh=1, dw=0): output(h,w) = input(h, w−1).
        let mut w = vec![0.0f32; 9];
        w[3] = 1.0;
        *conv.weight_mut() = Tensor::from_vec([1, 9], w);
        *conv.bias_mut() = Tensor::zeros([1]);
        let x = Tensor::from_vec([1, 9], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let y = conv.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 1.0, 2.0, 0.0, 4.0, 5.0, 0.0, 7.0, 8.0]);
    }

    #[test]
    fn grad_check_small() {
        let mut rng = CounterRng::new(2, 0);
        let conv = Conv2d::new("c", 2, 3, 3, 3, 3, &mut rng);
        numeric_grad_check(Box::new(conv), 2, 2 * 9, 8e-2);
    }

    #[test]
    fn output_shape() {
        let mut rng = CounterRng::new(3, 0);
        let mut conv = Conv2d::new("c", 3, 8, 5, 5, 3, &mut rng);
        let x = Tensor::zeros([4, 75]);
        let y = conv.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        assert_eq!(y.shape().dims(), &[4, 200]);
    }

    #[test]
    fn bias_applied_per_channel() {
        let mut rng = CounterRng::new(4, 0);
        let mut conv = Conv2d::new("c", 1, 2, 2, 2, 1, &mut rng);
        *conv.weight_mut() = Tensor::zeros([2, 1]);
        *conv.bias_mut() = Tensor::from_vec([2], vec![1.5, -2.5]);
        let y = conv.forward(StepCtx::new(0, 0), &Tensor::zeros([1, 4]), Mode::Eval);
        assert_eq!(y.data(), &[1.5, 1.5, 1.5, 1.5, -2.5, -2.5, -2.5, -2.5]);
    }
}
