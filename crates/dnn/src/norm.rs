//! Layer normalization with hand-written backward.

use swift_tensor::{CounterRng, Tensor};

use crate::layer::{ActivationCache, Layer, Mode, StepCtx};

/// Row-wise layer normalization: `y = γ · (x − μ)/σ + β` with learnable
/// gain `γ` and bias `β` over the last dimension.
#[derive(Debug)]
pub struct LayerNorm {
    name: String,
    /// `[gamma, beta]` — contiguous so [`Layer::params`] borrows.
    params: [Tensor; 2],
    /// `[grad_gamma, grad_beta]`, aligned with `params`.
    grads: [Tensor; 2],
    eps: f32,
    /// Caches the *normalized* input x̂ and per-row inverse std.
    cache_xhat: ActivationCache,
    cache_inv_std: ActivationCache,
}

const G: usize = 0;
const B: usize = 1;

impl LayerNorm {
    /// Creates a layer norm over rows of width `dim`. `_rng` is accepted
    /// for builder uniformity; initialization is the standard γ=1, β=0.
    pub fn new(name: impl Into<String>, dim: usize, _rng: &mut CounterRng) -> Self {
        LayerNorm {
            name: name.into(),
            params: [Tensor::ones([dim]), Tensor::zeros([dim])],
            grads: [Tensor::zeros([dim]), Tensor::zeros([dim])],
            eps: 1e-5,
            cache_xhat: ActivationCache::new(),
            cache_inv_std: ActivationCache::new(),
        }
    }

    /// The gain vector γ.
    pub fn gamma(&self) -> &Tensor {
        &self.params[G]
    }

    /// Mutable gain access.
    pub fn gamma_mut(&mut self) -> &mut Tensor {
        &mut self.params[G]
    }

    /// The bias vector β.
    pub fn beta(&self) -> &Tensor {
        &self.params[B]
    }

    /// Mutable bias access.
    pub fn beta_mut(&mut self) -> &mut Tensor {
        &mut self.params[B]
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor {
        let (rows, cols) = input.shape().as_matrix();
        let mut xhat = input.clone();
        let mut inv_stds = vec![0.0f32; rows];
        #[allow(clippy::needless_range_loop)] // r indexes rows of two buffers in lockstep
        for r in 0..rows {
            let row = &mut xhat.data_mut()[r * cols..(r + 1) * cols];
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[r] = inv_std;
            for v in row.iter_mut() {
                *v = (*v - mean) * inv_std;
            }
        }
        // y = γ ⊙ x̂ + β, broadcast per row.
        let mut y = xhat.clone();
        for r in 0..rows {
            let row = &mut y.data_mut()[r * cols..(r + 1) * cols];
            for (c, v) in row.iter_mut().enumerate() {
                *v = *v * self.params[G].data()[c] + self.params[B].data()[c];
            }
        }
        if mode == Mode::Train {
            self.cache_xhat.put(ctx, xhat);
            self.cache_inv_std
                .put(ctx, Tensor::from_vec([rows], inv_stds));
        }
        y
    }

    fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor {
        let xhat = self.cache_xhat.take(ctx);
        let inv_std = self.cache_inv_std.take(ctx);
        let (rows, cols) = grad_out.shape().as_matrix();
        // dγ += Σ_rows dy ⊙ x̂ ; dβ += Σ_rows dy
        self.grads[G].add_inplace(&grad_out.mul(&xhat).sum_rows());
        self.grads[B].add_inplace(&grad_out.sum_rows());
        // dx = inv_std ⊙ (dŷ − mean(dŷ) − x̂ · mean(dŷ ⊙ x̂)), dŷ = dy ⊙ γ
        let mut dx = Tensor::zeros(*grad_out.shape());
        for r in 0..rows {
            let dy = &grad_out.data()[r * cols..(r + 1) * cols];
            let xh = &xhat.data()[r * cols..(r + 1) * cols];
            let istd = inv_std.data()[r];
            let mut dyg = vec![0.0f32; cols];
            for c in 0..cols {
                dyg[c] = dy[c] * self.params[G].data()[c];
            }
            let mean_dyg = dyg.iter().sum::<f32>() / cols as f32;
            let mean_dyg_xh =
                dyg.iter().zip(xh.iter()).map(|(a, b)| a * b).sum::<f32>() / cols as f32;
            let out = &mut dx.data_mut()[r * cols..(r + 1) * cols];
            for c in 0..cols {
                out[c] = istd * (dyg[c] - mean_dyg - xh[c] * mean_dyg_xh);
            }
        }
        dx
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        &mut self.params
    }

    fn grads(&self) -> &[Tensor] {
        &self.grads
    }

    fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut self.grads
    }

    fn params_and_grads_mut(&mut self) -> (&mut [Tensor], &[Tensor]) {
        (&mut self.params, &self.grads)
    }

    fn clear_cache(&mut self) {
        self.cache_xhat.clear();
        self.cache_inv_std.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::numeric_grad_check;

    #[test]
    fn forward_normalizes_rows() {
        let mut rng = CounterRng::new(0, 0);
        let mut ln = LayerNorm::new("ln", 8, &mut rng);
        let x = Tensor::randn([4, 8], 3.0, 2.0, &mut rng);
        let y = ln.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        for r in 0..4 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affine() {
        let mut rng = CounterRng::new(1, 0);
        let mut ln = LayerNorm::new("ln", 4, &mut rng);
        *ln.gamma_mut() = Tensor::full([4], 2.0);
        *ln.beta_mut() = Tensor::full([4], 1.0);
        let x = Tensor::from_vec([1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = ln.forward(StepCtx::new(0, 0), &x, Mode::Eval);
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-5, "β shifts the mean");
    }

    #[test]
    fn grad_check() {
        let mut rng = CounterRng::new(2, 0);
        let ln = LayerNorm::new("ln", 6, &mut rng);
        numeric_grad_check(Box::new(ln), 3, 6, 5e-2);
    }

    #[test]
    fn caches_cleared() {
        let mut rng = CounterRng::new(3, 0);
        let mut ln = LayerNorm::new("ln", 4, &mut rng);
        ln.forward(StepCtx::new(0, 0), &Tensor::ones([2, 4]), Mode::Train);
        assert_eq!(ln.cache_xhat.len(), 1);
        ln.clear_cache();
        assert!(ln.cache_xhat.is_empty() && ln.cache_inv_std.is_empty());
    }
}
