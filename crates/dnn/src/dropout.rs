//! Deterministic dropout keyed by the training coordinates.
//!
//! This is the Rust analogue of the paper's determinism fix (§6): dropout
//! masks are drawn from a counter-based stream keyed by `(seed, iteration,
//! microbatch, layer)`, never from mutable global RNG state. A recovered
//! worker replaying iteration `i`, micro-batch `j` regenerates *exactly*
//! the mask used before the failure, so logged-data replay is bitwise
//! faithful even through stochastic regularization.

use swift_tensor::{CounterRng, Tensor};

use crate::layer::{ActivationCache, Layer, Mode, StepCtx};

/// Inverted dropout: in training, zeroes each unit with probability `p`
/// and scales survivors by `1/(1−p)`; identity in eval mode.
#[derive(Debug)]
pub struct Dropout {
    name: String,
    p: f32,
    seed: u64,
    layer_id: u64,
    cache_mask: ActivationCache,
}

impl Dropout {
    /// Creates a dropout layer. `layer_id` must be unique within the model
    /// so sibling dropouts draw independent masks.
    pub fn new(name: impl Into<String>, p: f32, seed: u64, layer_id: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        Dropout {
            name: name.into(),
            p,
            seed,
            layer_id,
            cache_mask: ActivationCache::new(),
        }
    }

    fn mask_for(&self, ctx: StepCtx, numel: usize) -> Tensor {
        let mut rng = CounterRng::new(self.seed, ctx.stream(self.layer_id, 0xD0));
        let keep_scale = 1.0 / (1.0 - self.p);
        let data = (0..numel)
            .map(|_| {
                if rng.bernoulli(self.p) {
                    0.0
                } else {
                    keep_scale
                }
            })
            .collect();
        Tensor::from_vec([numel], data)
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.p == 0.0 {
            return input.clone();
        }
        let mask = self.mask_for(ctx, input.numel()).reshape(*input.shape());
        let y = input.mul(&mask);
        self.cache_mask.put(ctx, mask);
        y
    }

    fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor {
        if self.p == 0.0 {
            return grad_out.clone();
        }
        let mask = self.cache_mask.take(ctx);
        grad_out.mul(&mask)
    }

    fn params(&self) -> &[Tensor] {
        &[]
    }

    fn params_mut(&mut self) -> &mut [Tensor] {
        &mut []
    }

    fn grads(&self) -> &[Tensor] {
        &[]
    }

    fn grads_mut(&mut self) -> &mut [Tensor] {
        &mut []
    }

    fn params_and_grads_mut(&mut self) -> (&mut [Tensor], &[Tensor]) {
        (&mut [], &[])
    }

    fn clear_cache(&mut self) {
        self.cache_mask.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_ctx_same_mask() {
        let mut a = Dropout::new("d", 0.5, 42, 3);
        let mut b = Dropout::new("d", 0.5, 42, 3);
        let x = Tensor::ones([64]);
        let ya = a.forward(StepCtx::new(7, 2), &x, Mode::Train);
        let yb = b.forward(StepCtx::new(7, 2), &x, Mode::Train);
        assert!(ya.bit_eq(&yb), "replay must regenerate the identical mask");
    }

    #[test]
    fn different_ctx_different_mask() {
        let mut d = Dropout::new("d", 0.5, 42, 3);
        let x = Tensor::ones([256]);
        let y0 = d.forward(StepCtx::new(0, 0), &x, Mode::Train);
        d.clear_cache();
        let y1 = d.forward(StepCtx::new(0, 1), &x, Mode::Train);
        assert!(!y0.bit_eq(&y1));
    }

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new("d", 0.9, 1, 0);
        let x = Tensor::ones([32]);
        assert!(d.forward(StepCtx::new(0, 0), &x, Mode::Eval).bit_eq(&x));
    }

    #[test]
    fn drop_rate_approximately_p() {
        let mut d = Dropout::new("d", 0.3, 5, 0);
        let x = Tensor::ones([10_000]);
        let y = d.forward(StepCtx::new(0, 0), &x, Mode::Train);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f32 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn expectation_preserved() {
        let mut d = Dropout::new("d", 0.4, 6, 0);
        let x = Tensor::ones([50_000]);
        let y = d.forward(StepCtx::new(0, 0), &x, Mode::Train);
        assert!(
            (y.mean() - 1.0).abs() < 0.02,
            "inverted scaling keeps E[y]=E[x]"
        );
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new("d", 0.5, 7, 0);
        let ctx = StepCtx::new(3, 1);
        let x = Tensor::ones([128]);
        let y = d.forward(ctx, &x, Mode::Train);
        let dx = d.backward(ctx, &Tensor::ones([128]));
        // Gradient flows exactly where the forward pass let values through.
        for (yi, di) in y.data().iter().zip(dx.data().iter()) {
            assert_eq!(yi == &0.0, di == &0.0);
        }
    }
}
