//! Performance profiles of the paper's full-scale benchmark models
//! (Table 2) — the constants that parameterize the evaluation simulator.
//!
//! These are *data*, not runnable models: parameter counts, batch/
//! micro-batch geometry, iteration times, and the activation-volume
//! formula `micro_batch × hidden × seq × 4 B` from §5.4. The derived
//! quantities reproduce the paper's Table 3 analytically, e.g. BERT-128
//! with 16 machine groups: `2 dirs × 4 µbatches × (128·1024·128·4 B) ×
//! 15 boundaries = 8.05 GB/iter`.

/// Which recovery family the paper applies to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFamily {
    /// Data parallelism → replication-based recovery.
    Replication,
    /// Pipeline parallelism → logging-based recovery.
    Logging,
}

/// Profile of one full-scale benchmark model (paper Tables 2 and 4).
#[derive(Debug, Clone)]
pub struct PaperModel {
    /// Model name as in the paper.
    pub name: &'static str,
    /// Parameter count in billions (Table 2).
    pub params_billion: f64,
    /// Model state size in bytes: parameters + optimizer slots (fp32).
    pub state_bytes: f64,
    /// Global mini-batch size (Table 2).
    pub batch_size: usize,
    /// Micro-batches per iteration (m); 1 for pure data parallelism.
    pub microbatches: usize,
    /// Sequence length (tokens or patches) crossing stage boundaries.
    pub seq_len: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Number of machines in the job.
    pub machines: usize,
    /// Pipeline stages (GPUs) per machine; 0 for data parallelism.
    pub stages_per_machine: usize,
    /// Measured-equivalent iteration time in seconds (from Table 4:
    /// failure-free hours / total iterations).
    pub iter_time_s: f64,
    /// Checkpoint interval in iterations (Table 4).
    pub ckpt_interval: u64,
    /// Total training iterations (Table 4).
    pub total_iters: u64,
    /// Recovery family SWIFT applies (§7.1).
    pub family: RecoveryFamily,
    /// Time to write one global checkpoint, seconds (BERT-128: 0.93 s per
    /// §7.3; others scaled by state size).
    pub ckpt_write_s: f64,
}

const GB: f64 = 1e9;

/// Hardware constants of the paper's testbed (§7): 16 DGX-2 machines with
/// 8 × V100-32GB each, 40 Gbps Ethernet, NVMe SSDs, HDFS global storage.
#[derive(Debug, Clone, Copy)]
pub struct Testbed {
    /// Inter-machine network bandwidth, bytes/s (40 Gbps ≈ 5 GB/s).
    pub net_bps: f64,
    /// GPU↔CPU PCIe 3.0 ×16 bandwidth, bytes/s.
    pub pcie_bps: f64,
    /// Local NVMe sequential-write bandwidth, bytes/s.
    pub disk_write_bps: f64,
    /// Global store (HDFS) effective bandwidth, bytes/s (network-bound).
    pub global_store_bps: f64,
    /// GPUs per machine.
    pub gpus_per_machine: usize,
    /// Per-machine NVMe capacity, bytes (3.6 TB on the DGX-2 testbed).
    pub disk_capacity_bytes: f64,
}

/// The paper's testbed constants.
pub const TESTBED: Testbed = Testbed {
    net_bps: 5.0e9,
    pcie_bps: 12.0e9,
    disk_write_bps: 2.0e9,
    global_store_bps: 5.0e9,
    gpus_per_machine: 8,
    disk_capacity_bytes: 3.6e12,
};

/// Wide-ResNet-50 with base channel 320: 1.23 B params, 9.8 GB state,
/// data parallelism on 2 machines × 4 GPUs (paper §2.2, Table 2).
pub fn wide_resnet_50() -> PaperModel {
    PaperModel {
        name: "Wide-ResNet-50",
        params_billion: 1.23,
        state_bytes: 9.8 * GB,
        batch_size: 256,
        microbatches: 1,
        seq_len: 0,
        hidden: 0,
        machines: 2,
        stages_per_machine: 0,
        iter_time_s: 479.4 * 3600.0 / 450_360.0, // ≈ 3.83 s
        ckpt_interval: 5_004,
        total_iters: 450_360,
        family: RecoveryFamily::Replication,
        ckpt_write_s: 9.8 * GB / TESTBED.disk_write_bps, // sync write of full state
    }
}

/// ViT-128/32: 1.64 B params, 128-stage pipeline on 16 machines,
/// batch 4096, m = 16, hidden 1024, 49 patch tokens (Table 2, §7.1).
pub fn vit_128_32() -> PaperModel {
    PaperModel {
        name: "ViT-128/32",
        params_billion: 1.64,
        state_bytes: 1.64e9 * 4.0 * 3.0, // params + SGD-momentum slots + grads
        batch_size: 4096,
        microbatches: 16,
        seq_len: 49,
        hidden: 1024,
        machines: 16,
        stages_per_machine: 8,
        iter_time_s: 85.6 * 3600.0 / 93_600.0, // ≈ 3.29 s
        ckpt_interval: 312,
        total_iters: 93_600,
        family: RecoveryFamily::Logging,
        ckpt_write_s: 1.3, // pipelined per-stage checkpointing (§7.1)
    }
}

/// BERT-128: 1.11 B params, 128-stage pipeline on 16 machines, batch 512,
/// m = 4, sequence length 128, hidden 1024 (Table 2, §7.1).
pub fn bert_128() -> PaperModel {
    PaperModel {
        name: "BERT-128",
        params_billion: 1.11,
        state_bytes: 1.11e9 * 4.0 * 4.0, // params + Adam m,v + grads
        batch_size: 512,
        microbatches: 4,
        seq_len: 128,
        hidden: 1024,
        machines: 16,
        stages_per_machine: 8,
        iter_time_s: 461.1 * 3600.0 / 500_000.0, // ≈ 3.32 s
        ckpt_interval: 5_000,
        total_iters: 500_000,
        family: RecoveryFamily::Logging,
        ckpt_write_s: 0.93, // §7.3
    }
}

/// All three benchmark models.
pub fn all_models() -> Vec<PaperModel> {
    vec![wide_resnet_50(), vit_128_32(), bert_128()]
}

impl PaperModel {
    /// Per-micro-batch activation (or gradient) bytes crossing one stage
    /// boundary: `µbatch × hidden × seq × 4` (§5.4).
    pub fn boundary_bytes_per_microbatch(&self) -> f64 {
        let micro = self.batch_size as f64 / self.microbatches as f64;
        micro * self.hidden as f64 * self.seq_len as f64 * 4.0
    }

    /// Bytes crossing one machine boundary per iteration: forward
    /// activations + backward gradients for every micro-batch.
    pub fn boundary_bytes_per_iteration(&self) -> f64 {
        2.0 * self.microbatches as f64 * self.boundary_bytes_per_microbatch()
    }

    /// Total logging bytes per iteration with the machines partitioned
    /// into `groups` equal groups (Table 3's "Total logging size"):
    /// `groups − 1` logged boundaries.
    pub fn logging_bytes_per_iteration(&self, groups: usize) -> f64 {
        assert!(groups >= 1 && groups <= self.machines);
        (groups - 1) as f64 * self.boundary_bytes_per_iteration()
    }

    /// Average per-machine, per-direction logging bandwidth (Table 3's
    /// "Average consumed bandwidth"): total volume amortized over all
    /// machines, both transfer directions, and the iteration time.
    pub fn avg_logging_bandwidth(&self, groups: usize) -> f64 {
        self.logging_bytes_per_iteration(groups) / self.machines as f64 / 2.0 / self.iter_time_s
    }

    /// Failure-free end-to-end training time in seconds, including
    /// periodic checkpoint cost (Table 4 column).
    pub fn failure_free_seconds(&self) -> f64 {
        let ckpts = (self.total_iters / self.ckpt_interval) as f64;
        self.total_iters as f64 * self.iter_time_s + ckpts * self.ckpt_write_s
    }

    /// Number of pipeline stages (GPUs) total.
    pub fn total_stages(&self) -> usize {
        self.machines * self.stages_per_machine
    }

    /// Pipeline bubble-time ratio `(p−1)/(m+p−1)` per machine group
    /// sub-pipeline of `p` stages (§2.1). Returns 0 for data parallelism.
    pub fn bubble_ratio(&self) -> f64 {
        if self.stages_per_machine == 0 {
            return 0.0;
        }
        let p = self.total_stages() as f64;
        let m = self.microbatches as f64;
        (p - 1.0) / (m + p - 1.0)
    }

    /// Per-machine computation time per iteration, used by the selective
    /// logging planner (§5.3 profiles `R(G_i)` per group).
    ///
    /// The paper profiles these on hardware; we synthesize a plausible
    /// profile: compute shares the iteration time equally, with a mild
    /// linear skew (earlier machines slightly heavier — embeddings and
    /// deeper backward chains) that gives the greedy planner non-trivial
    /// merge decisions like the paper's Tables 6–7.
    pub fn per_machine_compute_s(&self) -> Vec<f64> {
        let n = self.machines;
        // A stage is busy for m of the (m+p-1) schedule slots, i.e. a
        // (1 - bubble_ratio) fraction of the iteration; a machine's serial
        // re-computation work is that fraction times its stage count.
        let base =
            self.iter_time_s * (1.0 - self.bubble_ratio()) * self.stages_per_machine.max(1) as f64;
        (0..n)
            .map(|i| {
                // ±10% linear skew, heavier at the front of the pipeline.
                let skew = 0.10 * (1.0 - 2.0 * i as f64 / (n - 1).max(1) as f64);
                base * (1.0 + skew)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_logging_sizes_match_paper() {
        // Paper Table 3: ViT 24.66 / 11.51 GB, BERT 8.05 / 3.76 GB.
        let vit = vit_128_32();
        let bert = bert_128();
        assert!((vit.logging_bytes_per_iteration(16) / GB - 24.66).abs() < 0.5);
        assert!((vit.logging_bytes_per_iteration(8) / GB - 11.51).abs() < 0.25);
        assert!((bert.logging_bytes_per_iteration(16) / GB - 8.05).abs() < 0.1);
        assert!((bert.logging_bytes_per_iteration(8) / GB - 3.76).abs() < 0.05);
    }

    #[test]
    fn table3_bandwidths_match_paper() {
        // Paper Table 3: ViT 0.23 / 0.11 GB/s, BERT 0.075 / 0.035 GB/s.
        let vit = vit_128_32();
        let bert = bert_128();
        assert!((vit.avg_logging_bandwidth(16) / GB - 0.23).abs() < 0.02);
        assert!((vit.avg_logging_bandwidth(8) / GB - 0.11).abs() < 0.01);
        assert!((bert.avg_logging_bandwidth(16) / GB - 0.075).abs() < 0.005);
        assert!((bert.avg_logging_bandwidth(8) / GB - 0.035).abs() < 0.003);
    }

    #[test]
    fn iteration_times_match_table4() {
        assert!((wide_resnet_50().iter_time_s - 3.83).abs() < 0.01);
        assert!((vit_128_32().iter_time_s - 3.29).abs() < 0.01);
        assert!((bert_128().iter_time_s - 3.32).abs() < 0.01);
    }

    #[test]
    fn failure_free_hours_close_to_table4() {
        // Table 4: 479.4 h / 85.6 h / 461.1 h (checkpoint cost included in
        // the iteration-derived times, so we allow ~1% slack).
        for (m, expect) in [
            (wide_resnet_50(), 479.4),
            (vit_128_32(), 85.6),
            (bert_128(), 461.1),
        ] {
            let hours = m.failure_free_seconds() / 3600.0;
            assert!(
                (hours - expect).abs() / expect < 0.02,
                "{}: {hours} vs {expect}",
                m.name
            );
        }
    }

    #[test]
    fn bubble_ratio_formula() {
        // Fig 1a example: p = 4, m = 4 → 3/7.
        let mut m = vit_128_32();
        m.machines = 4;
        m.stages_per_machine = 1;
        m.microbatches = 4;
        assert!((m.bubble_ratio() - 3.0 / 7.0).abs() < 1e-9);
        assert_eq!(wide_resnet_50().bubble_ratio(), 0.0);
    }

    #[test]
    fn per_machine_compute_sums_to_compute_time() {
        // Total serial re-computation work = per-stage busy time x total
        // stages; for BERT-128 each machine's share is ~0.81 s/iteration.
        let bert = bert_128();
        let v = bert.per_machine_compute_s();
        let total: f64 = v.iter().sum();
        let expect = bert.iter_time_s * (1.0 - bert.bubble_ratio()) * bert.total_stages() as f64;
        assert!((total - expect).abs() / expect < 1e-6);
        let mean = total / 16.0;
        assert!((mean - 0.81).abs() < 0.05, "per-machine replay work {mean}");
        // Skew: machine 0 heavier than machine 15.
        let v = bert.per_machine_compute_s();
        assert!(v[0] > v[15]);
    }
}
