//! The layer abstraction: stateful forward/backward with per-micro-batch
//! activation caches.
//!
//! Pipeline parallelism (1F1B) keeps several micro-batches in flight per
//! stage, so a layer caches its forward activations *per micro-batch tag*
//! and `backward` consumes the matching cache. Gradients accumulate across
//! micro-batches until [`Layer::zero_grads`].

use std::collections::HashMap;

use swift_tensor::Tensor;

/// Identifies one forward/backward execution: which training iteration and
/// which micro-batch within it. Doubles as the RNG stream key for
/// deterministic dropout (paper §6) and as the activation-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepCtx {
    /// Training iteration (0-based).
    pub iteration: u64,
    /// Micro-batch index within the iteration.
    pub microbatch: u64,
}

impl StepCtx {
    /// Context for iteration `iteration`, micro-batch `microbatch`.
    pub fn new(iteration: u64, microbatch: u64) -> Self {
        StepCtx {
            iteration,
            microbatch,
        }
    }

    /// Collapses to a single stream id for RNG keying.
    pub fn stream(&self, layer: u64, op: u64) -> u64 {
        swift_tensor::stream_id(self.iteration, self.microbatch, layer, op)
    }
}

/// Execution mode: training (dropout active, caches kept for backward) or
/// evaluation (pure inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: caches activations, applies dropout.
    Train,
    /// Evaluation: no caching, no dropout.
    Eval,
}

/// A differentiable layer with hand-written backward.
pub trait Layer: Send {
    /// Human-readable layer name (used in state serialization).
    fn name(&self) -> String;

    /// Forward pass. In [`Mode::Train`] the layer caches whatever it needs
    /// to run `backward` for the same `ctx` later.
    fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor;

    /// Backward pass for micro-batch `ctx`: consumes the cached
    /// activations, accumulates parameter gradients, and returns the
    /// gradient with respect to the layer input.
    fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor;

    /// The layer's parameters (possibly none). Layers store parameters
    /// contiguously so this is a borrow, not a per-call allocation.
    fn params(&self) -> &[Tensor];

    /// Mutable parameter access, aligned with [`Layer::params`].
    fn params_mut(&mut self) -> &mut [Tensor];

    /// Accumulated parameter gradients, aligned with [`Layer::params`].
    fn grads(&self) -> &[Tensor];

    /// Mutable gradient access, aligned with [`Layer::params`].
    fn grads_mut(&mut self) -> &mut [Tensor];

    /// Split borrow of mutable parameters alongside shared gradients —
    /// the optimizer-step path ([`Sequential::apply_update`]) reads each
    /// gradient while updating the matching parameter, and this accessor
    /// lets it do so without cloning the gradients first.
    ///
    /// [`Sequential::apply_update`]: crate::sequential::Sequential::apply_update
    fn params_and_grads_mut(&mut self) -> (&mut [Tensor], &[Tensor]);

    /// Clears accumulated gradients to zero.
    fn zero_grads(&mut self) {
        for g in self.grads_mut() {
            g.scale_inplace(0.0);
        }
    }

    /// Drops all cached activations (e.g. after a failure aborts in-flight
    /// micro-batches).
    fn clear_cache(&mut self);

    /// Total parameter element count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}

/// A per-micro-batch activation cache used by layer implementations.
#[derive(Debug, Clone, Default)]
pub struct ActivationCache {
    entries: HashMap<StepCtx, Tensor>,
}

impl ActivationCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores the activation for `ctx`, replacing any previous entry.
    pub fn put(&mut self, ctx: StepCtx, t: Tensor) {
        self.entries.insert(ctx, t);
    }

    /// Removes and returns the activation for `ctx`.
    ///
    /// # Panics
    /// Panics when no activation was cached for `ctx` — calling `backward`
    /// without the matching `forward` is a schedule bug.
    pub fn take(&mut self, ctx: StepCtx) -> Tensor {
        self.entries
            .remove(&ctx)
            .unwrap_or_else(|| panic!("no cached activation for {ctx:?}"))
    }

    /// Peeks at the activation for `ctx` without removing it.
    pub fn get(&self, ctx: StepCtx) -> Option<&Tensor> {
        self.entries.get(&ctx)
    }

    /// Number of in-flight cached activations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_round_trip() {
        let mut c = ActivationCache::new();
        let ctx = StepCtx::new(3, 1);
        c.put(ctx, Tensor::ones([2]));
        assert_eq!(c.len(), 1);
        assert!(c.get(ctx).is_some());
        let t = c.take(ctx);
        assert_eq!(t.sum(), 2.0);
        assert!(c.is_empty());
    }

    #[test]
    fn cache_distinguishes_microbatches() {
        let mut c = ActivationCache::new();
        c.put(StepCtx::new(0, 0), Tensor::full([1], 1.0));
        c.put(StepCtx::new(0, 1), Tensor::full([1], 2.0));
        assert_eq!(c.take(StepCtx::new(0, 1)).item(), 2.0);
        assert_eq!(c.take(StepCtx::new(0, 0)).item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "no cached activation")]
    fn take_missing_panics() {
        ActivationCache::new().take(StepCtx::new(0, 0));
    }

    #[test]
    fn stream_ids_differ_per_microbatch() {
        let a = StepCtx::new(5, 0).stream(2, 0);
        let b = StepCtx::new(5, 1).stream(2, 0);
        assert_ne!(a, b);
    }
}
