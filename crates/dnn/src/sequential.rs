//! A sequential stack of layers, with flat parameter-group indexing for
//! layer-wise optimizer updates and binary-serializable model state.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use swift_optim::{Optimizer, UndoError};
use swift_tensor::{
    decode_from as decode_tensor, encode_into as encode_tensor_into,
    encoded_size as encoded_tensor_size, Tensor,
};

use crate::layer::{Layer, Mode, StepCtx};

/// An ordered stack of layers executed front to back.
///
/// Parameter groups are numbered globally across layers in declaration
/// order; this index keys the optimizer's per-group slots, so the same
/// model structure always maps to the same slot layout (a requirement for
/// checkpoint compatibility).
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    /// Global parameter-group offset of each layer (prefix sums, one extra
    /// trailing entry = total group count). Group counts are static per
    /// layer, so this is computed once at construction — `backward_with`
    /// and the update paths stay allocation-free in steady state.
    group_offsets: Vec<usize>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sequential({}, {} layers, {} params)",
            self.name,
            self.layers.len(),
            self.param_count()
        )
    }
}

impl Sequential {
    /// Creates a named sequential model.
    pub fn new(name: impl Into<String>, layers: Vec<Box<dyn Layer>>) -> Self {
        let mut group_offsets = Vec::with_capacity(layers.len() + 1);
        let mut acc = 0usize;
        for l in &layers {
            group_offsets.push(acc);
            acc += l.params().len();
        }
        group_offsets.push(acc);
        Sequential {
            name: name.into(),
            layers,
            group_offsets,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total parameter elements.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total parameter bytes (the "model state size" of the paper's §2.2,
    /// excluding optimizer slots).
    pub fn byte_size(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Number of parameter groups (tensors) across all layers.
    pub fn num_param_groups(&self) -> usize {
        self.group_offsets[self.layers.len()]
    }

    /// Element counts of every parameter group, globally ordered (the
    /// geometry gradient bucketing is planned from — no tensor clones).
    pub fn group_numels(&self) -> Vec<usize> {
        self.layers
            .iter()
            .flat_map(|l| l.params().iter().map(|p| p.numel()))
            .collect()
    }

    /// True when `numels` matches this model's per-group element counts —
    /// the allocation-free validity check for state planned from the group
    /// geometry (e.g. a cached gradient-bucketing reducer).
    pub fn group_numels_match(&self, numels: &[usize]) -> bool {
        self.layers
            .iter()
            .flat_map(|l| l.params().iter().map(|p| p.numel()))
            .eq(numels.iter().copied())
    }

    /// Forward through all layers.
    pub fn forward(&mut self, ctx: StepCtx, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(ctx, &x, mode);
        }
        x
    }

    /// Backward through all layers (reverse order), accumulating parameter
    /// gradients; returns the gradient w.r.t. the model input.
    pub fn backward(&mut self, ctx: StepCtx, grad_out: &Tensor) -> Tensor {
        self.backward_with(ctx, grad_out, &mut |_, _| {})
    }

    /// [`backward`](Sequential::backward) with a per-layer completion
    /// hook: after each layer's backward finishes, `on_layer_done`
    /// receives the layer's global parameter-group range and its freshly
    /// accumulated gradients (in global group order). Layers complete in
    /// *reverse* order — the overlap seam gradient bucketing launches
    /// bucket all-reduces from while earlier layers are still computing.
    pub fn backward_with(
        &mut self,
        ctx: StepCtx,
        grad_out: &Tensor,
        on_layer_done: &mut dyn FnMut(std::ops::Range<usize>, &[Tensor]),
    ) -> Tensor {
        let offsets = &self.group_offsets;
        let mut g = grad_out.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            g = layer.backward(ctx, &g);
            let grads = layer.grads();
            if !grads.is_empty() {
                on_layer_done(offsets[i]..offsets[i + 1], grads);
            }
        }
        g
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Drops all in-flight activation caches (post-failure cleanup).
    pub fn clear_caches(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }

    /// Clones the current gradients, globally ordered.
    pub fn grads_snapshot(&self) -> Vec<Tensor> {
        self.layers
            .iter()
            .flat_map(|l| l.grads().iter().cloned())
            .collect()
    }

    /// Copies the current gradients into `out`, reusing its tensors'
    /// buffers when the group count matches (the steady-state path: after
    /// the first call this snapshots without allocating).
    pub fn grads_snapshot_into(&self, out: &mut Vec<Tensor>) {
        if out.len() != self.num_param_groups() {
            out.clear();
            out.extend(self.layers.iter().flat_map(|l| l.grads().iter().cloned()));
            return;
        }
        let mut idx = 0usize;
        for l in &self.layers {
            for g in l.grads() {
                out[idx].clone_from(g);
                idx += 1;
            }
        }
    }

    /// Clones the current parameters, globally ordered.
    pub fn params_snapshot(&self) -> Vec<Tensor> {
        self.layers
            .iter()
            .flat_map(|l| l.params().iter().cloned())
            .collect()
    }

    /// Applies the optimizer update to parameter groups
    /// `[from_group, to_group)` in global order (layer-wise wait-free
    /// update). Call `opt.finish_step()` after updating every group.
    ///
    /// Returns the global indices of the groups updated — the "marked
    /// updated" set the paper's update-undo consults after a crash.
    pub fn apply_update(
        &mut self,
        opt: &mut dyn Optimizer,
        from_group: usize,
        to_group: usize,
    ) -> Vec<usize> {
        let mut updated = Vec::new();
        let mut idx = 0usize;
        for layer in &mut self.layers {
            // Split borrow: mutate each parameter while reading its
            // gradient in place — no per-layer gradient clones.
            let (params, grads) = layer.params_and_grads_mut();
            for (p, g) in params.iter_mut().zip(grads.iter()) {
                if idx >= from_group && idx < to_group {
                    opt.step_one(idx, p, g);
                    updated.push(idx);
                }
                idx += 1;
            }
        }
        updated
    }

    /// Undoes the most recent update of exactly the given global parameter
    /// groups (the crash-consistency repair of paper §4).
    pub fn undo_update(
        &mut self,
        opt: &mut dyn Optimizer,
        groups: &[usize],
    ) -> Result<(), UndoError> {
        let set: std::collections::HashSet<usize> = groups.iter().copied().collect();
        let mut idx = 0usize;
        for layer in &mut self.layers {
            let (params, grads) = layer.params_and_grads_mut();
            for (p, g) in params.iter_mut().zip(grads.iter()) {
                if set.contains(&idx) {
                    opt.undo_one(idx, p, g)?;
                }
                idx += 1;
            }
        }
        Ok(())
    }

    /// Like [`apply_update`](Self::apply_update) but with externally
    /// supplied gradients (e.g. all-reduced ones in data parallelism),
    /// globally indexed like [`grads_snapshot`](Self::grads_snapshot).
    pub fn apply_update_with(
        &mut self,
        opt: &mut dyn Optimizer,
        grads: &[Tensor],
        from_group: usize,
        to_group: usize,
    ) -> Vec<usize> {
        let mut updated = Vec::new(); // lint:alloc-ok (diagnostic return, hot callers use apply_update_range)
        self.apply_update_range(opt, grads, from_group, to_group);
        updated.extend(from_group..to_group.min(self.num_param_groups()));
        updated
    }

    /// [`apply_update_with`](Self::apply_update_with) without
    /// materializing the updated-group list — the steady-state
    /// bucket-drain path, which already knows the range it applied.
    pub fn apply_update_range(
        &mut self,
        opt: &mut dyn Optimizer,
        grads: &[Tensor],
        from_group: usize,
        to_group: usize,
    ) {
        assert_eq!(grads.len(), self.num_param_groups());
        let mut idx = 0usize;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                if idx >= from_group && idx < to_group {
                    opt.step_one(idx, p, &grads[idx]);
                }
                idx += 1;
            }
        }
    }

    /// Like [`undo_update`](Self::undo_update) but with externally
    /// supplied gradients (must be the same ones the update used).
    pub fn undo_update_with(
        &mut self,
        opt: &mut dyn Optimizer,
        grads: &[Tensor],
        groups: &[usize],
    ) -> Result<(), UndoError> {
        assert_eq!(grads.len(), self.num_param_groups());
        let set: std::collections::HashSet<usize> = groups.iter().copied().collect();
        let mut idx = 0usize;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                if set.contains(&idx) {
                    opt.undo_one(idx, p, &grads[idx])?;
                }
                idx += 1;
            }
        }
        Ok(())
    }

    /// Convenience: full update of every group plus `finish_step`.
    pub fn optimizer_step(&mut self, opt: &mut dyn Optimizer) {
        let n = self.num_param_groups();
        self.apply_update(opt, 0, n);
        opt.finish_step();
    }

    /// Convenience: undo every group plus `rollback_step`.
    pub fn optimizer_undo(&mut self, opt: &mut dyn Optimizer) -> Result<(), UndoError> {
        let groups: Vec<usize> = (0..self.num_param_groups()).collect();
        self.undo_update(opt, &groups)?;
        opt.rollback_step();
        Ok(())
    }

    /// Decomposes the model into its name and layer stack.
    pub fn into_parts(self) -> (String, Vec<Box<dyn Layer>>) {
        (self.name, self.layers)
    }

    /// Snapshot of all parameters as named tensors.
    pub fn state(&self) -> ModelState {
        let mut entries = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            for (pi, p) in layer.params().iter().enumerate() {
                entries.push((format!("{li}:{}.{pi}", layer.name()), p.clone()));
            }
        }
        ModelState { entries }
    }

    /// Restores all parameters from a snapshot.
    ///
    /// # Panics
    /// Panics on structure mismatch (different layer stack).
    pub fn load_state(&mut self, state: &ModelState) {
        let mut it = state.entries.iter();
        for (li, layer) in self.layers.iter_mut().enumerate() {
            let lname = layer.name();
            for (pi, p) in layer.params_mut().iter_mut().enumerate() {
                let (name, tensor) = it
                    .next()
                    .unwrap_or_else(|| panic!("model state too short at layer {li}"));
                assert_eq!(
                    name,
                    &format!("{li}:{lname}.{pi}"),
                    "model state entry mismatch"
                );
                assert_eq!(
                    p.shape(),
                    tensor.shape(),
                    "parameter shape mismatch at {name}"
                );
                *p = tensor.clone();
            }
        }
        assert!(it.next().is_none(), "model state has extra entries");
    }
}

/// A named-tensor snapshot of model parameters, with a stable binary
/// encoding for checkpoints and replication broadcasts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelState {
    /// `(qualified name, parameter tensor)` in global group order.
    pub entries: Vec<(String, Tensor)>,
}

impl ModelState {
    /// Total payload bytes.
    pub fn byte_size(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.byte_size()).sum()
    }

    /// Maximum absolute difference against another state (∞ on mismatch).
    pub fn max_abs_diff(&self, other: &ModelState) -> f32 {
        if self.entries.len() != other.entries.len() {
            return f32::INFINITY;
        }
        self.entries
            .iter()
            .zip(other.entries.iter())
            .map(|((_, a), (_, b))| a.max_abs_diff(b))
            .fold(0.0, f32::max)
    }

    /// True when bitwise identical to another state.
    pub fn bit_eq(&self, other: &ModelState) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(other.entries.iter())
                .all(|((na, a), (nb, b))| na == nb && a.bit_eq(b))
    }

    /// Encodes to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_size());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes, appending to any [`BufMut`] (a `BytesMut` or a pooled
    /// staging buffer) instead of allocating a fresh one.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.entries.len() as u32);
        for (name, t) in &self.entries {
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            encode_tensor_into(t, buf);
        }
    }

    /// Exact number of bytes [`encode`](ModelState::encode) will produce —
    /// computed arithmetically, without encoding anything.
    pub fn encoded_size(&self) -> usize {
        4 + self
            .entries
            .iter()
            .map(|(name, t)| 4 + name.len() + encoded_tensor_size(t))
            .sum::<usize>()
    }

    /// Decodes from the front of any [`Buf`] (a `Bytes` or a plain byte
    /// slice), advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, String> {
        if buf.remaining() < 4 {
            return Err("model state truncated".into());
        }
        let n = buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.remaining() < 4 {
                return Err("model state truncated".into());
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err("model state truncated".into());
            }
            let mut raw = vec![0u8; len];
            buf.copy_to_slice(&mut raw);
            let name = String::from_utf8(raw).map_err(|e| e.to_string())?;
            let t = decode_tensor(buf).map_err(|e| e.to_string())?;
            entries.push((name, t));
        }
        Ok(ModelState { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::linear::Linear;
    use swift_optim::OptimizerKind;
    use swift_tensor::CounterRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = CounterRng::new(seed, 0);
        Sequential::new(
            "tiny",
            vec![
                Box::new(Linear::new("fc1", 4, 8, &mut rng)),
                Box::new(Activation::relu("relu")),
                Box::new(Linear::new("fc2", 8, 3, &mut rng)),
            ],
        )
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = tiny_model(0);
        let ctx = StepCtx::new(0, 0);
        let x = Tensor::ones([5, 4]);
        let y = m.forward(ctx, &x, Mode::Train);
        assert_eq!(y.shape().dims(), &[5, 3]);
        let dx = m.backward(ctx, &Tensor::ones([5, 3]));
        assert_eq!(dx.shape().dims(), &[5, 4]);
        assert_eq!(m.num_param_groups(), 4);
    }

    #[test]
    fn full_step_and_undo_round_trip() {
        let mut m = tiny_model(1);
        let mut opt = OptimizerKind::SgdMomentum {
            lr: 0.1,
            weight_decay: 0.01,
            momentum: 0.9,
            dampening: 0.0,
        }
        .build();
        let ctx = StepCtx::new(0, 0);
        let x = Tensor::ones([2, 4]);
        let y = m.forward(ctx, &x, Mode::Train);
        m.backward(ctx, &y.scale(0.1));
        let before = m.state();
        m.optimizer_step(opt.as_mut());
        assert!(m.state().max_abs_diff(&before) > 0.0);
        m.optimizer_undo(opt.as_mut()).unwrap();
        assert!(m.state().max_abs_diff(&before) < 1e-5);
    }

    #[test]
    fn partial_update_then_undo_restores_consistency() {
        // Crash mid-update: only the first 2 groups were updated.
        let mut m = tiny_model(2);
        let mut opt = OptimizerKind::Adam {
            lr: 1e-2,
            weight_decay: 0.0,
        }
        .build();
        let ctx = StepCtx::new(0, 0);
        let x = Tensor::ones([2, 4]);
        let y = m.forward(ctx, &x, Mode::Train);
        m.backward(ctx, &y.scale(0.1));
        let before = m.state();
        let updated = m.apply_update(opt.as_mut(), 0, 2);
        assert_eq!(updated, vec![0, 1]);
        // groups 2,3 untouched; undo exactly the marked ones.
        m.undo_update(opt.as_mut(), &updated).unwrap();
        assert!(m.state().max_abs_diff(&before) < 1e-5);
    }

    #[test]
    fn state_encode_decode_round_trip() {
        let m = tiny_model(3);
        let state = m.state();
        let mut bytes = state.encode();
        let back = ModelState::decode(&mut bytes).unwrap();
        assert!(back.bit_eq(&state));
        assert_eq!(state.byte_size(), m.byte_size());
    }

    #[test]
    fn load_state_transfers_parameters() {
        let src = tiny_model(4);
        let mut dst = tiny_model(5);
        assert!(dst.state().max_abs_diff(&src.state()) > 0.0);
        dst.load_state(&src.state());
        assert!(dst.state().bit_eq(&src.state()));
    }

    #[test]
    #[should_panic(expected = "entry mismatch")]
    fn load_state_detects_structure_mismatch() {
        let src = tiny_model(6);
        let mut state = src.state();
        state.entries.swap(0, 2);
        let mut dst = tiny_model(6);
        dst.load_state(&state);
    }

    #[test]
    fn grads_snapshot_matches_group_count() {
        let mut m = tiny_model(7);
        let ctx = StepCtx::new(0, 0);
        let y = m.forward(ctx, &Tensor::ones([1, 4]), Mode::Train);
        m.backward(ctx, &y);
        let grads = m.grads_snapshot();
        assert_eq!(grads.len(), m.num_param_groups());
        assert!(grads.iter().any(|g| g.sum_sq() > 0.0));
        m.zero_grads();
        assert!(m.grads_snapshot().iter().all(|g| g.sum_sq() == 0.0));
    }
}
