//! Minimal hand-rolled JSON: enough to serialize a counterexample and
//! parse it back for `--replay`. The build container is hermetic (no
//! serde_json), and the schema is three scalars and two flat arrays —
//! a full JSON stack would be the heavier dependency.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes and quotes `s` as a JSON string literal into `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a `usize` array compactly.
pub fn push_usize_arr(out: &mut String, items: &[usize]) {
    out.push('[');
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Serializes a string array.
pub fn push_str_arr(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(out, v);
    }
    out.push(']');
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through unchanged.
                let len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("bad utf-8 in string")?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        pairs.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_counterexample_shape() {
        let mut out = String::new();
        out.push_str("{\"mutation\":");
        push_str_lit(&mut out, "skip-generation-fence");
        out.push_str(",\"choices\":");
        push_usize_arr(&mut out, &[0, 3, 1]);
        out.push_str(",\"actions\":");
        push_str_arr(&mut out, &["crash:1".into(), "deliver:1->0".into()]);
        out.push('}');
        let doc = parse(&out).unwrap();
        assert_eq!(
            doc.get("mutation").and_then(Json::as_str),
            Some("skip-generation-fence")
        );
        let choices: Vec<u64> = doc
            .get("choices")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|j| j.as_u64().unwrap())
            .collect();
        assert_eq!(choices, vec![0, 3, 1]);
        assert_eq!(
            doc.get("actions").and_then(Json::as_arr).unwrap()[1].as_str(),
            Some("deliver:1->0")
        );
    }

    #[test]
    fn escapes_survive() {
        let mut out = String::new();
        push_str_lit(&mut out, "a\"b\\c\nd\te");
        let doc = parse(&out).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nd\te"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
    }
}
