//! Human- and machine-readable output: the run summary, the
//! counterexample timeline (rendered in swift-obs recovery-phase
//! vocabulary), and the serialized schedule for `--replay`.

use std::fmt::Write as _;

use swift_obs::Phase;

use crate::explore::{Counterexample, Report};
use crate::json::{self, Json};
use crate::minimize;
use crate::model::{Config, Mutation};

/// One-paragraph run summary (schedules explored/pruned, terminals,
/// verdict). This is what `cargo xtask mc` prints on success.
pub fn summary(report: &Report) -> String {
    let s = &report.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mc: {} ranks, {} iters x {} groups, {} crash budget (slots {:?}{}), depth {}",
        report.config.ranks,
        report.config.iters,
        report.config.groups,
        report.config.max_crashes,
        report.config.crash_slots,
        if report.config.torn_wal {
            ", torn-wal"
        } else {
            ""
        },
        report.opts_depth,
    );
    if report.config.mutation != Mutation::None {
        let _ = writeln!(out, "mc: MUTATION {}", report.config.mutation.as_str());
    }
    let _ = writeln!(
        out,
        "mc: {} transitions explored, {} sleep-pruned, {} state-pruned, \
         {} terminal executions, {} depth-bounded",
        s.explored, s.pruned_sleep, s.pruned_visited, s.terminals, s.bounded,
    );
    if s.walk_steps > 0 {
        let _ = writeln!(out, "mc: {} random-walk steps", s.walk_steps);
    }
    match &report.violation {
        None => {
            let _ = writeln!(
                out,
                "mc: PASS — generation-fence safety, epoch monotonicity, \
                 exactly-once application, KV linearizability all hold"
            );
        }
        Some(ce) => {
            let _ = writeln!(
                out,
                "mc: VIOLATION [{}] {} ({} steps{})",
                ce.violation.kind(),
                ce.violation,
                ce.choices.len(),
                if ce.minimized { ", minimized" } else { "" },
            );
        }
    }
    out
}

/// Classifies a trace line into the swift-obs recovery-phase
/// vocabulary so the counterexample reads like a recovery timeline.
fn phase_tag(line: &str) -> &'static str {
    if line.contains("CRASH") {
        "fail  "
    } else if line.contains("dark link") || line.contains("probe") || line.contains("DECLARED") {
        tag_of(Phase::Detect)
    } else if line.contains("UNDO") {
        tag_of(Phase::Undo)
    } else if line.contains("FENCE") || line.contains("fenced") || line.contains("purged") {
        tag_of(Phase::Fence)
    } else if line.contains("REPLACEMENT") || line.contains("replay") {
        tag_of(Phase::Replay)
    } else if line.contains("RESUME") || line.contains("recovery complete") {
        tag_of(Phase::Resume)
    } else {
        "train "
    }
}

fn tag_of(p: Phase) -> &'static str {
    match p {
        Phase::Detect => "detect",
        Phase::Undo => "undo  ",
        Phase::Fence => "fence ",
        Phase::Broadcast => "bcast ",
        Phase::Replay => "replay",
        Phase::Resume => "resume",
    }
}

/// Re-executes the counterexample and renders its event trace as a
/// phase-tagged timeline, ending with the violation.
pub fn render_counterexample(cfg: &Config, ce: &Counterexample) -> String {
    let (world, _) = minimize::execute(cfg, &ce.choices);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "--- counterexample ({} schedule points{}) ---",
        ce.choices.len(),
        if ce.minimized { ", minimized" } else { "" }
    );
    let _ = writeln!(out, "schedule: {}", ce.actions.join(" ; "));
    let _ = writeln!(out, "timeline:");
    for line in &world.trace {
        let _ = writeln!(out, "  {} | {}", phase_tag(line), line);
    }
    for v in &world.violations {
        let _ = writeln!(out, "VIOLATION [{}] {v}", v.kind());
    }
    out
}

/// Serializes a counterexample (with the config needed to replay it)
/// as a standalone JSON document.
pub fn counterexample_json(cfg: &Config, ce: &Counterexample) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"config\": {");
    let _ = write!(
        out,
        "\"ranks\": {}, \"iters\": {}, \"groups\": {}, \"max_crashes\": {}, ",
        cfg.ranks, cfg.iters, cfg.groups, cfg.max_crashes
    );
    out.push_str("\"crash_slots\": ");
    json::push_usize_arr(&mut out, &cfg.crash_slots);
    let _ = write!(out, ", \"torn_wal\": {}", cfg.torn_wal);
    out.push_str(", \"mutation\": ");
    json::push_str_lit(&mut out, cfg.mutation.as_str());
    out.push_str("},\n  \"choices\": ");
    json::push_usize_arr(&mut out, &ce.choices);
    out.push_str(",\n  \"actions\": ");
    json::push_str_arr(&mut out, &ce.actions);
    out.push_str(",\n  \"violation\": ");
    json::push_str_lit(
        &mut out,
        &format!("[{}] {}", ce.violation.kind(), ce.violation),
    );
    out.push_str(",\n  \"minimized\": ");
    let _ = write!(out, "{}", ce.minimized);
    out.push_str("\n}\n");
    out
}

/// Parses a counterexample file back into `(config, choices)` for
/// `cargo xtask mc --replay`.
pub fn parse_replay(doc: &str) -> Result<(Config, Vec<usize>), String> {
    let json = json::parse(doc)?;
    let cfg_doc = json.get("config").ok_or("missing \"config\"")?;
    let num = |key: &str| -> Result<u64, String> {
        cfg_doc
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
    };
    let cfg = Config {
        ranks: num("ranks")? as usize,
        iters: num("iters")?,
        groups: num("groups")? as usize,
        max_crashes: num("max_crashes")? as usize,
        crash_slots: cfg_doc
            .get("crash_slots")
            .and_then(Json::as_arr)
            .ok_or("missing \"crash_slots\"")?
            .iter()
            .filter_map(|j| j.as_u64().map(|v| v as usize))
            .collect(),
        torn_wal: cfg_doc
            .get("torn_wal")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        mutation: cfg_doc
            .get("mutation")
            .and_then(Json::as_str)
            .and_then(Mutation::parse)
            .unwrap_or(Mutation::None),
    };
    let choices = json
        .get("choices")
        .and_then(Json::as_arr)
        .ok_or("missing \"choices\"")?
        .iter()
        .map(|j| {
            j.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| "non-numeric choice".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((cfg, choices))
}

/// JSON form of the run summary for `--json` / CI consumption.
pub fn report_json(report: &Report) -> String {
    let s = &report.stats;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"ranks\": {}, \"iters\": {}, \"groups\": {},",
        report.config.ranks, report.config.iters, report.config.groups
    );
    out.push_str("  \"mutation\": ");
    json::push_str_lit(&mut out, report.config.mutation.as_str());
    let _ = write!(out, ",\n  \"depth\": {},\n", report.opts_depth);
    let _ = write!(
        out,
        "  \"explored\": {}, \"pruned_sleep\": {}, \"pruned_visited\": {},\n  \
         \"terminals\": {}, \"bounded\": {}, \"walk_steps\": {},\n",
        s.explored, s.pruned_sleep, s.pruned_visited, s.terminals, s.bounded, s.walk_steps
    );
    match &report.violation {
        None => out.push_str("  \"violation\": null\n"),
        Some(ce) => {
            out.push_str("  \"violation\": ");
            json::push_str_lit(
                &mut out,
                &format!("[{}] {}", ce.violation.kind(), ce.violation),
            );
            out.push('\n');
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Violation;

    #[test]
    fn replay_file_roundtrips() {
        let cfg = Config {
            torn_wal: true,
            mutation: Mutation::SkipUndo,
            ..Config::default()
        };
        let ce = Counterexample {
            choices: vec![2, 0, 5],
            actions: vec!["crash:1".into(), "step:2".into()],
            violation: Violation::ApplyCountWrong {
                slot: 2,
                it: 0,
                group: 1,
                count: 2,
            },
            minimized: true,
        };
        let doc = counterexample_json(&cfg, &ce);
        let (parsed_cfg, parsed_choices) = parse_replay(&doc).unwrap();
        assert_eq!(parsed_choices, vec![2, 0, 5]);
        assert_eq!(parsed_cfg.ranks, cfg.ranks);
        assert!(parsed_cfg.torn_wal);
        assert_eq!(parsed_cfg.mutation, Mutation::SkipUndo);
    }
}
