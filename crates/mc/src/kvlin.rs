//! Wing–Gong linearizability checking of the control-plane history.
//!
//! Every KV operation the model's ranks issue is recorded as an
//! invoke/apply/respond triple of global sequence numbers. Oracle 4
//! asks: does the *client-visible* history (invocations and responses)
//! admit a linearization against the sequential map specification? The
//! server applies operations atomically, so apply order is always a
//! witness for a *correct* two-phase protocol — what this check catches
//! is bookkeeping bugs where a response is delivered out of order with
//! the state it claims to reflect.
//!
//! The search is the classic Wing & Gong recursion with two standard
//! strengthenings: operations are tracked in a `u64` bitmask (histories
//! here are short), and `(done-mask, state-hash)` pairs are memoized so
//! equivalent interleaving prefixes are explored once.

use std::collections::{BTreeMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};

use crate::model::{KvCall, KvReq, KvRes};

const MAX_OPS: usize = 64;

/// Checks the recorded history for linearizability. `Err` carries a
/// human-readable description of the obstruction.
pub fn check_history(history: &[KvCall]) -> Result<(), String> {
    // Operations that never reached the server left no trace on the
    // store; they cannot obstruct a linearization and are dropped.
    let ops: Vec<&KvCall> = history.iter().filter(|c| c.applied.is_some()).collect();
    if ops.is_empty() {
        return Ok(());
    }
    if ops.len() > MAX_OPS {
        return Err(format!(
            "history of {} applied ops exceeds the {MAX_OPS}-op checker bound",
            ops.len()
        ));
    }
    let n = ops.len();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    // Real-time bounds: an op that never got its response back to the
    // client stays "open" forever and can be linearized anywhere after
    // its invocation.
    let resp: Vec<u64> = ops
        .iter()
        .map(|c| c.responded.unwrap_or(u64::MAX))
        .collect();
    let inv: Vec<u64> = ops.iter().map(|c| c.invoked).collect();

    let mut memo: HashSet<(u64, u64)> = HashSet::new();
    let mut state: BTreeMap<String, String> = BTreeMap::new();
    if search(&ops, &inv, &resp, 0, full, &mut state, &mut memo) {
        Ok(())
    } else {
        Err(describe_obstruction(&ops))
    }
}

fn state_hash(state: &BTreeMap<String, String>) -> u64 {
    let mut h = DefaultHasher::new();
    state.hash(&mut h);
    h.finish()
}

fn search(
    ops: &[&KvCall],
    inv: &[u64],
    resp: &[u64],
    done: u64,
    full: u64,
    state: &mut BTreeMap<String, String>,
    memo: &mut HashSet<(u64, u64)>,
) -> bool {
    if done == full {
        return true;
    }
    if !memo.insert((done, state_hash(state))) {
        return false;
    }
    for i in 0..ops.len() {
        if done & (1 << i) != 0 {
            continue;
        }
        // Minimality (Wing–Gong): `i` may linearize next only if no
        // other pending op responded before `i` was even invoked.
        let minimal = (0..ops.len()).all(|j| j == i || done & (1 << j) != 0 || resp[j] >= inv[i]);
        if !minimal {
            continue;
        }
        let Some(undo) = apply_if_consistent(ops[i], state) else {
            continue;
        };
        if search(ops, inv, resp, done | (1 << i), full, state, memo) {
            return true;
        }
        undo.revert(state);
    }
    false
}

/// Applies `op` to the sequential spec iff its recorded result is what
/// the spec produces from `state`; returns the undo on success.
fn apply_if_consistent(op: &KvCall, state: &mut BTreeMap<String, String>) -> Option<Undo> {
    let res = op.res.as_ref().expect("applied op has a result");
    match (&op.req, res) {
        (KvReq::Get { key }, KvRes::Value(v)) => {
            (state.get(key) == v.as_ref()).then_some(Undo::Nothing)
        }
        (KvReq::Set { key, val }, KvRes::SetOk) => {
            let prev = state.insert(key.clone(), val.clone());
            Some(Undo::Restore {
                key: key.clone(),
                prev,
            })
        }
        (KvReq::Cas { key, old, new }, KvRes::Cas { ok, actual }) => {
            let current = state.get(key).cloned();
            let matches = current.as_deref() == old.as_deref();
            if *ok {
                if !matches {
                    return None;
                }
                let prev = state.insert(key.clone(), new.clone());
                Some(Undo::Restore {
                    key: key.clone(),
                    prev,
                })
            } else {
                // A failed CAS must have observed the conflicting value.
                (!matches && *actual == current).then_some(Undo::Nothing)
            }
        }
        other => unreachable!("mismatched req/res pair {other:?}"),
    }
}

enum Undo {
    Nothing,
    Restore { key: String, prev: Option<String> },
}

impl Undo {
    fn revert(self, state: &mut BTreeMap<String, String>) {
        if let Undo::Restore { key, prev } = self {
            match prev {
                Some(v) => {
                    state.insert(key, v);
                }
                None => {
                    state.remove(&key);
                }
            }
        }
    }
}

fn describe_obstruction(ops: &[&KvCall]) -> String {
    let summary: Vec<String> = ops
        .iter()
        .map(|c| {
            format!(
                "client {} {:?} -> {:?} [inv {}, resp {}]",
                c.client,
                c.req,
                c.res,
                c.invoked,
                c.responded
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "-".into())
            )
        })
        .collect();
    format!("no valid linearization of: {}", summary.join("; "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(
        client: usize,
        req: KvReq,
        res: KvRes,
        invoked: u64,
        applied: u64,
        responded: Option<u64>,
    ) -> KvCall {
        KvCall {
            client,
            req,
            res: Some(res),
            invoked,
            applied: Some(applied),
            responded,
        }
    }

    #[test]
    fn sequential_history_linearizes() {
        let h = vec![
            call(
                0,
                KvReq::Set {
                    key: "x".into(),
                    val: "1".into(),
                },
                KvRes::SetOk,
                1,
                2,
                Some(3),
            ),
            call(
                1,
                KvReq::Get { key: "x".into() },
                KvRes::Value(Some("1".into())),
                4,
                5,
                Some(6),
            ),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn stale_read_after_completed_write_is_rejected() {
        // A completed Set(x=1) strictly precedes (in real time) a Get(x)
        // that returned None: no linearization exists, the checker must
        // say so. This is the known-bad history keeping oracle 4 honest.
        let h = vec![
            call(
                0,
                KvReq::Set {
                    key: "x".into(),
                    val: "1".into(),
                },
                KvRes::SetOk,
                1,
                2,
                Some(3),
            ),
            call(
                1,
                KvReq::Get { key: "x".into() },
                KvRes::Value(None),
                4,
                5,
                Some(6),
            ),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn concurrent_stale_read_is_allowed() {
        // Same responses, but the Get overlaps the Set: linearizing the
        // Get first is legal.
        let h = vec![
            call(
                0,
                KvReq::Set {
                    key: "x".into(),
                    val: "1".into(),
                },
                KvRes::SetOk,
                1,
                3,
                Some(5),
            ),
            call(
                1,
                KvReq::Get { key: "x".into() },
                KvRes::Value(None),
                2,
                4,
                Some(6),
            ),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn failed_cas_must_report_the_conflicting_value() {
        let h = vec![
            call(
                0,
                KvReq::Set {
                    key: "k".into(),
                    val: "a".into(),
                },
                KvRes::SetOk,
                1,
                2,
                Some(3),
            ),
            call(
                1,
                KvReq::Cas {
                    key: "k".into(),
                    old: None,
                    new: "b".into(),
                },
                KvRes::Cas {
                    ok: false,
                    actual: Some("wrong".into()),
                },
                4,
                5,
                Some(6),
            ),
        ];
        assert!(check_history(&h).is_err());
    }
}
