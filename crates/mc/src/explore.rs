//! Bounded-exhaustive schedule exploration with sleep-set pruning and
//! state-fingerprint deduplication, plus a seeded random-walk fallback
//! for configurations past the exhaustive horizon.
//!
//! The explorer is a DFS over [`World`] states. At each state the
//! enabled actions are enumerated in a stable order, so a path is fully
//! described by its sequence of *choice indices* — that is what gets
//! serialized into a counterexample and replayed with `--replay`.
//!
//! Pruning is two-layer:
//!
//! - **Sleep sets** (DPOR's cheap half): after exploring action `a`
//!   from a state, `a` goes to sleep for the remaining branches; a
//!   sleeping action wakes only when a dependent action executes. This
//!   kills the `a;b` / `b;a` commuting-pair blowup without a happens-
//!   before vector-clock machinery.
//! - **Visited fingerprints**: protocol-relevant state (ranks, queues,
//!   KV contents, WAL frontier — *not* the event counter or trace) is
//!   hashed; a state seen before at the same remaining depth with the
//!   same sleep set is not re-expanded. Keying on the sleep set is what
//!   keeps the combination of sleep sets + state matching sound.

use crate::minimize;
use crate::model::{independent, Action, Config, Violation, World};

/// Exploration bounds and the random-walk fallback's shape.
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Maximum schedule length for the exhaustive pass. Runs that hit
    /// the bound count in [`Stats::bounded`], not as terminals.
    pub depth: usize,
    /// Seed for the random-walk fallback.
    pub seed: u64,
    /// Number of random walks after the exhaustive pass (0 disables).
    pub walks: usize,
    /// Step cap per random walk (walks past the exhaustive depth are
    /// the point, so this is usually > `depth`).
    pub walk_depth: usize,
    /// Skip counterexample minimization (replay of an un-minimized
    /// schedule is still deterministic; minimization is for humans).
    pub no_minimize: bool,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            depth: 80,
            seed: 0xC0FFEE,
            walks: 0,
            walk_depth: 400,
            no_minimize: false,
        }
    }
}

/// Exploration counters, reported even on success.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Transitions executed by the exhaustive pass.
    pub explored: u64,
    /// Branches skipped because the action was asleep.
    pub pruned_sleep: u64,
    /// States skipped as already-visited fingerprints.
    pub pruned_visited: u64,
    /// Complete executions reached (all live ranks done).
    pub terminals: u64,
    /// Paths cut by the depth bound.
    pub bounded: u64,
    /// Random-walk steps executed by the fallback.
    pub walk_steps: u64,
}

/// A violating schedule, replayable via [`minimize::execute`].
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Choice index at each step (index into the stable `enabled()`
    /// order of the state it was taken from).
    pub choices: Vec<usize>,
    /// Human-readable action keys along the schedule.
    pub actions: Vec<String>,
    pub violation: Violation,
    /// Whether ddmin ran (false for raw random-walk finds with
    /// minimization disabled).
    pub minimized: bool,
}

/// The result of a checking run.
#[derive(Debug, Clone)]
pub struct Report {
    pub config: Config,
    pub opts_depth: usize,
    pub stats: Stats,
    pub violation: Option<Counterexample>,
}

/// Runs the bounded-exhaustive pass and, if clean, the random-walk
/// fallback. First violation wins and is minimized (unless disabled).
pub fn check(cfg: Config, opts: &ExploreOpts) -> Report {
    let mut dfs = Dfs {
        stats: Stats::default(),
        visited: std::collections::HashSet::new(),
        path: Vec::new(),
    };
    let world = World::new(cfg.clone());
    let mut found = dfs.go(world, opts.depth, Vec::new());
    let mut stats = dfs.stats;

    if found.is_none() && opts.walks > 0 {
        found = random_walks(&cfg, opts, &mut stats);
    }

    let violation = found.map(|(choices, actions, violation)| {
        if opts.no_minimize {
            Counterexample {
                choices,
                actions,
                violation,
                minimized: false,
            }
        } else {
            minimize::minimize(&cfg, &choices, &violation)
        }
    });

    Report {
        config: cfg,
        opts_depth: opts.depth,
        stats,
        violation,
    }
}

type Found = (Vec<usize>, Vec<String>, Violation);

struct Dfs {
    stats: Stats,
    visited: std::collections::HashSet<(u64, usize, u64)>,
    path: Vec<(usize, String)>,
}

impl Dfs {
    fn go(&mut self, mut world: World, depth_left: usize, slept: Vec<Action>) -> Option<Found> {
        if let Some(v) = world.violations.first() {
            return Some(self.found_here(v.clone()));
        }
        if world.done() {
            world.check_terminal();
            self.stats.terminals += 1;
            if let Some(v) = world.violations.first() {
                return Some(self.found_here(v.clone()));
            }
            return None;
        }
        let enabled = world.enabled();
        if enabled.is_empty() {
            world.check_terminal();
            return world.violations.first().map(|v| self.found_here(v.clone()));
        }
        if depth_left == 0 {
            self.stats.bounded += 1;
            return None;
        }
        let key = (world.fingerprint(), depth_left, sleep_key(&slept));
        if !self.visited.insert(key) {
            self.stats.pruned_visited += 1;
            return None;
        }
        let mut slept = slept;
        for (i, action) in enabled.iter().enumerate() {
            if slept.contains(action) {
                self.stats.pruned_sleep += 1;
                continue;
            }
            let mut child = world.deep_clone();
            child.apply(action);
            self.stats.explored += 1;
            let child_slept: Vec<Action> = slept
                .iter()
                .filter(|b| independent(b, action))
                .cloned()
                .collect();
            self.path.push((i, action.key()));
            if let Some(found) = self.go(child, depth_left - 1, child_slept) {
                return Some(found);
            }
            self.path.pop();
            slept.push(action.clone());
        }
        None
    }

    fn found_here(&self, violation: Violation) -> Found {
        let choices = self.path.iter().map(|(i, _)| *i).collect();
        let actions = self.path.iter().map(|(_, k)| k.clone()).collect();
        (choices, actions, violation)
    }
}

fn sleep_key(slept: &[Action]) -> u64 {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let mut keys: Vec<String> = slept.iter().map(Action::key).collect();
    keys.sort();
    let mut h = DefaultHasher::new();
    keys.hash(&mut h);
    h.finish()
}

/// Seeded xorshift64* — deterministic across runs, no external RNG.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn random_walks(cfg: &Config, opts: &ExploreOpts, stats: &mut Stats) -> Option<Found> {
    let mut rng = XorShift(opts.seed);
    for _ in 0..opts.walks {
        let mut world = World::new(cfg.clone());
        let mut choices = Vec::new();
        let mut actions = Vec::new();
        for _ in 0..opts.walk_depth {
            if !world.violations.is_empty() || world.done() {
                break;
            }
            let enabled = world.enabled();
            if enabled.is_empty() {
                break;
            }
            let i = (rng.next() % enabled.len() as u64) as usize;
            choices.push(i);
            actions.push(enabled[i].key());
            world.apply(&enabled[i]);
            stats.walk_steps += 1;
        }
        if world.violations.is_empty() && (world.done() || world.enabled().is_empty()) {
            world.check_terminal();
            stats.terminals += 1;
        }
        if let Some(v) = world.violations.first() {
            return Some((choices, actions, v.clone()));
        }
    }
    None
}
