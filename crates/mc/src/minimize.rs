//! Counterexample replay and ddmin-style minimization.
//!
//! A schedule is a list of choice indices. Replay clamps each choice to
//! the enabled-action count of the state it lands in, which is what
//! makes *shrunk* schedules executable at all: deleting steps shifts
//! which state each later index applies to, and clamping turns an
//! out-of-range index into "take the last enabled action" instead of a
//! panic. A shrunk schedule is kept only if replay still produces a
//! violation of the same kind.

use crate::explore::Counterexample;
use crate::model::{Config, Violation, World};

/// Deterministically re-executes `choices` against a fresh world.
/// Returns the world (with trace and any violations) and the action
/// keys actually taken. Stops early on violation or termination.
pub fn execute(cfg: &Config, choices: &[usize]) -> (World, Vec<String>) {
    let mut world = World::new(cfg.clone());
    let mut actions = Vec::new();
    for &c in choices {
        if !world.violations.is_empty() || world.done() {
            break;
        }
        let enabled = world.enabled();
        if enabled.is_empty() {
            break;
        }
        let i = c.min(enabled.len() - 1);
        actions.push(enabled[i].key());
        world.apply(&enabled[i]);
    }
    if world.violations.is_empty() && (world.done() || world.enabled().is_empty()) {
        world.check_terminal();
    }
    (world, actions)
}

fn reproduces(cfg: &Config, choices: &[usize], kind: &str) -> bool {
    let (world, _) = execute(cfg, choices);
    world.violations.iter().any(|v| v.kind() == kind)
}

/// Shrinks `choices` to a locally minimal schedule that still triggers
/// a violation of the same kind, then re-executes it to produce the
/// final counterexample.
pub fn minimize(cfg: &Config, choices: &[usize], violation: &Violation) -> Counterexample {
    let kind = violation.kind();
    let mut current: Vec<usize> = choices.to_vec();

    // Phase 1: truncate — the violation often fires well before the
    // schedule's end (terminal oracles excepted).
    let mut lo = 0usize;
    let mut hi = current.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if reproduces(cfg, &current[..mid], kind) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    current.truncate(lo.max(hi));

    // Phase 2: ddmin — remove chunks of decreasing size.
    let mut chunk = (current.len() / 2).max(1);
    while chunk >= 1 {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if reproduces(cfg, &candidate, kind) {
                current = candidate;
                removed_any = true;
                // Re-scan from the same offset: the tail shifted left.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }

    // Canonicalize: re-execute and record the actions actually taken
    // (clamping may have changed them relative to the original run).
    let (world, actions) = execute(cfg, &current);
    let violation = world
        .violations
        .iter()
        .find(|v| v.kind() == kind)
        .cloned()
        .unwrap_or_else(|| violation.clone());
    Counterexample {
        choices: current,
        actions,
        violation,
        minimized: true,
    }
}
