//! The model-checked world: a 1-bucket-per-group data-parallel training
//! job over an explicit-event protocol stack.
//!
//! Every source of nondeterminism the real in-process cluster has —
//! message delivery order on the channel fabric, KV request service
//! order, failure-detector firing, crash timing, torn-WAL-tail width —
//! is an explicit [`Action`] here, so a schedule (a list of action
//! choices) fully determines the run. The model reuses the production
//! protocol artifacts wherever a single-threaded call is possible: the
//! real [`KvStore`] as the control-plane state, the real failure-record
//! wire format ([`detector::parse_state`]/[`detector::format_state`])
//! driven through a two-phase CAS loop exactly like the remote KV
//! client's, and the real [`LogRecord`] codec for the WAL torn-tail
//! prefix check. The DP worker loop itself is re-expressed as a
//! per-rank state machine because the production loop blocks threads;
//! DESIGN.md ("Model-checked protocol invariants") states what that
//! abstraction does and does not cover.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{DefaultHasher, Hash, Hasher};

use bytes::Bytes;
use swift_net::detector::{self, STATE_KEY};
use swift_net::KvStore;
use swift_pipeline::MsgKind;
use swift_tensor::Tensor;
use swift_wal::{LogRecord, WalError};

/// A worker slot (stable across replacement; the paper's "rank").
pub type Slot = usize;

/// The root of the modeled all-reduce (fold-at-root, result fan-out).
pub const ROOT: Slot = 0;

/// A deliberately seeded protocol bug, used by the mutation tests to
/// prove the checker's oracles actually catch what they claim to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The protocol as implemented.
    #[default]
    None,
    /// Receivers skip the generation fence: stale-generation frames are
    /// matched and applied instead of dropped, and the recovery purge
    /// is a no-op. Oracle 1 (fence safety) must catch this.
    SkipGenerationFence,
    /// Recovery skips the undo of partially applied updates before
    /// resuming. Oracle 3 (exactly-once) must catch this.
    SkipUndo,
}

impl Mutation {
    /// Stable name used on the `xtask mc --mutation` CLI and in
    /// serialized schedules.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipGenerationFence => "skip-generation-fence",
            Mutation::SkipUndo => "skip-undo",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "skip-generation-fence" => Some(Mutation::SkipGenerationFence),
            "skip-undo" => Some(Mutation::SkipUndo),
            _ => None,
        }
    }
}

/// The scenario under check.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker slots (slot 0 is the all-reduce root).
    pub ranks: usize,
    /// Training iterations each rank must complete.
    pub iters: u64,
    /// Parameter groups per iteration — the update granularity, so a
    /// crash between groups leaves a *partial* update to undo.
    pub groups: usize,
    /// Crash budget for the failure-point enumerator (0 or 1).
    pub max_crashes: usize,
    /// Slots the enumerator may kill.
    pub crash_slots: Vec<Slot>,
    /// Also enumerate a torn-WAL-tail variant of every crash point
    /// (the victim's last flush cut mid-record).
    pub torn_wal: bool,
    /// Seeded bug, [`Mutation::None`] for the real protocol.
    pub mutation: Mutation,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ranks: 3,
            iters: 2,
            groups: 2,
            max_crashes: 1,
            crash_slots: vec![1],
            torn_wal: false,
            mutation: Mutation::None,
        }
    }
}

/// An invariant violation found by one of the four oracles (or the
/// model-level progress check).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Oracle 1 — generation-fence safety: a frame stamped with a
    /// pre-recovery generation was matched/applied after the receiver
    /// fenced past it.
    StaleGenerationApply {
        slot: Slot,
        frame_gen: u64,
        local_gen: u64,
        it: u64,
        group: usize,
    },
    /// Oracle 2 — lease/epoch monotonicity: the failure epoch went
    /// backwards.
    EpochRegressed { from: u64, to: u64 },
    /// Oracle 2 — the dead set grew without an epoch bump.
    DeadSetGrewWithoutBump { epoch: u64 },
    /// Oracle 3 — exactly-once: at termination a live rank's net apply
    /// count for an update is not exactly one.
    ApplyCountWrong {
        slot: Slot,
        it: u64,
        group: usize,
        count: i64,
    },
    /// Oracle 3 (replay side) — WAL replay decoded something other
    /// than a strict prefix of the victim's complete records.
    ReplayIntegrity { slot: Slot, detail: String },
    /// Oracle 4 — the KV op history has no valid linearization.
    KvNotLinearizable { detail: String },
    /// Progress: no action enabled but the job is not done.
    Stuck { detail: String },
}

impl Violation {
    /// Stable machine-readable kind tag (minimization preserves it).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::StaleGenerationApply { .. } => "stale-generation-apply",
            Violation::EpochRegressed { .. } => "epoch-regressed",
            Violation::DeadSetGrewWithoutBump { .. } => "dead-set-grew-without-bump",
            Violation::ApplyCountWrong { .. } => "apply-count-wrong",
            Violation::ReplayIntegrity { .. } => "replay-integrity",
            Violation::KvNotLinearizable { .. } => "kv-not-linearizable",
            Violation::Stuck { .. } => "stuck",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::StaleGenerationApply {
                slot,
                frame_gen,
                local_gen,
                it,
                group,
            } => write!(
                f,
                "rank {slot} applied generation-{frame_gen} traffic after fencing to \
                 generation {local_gen} (it {it}, group {group})"
            ),
            Violation::EpochRegressed { from, to } => {
                write!(f, "failure epoch regressed {from} -> {to}")
            }
            Violation::DeadSetGrewWithoutBump { epoch } => {
                write!(f, "dead set grew without an epoch bump (epoch {epoch})")
            }
            Violation::ApplyCountWrong {
                slot,
                it,
                group,
                count,
            } => write!(
                f,
                "rank {slot} applied update (it {it}, group {group}) {count} times (want 1)"
            ),
            Violation::ReplayIntegrity { slot, detail } => {
                write!(f, "WAL replay for slot {slot}: {detail}")
            }
            Violation::KvNotLinearizable { detail } => {
                write!(f, "KV history not linearizable: {detail}")
            }
            Violation::Stuck { detail } => {
                write!(f, "no enabled action but job not done: {detail}")
            }
        }
    }
}

/// A message on the modeled fabric.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    pub src: Slot,
    pub gen: u64,
    pub kind: FrameKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A rank's gradient contribution for `(it, g)`, shipped to the root.
    Grad { it: u64, g: usize },
    /// The folded result for `(it, g)`, fanned out by the root.
    Reduced { it: u64, g: usize },
}

/// A two-phase KV request (client enqueue -> server apply -> response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvReq {
    Get {
        key: String,
    },
    Set {
        key: String,
        val: String,
    },
    Cas {
        key: String,
        old: Option<String>,
        new: String,
    },
}

/// Server-side result of a [`KvReq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRes {
    Value(Option<String>),
    SetOk,
    Cas { ok: bool, actual: Option<String> },
}

/// One completed (or in-flight) control-plane operation, recorded for
/// the linearizability oracle. `invoked`/`applied`/`responded` are
/// global event sequence numbers.
#[derive(Debug, Clone)]
pub struct KvCall {
    pub client: Slot,
    pub req: KvReq,
    pub res: Option<KvRes>,
    pub invoked: u64,
    pub applied: Option<u64>,
    pub responded: Option<u64>,
}

/// Per-rank protocol position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// Non-root, ready to ship its gradient for the current `(it, g)`.
    SendGrad,
    /// Non-root, blocked on the folded result.
    AwaitReduced,
    /// Root, collecting gradients for the current group.
    AwaitGrads { got: BTreeSet<Slot> },
    /// All iterations complete.
    Done,
    /// Declaring observed-dark ranks: Get leg of the CAS loop in flight.
    DeclareRead,
    /// Declaring: Cas leg in flight.
    DeclareCas { epoch: u64, dead: Vec<Slot> },
    /// Recovery: fence progress key Set in flight.
    FenceSetProgress,
    /// Recovery: waiting for every survivor's progress key.
    FenceAwaitProgress,
    /// Recovery: purged key Set in flight.
    FenceSetPurged,
    /// Recovery: waiting for every survivor's purged key.
    FenceAwaitPurged,
    /// Min survivor only: waiting for the replacement's up key.
    AwaitReplacementUp,
    /// Min survivor: declare-recovered Get leg in flight.
    RecoveredRead,
    /// Min survivor: declare-recovered Cas leg in flight.
    RecoveredCas,
    /// Waiting for the dead set to empty before resuming training.
    AwaitAllClear,
    /// Replacement: `replace/<gen>/up` Set in flight.
    ReplaceSetUp,
}

impl Phase {
    fn is_training(&self) -> bool {
        matches!(
            self,
            Phase::SendGrad | Phase::AwaitReduced | Phase::AwaitGrads { .. }
        )
    }
}

#[derive(Debug, Clone)]
pub struct RankState {
    pub slot: Slot,
    pub alive: bool,
    /// 0 = original worker, +1 per replacement.
    pub incarnation: u32,
    /// Failure generation this rank has fenced to.
    pub gen: u64,
    pub it: u64,
    pub g: usize,
    pub phase: Phase,
    pub stash: Vec<Frame>,
    /// Net apply count per `(it, g)` — +1 on apply, -1 on undo.
    pub applied: BTreeMap<(u64, usize), i64>,
    /// Epoch + dead set this rank is recovering from.
    pub recover_epoch: u64,
    pub recover_dead: Vec<Slot>,
}

impl RankState {
    fn new(slot: Slot) -> Self {
        RankState {
            slot,
            alive: true,
            incarnation: 0,
            gen: 0,
            it: 0,
            g: 0,
            phase: if slot == ROOT {
                Phase::AwaitGrads {
                    got: BTreeSet::new(),
                }
            } else {
                Phase::SendGrad
            },
            stash: Vec::new(),
            applied: BTreeMap::new(),
            recover_epoch: 0,
            recover_dead: Vec::new(),
        }
    }
}

/// The victim-side write-ahead log: raw encoded records plus how much
/// of them survived the crash (the flush frontier, possibly torn).
#[derive(Debug, Clone, Default)]
pub struct WalState {
    pub bytes: Vec<u8>,
    pub records: usize,
    /// Bytes that survive a crash; `None` = not crashed yet (all of it).
    pub flushed: Option<usize>,
}

/// One schedule point. `enabled()` returns these in a deterministic
/// order, so a schedule is just a list of indices into that list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Deliver the head frame of the `src -> dst` queue.
    Deliver { src: Slot, dst: Slot },
    /// A rank's enabled local step (shipping a gradient).
    RankStep { slot: Slot },
    /// The KV server applies `client`'s oldest pending request.
    KvApply { client: Slot },
    /// `client` consumes its oldest KV response and continues.
    KvRespond { client: Slot },
    /// A blocked rank notices a dark link and starts declaring.
    Detect { slot: Slot },
    /// A rank notices (via the KV store) an epoch newer than its
    /// generation and unwinds into recovery.
    ObserveEpoch { slot: Slot },
    /// A rank's blocking wait condition became true (fence keys,
    /// replacement-up key, all-clear).
    ObserveKeys { slot: Slot },
    /// A fresh worker takes over a dead slot (after all survivors
    /// purged), replaying the victim's WAL prefix.
    ReplacementJoin { slot: Slot },
    /// Failure point: kill `slot` here; `torn` cuts its last WAL flush
    /// mid-record.
    Crash { slot: Slot, torn: bool },
}

impl Action {
    /// Stable identity used for schedule files, sleep sets, and the
    /// pretty-printed counterexample.
    pub fn key(&self) -> String {
        match self {
            Action::Deliver { src, dst } => format!("deliver:{src}->{dst}"),
            Action::RankStep { slot } => format!("step:{slot}"),
            Action::KvApply { client } => format!("kv-apply:{client}"),
            Action::KvRespond { client } => format!("kv-respond:{client}"),
            Action::Detect { slot } => format!("detect:{slot}"),
            Action::ObserveEpoch { slot } => format!("observe-epoch:{slot}"),
            Action::ObserveKeys { slot } => format!("observe-keys:{slot}"),
            Action::ReplacementJoin { slot } => format!("replace:{slot}"),
            Action::Crash { slot, torn } => {
                format!("crash:{slot}{}", if *torn { ":torn" } else { "" })
            }
        }
    }

    /// Resource footprint for the independence relation behind sleep-set
    /// pruning: `(resource, writes)` pairs. Two actions are independent
    /// iff no resource is shared with a write on either side.
    pub fn footprint(&self) -> Vec<(String, bool)> {
        match self {
            Action::Deliver { src, dst } => vec![
                (format!("q:{src}:{dst}"), true),
                (format!("rank:{dst}"), true),
                // Delivering the last gradient makes the root fold and
                // fan out results; delivering a result advances a rank
                // that then ships its next gradient.
                (format!("qout:{dst}"), true),
                ("links".into(), false),
            ],
            Action::RankStep { slot } => vec![
                (format!("rank:{slot}"), true),
                (format!("qout:{slot}"), true),
                (format!("kvq:{slot}"), true),
                ("links".into(), false),
            ],
            Action::KvApply { client } => vec![
                ("kv".into(), true),
                (format!("kvq:{client}"), true),
                (format!("kvr:{client}"), true),
            ],
            Action::KvRespond { client } => vec![
                (format!("kvr:{client}"), true),
                (format!("rank:{client}"), true),
                (format!("kvq:{client}"), true),
            ],
            Action::Detect { slot } | Action::ObserveEpoch { slot } => vec![
                (format!("rank:{slot}"), true),
                (format!("kvq:{slot}"), true),
                ("kv".into(), false),
                ("links".into(), false),
            ],
            Action::ObserveKeys { slot } => vec![
                (format!("rank:{slot}"), true),
                (format!("kvq:{slot}"), true),
                ("kv".into(), false),
            ],
            Action::ReplacementJoin { slot } => vec![
                (format!("rank:{slot}"), true),
                (format!("kvq:{slot}"), true),
                (format!("qin:{slot}"), true),
                ("kv".into(), false),
                ("links".into(), true),
            ],
            Action::Crash { slot, .. } => vec![
                (format!("rank:{slot}"), true),
                (format!("wal:{slot}"), true),
                ("links".into(), true),
            ],
        }
    }
}

/// Whether two actions commute (disjoint footprints up to read-read
/// sharing).
pub fn independent(a: &Action, b: &Action) -> bool {
    let fa = a.footprint();
    let fb = b.footprint();
    for (ra, wa) in &fa {
        for (rb, wb) in &fb {
            if ra == rb && (*wa || *wb) {
                return false;
            }
        }
    }
    true
}

fn fence_it_key(epoch: u64, slot: Slot) -> String {
    format!("fence/{epoch}/it/{slot}")
}

fn fence_purged_key(epoch: u64, slot: Slot) -> String {
    format!("fence/{epoch}/purged/{slot}")
}

fn replace_up_key(epoch: u64) -> String {
    format!("replace/{epoch}/up")
}

/// The explicit-event world. A schedule (sequence of indices into
/// [`enabled`](World::enabled)) deterministically drives it from
/// [`new`](World::new) to a terminal state.
#[derive(Debug)]
pub struct World {
    pub cfg: Config,
    pub ranks: Vec<RankState>,
    pub queues: BTreeMap<(Slot, Slot), VecDeque<Frame>>,
    /// The real control-plane store (server side; applied atomically at
    /// `KvApply` points, which is the server thread's actual behavior).
    pub kv: KvStore,
    kv_reqs: Vec<VecDeque<usize>>,
    kv_resps: Vec<VecDeque<usize>>,
    pub history: Vec<KvCall>,
    pub wal: Vec<WalState>,
    pub crashes_used: usize,
    pub seq: u64,
    pub violations: Vec<Violation>,
    /// Human-readable event log for counterexample pretty-printing.
    pub trace: Vec<String>,
    /// Slots already re-filled by a replacement.
    pub replaced: BTreeSet<Slot>,
}

impl World {
    pub fn new(cfg: Config) -> World {
        assert!(cfg.ranks >= 2, "model needs a root and at least one peer");
        assert!(cfg.groups >= 1 && cfg.iters >= 1);
        let ranks = (0..cfg.ranks).map(RankState::new).collect();
        let wal = (0..cfg.ranks).map(|_| WalState::default()).collect();
        World {
            ranks,
            queues: BTreeMap::new(),
            kv: KvStore::new(),
            kv_reqs: vec![VecDeque::new(); cfg.ranks],
            kv_resps: vec![VecDeque::new(); cfg.ranks],
            history: Vec::new(),
            wal,
            crashes_used: 0,
            seq: 0,
            violations: Vec::new(),
            trace: Vec::new(),
            replaced: BTreeSet::new(),
            cfg,
        }
    }

    /// Deep copy for DFS branching (the KV store must not be shared).
    pub fn deep_clone(&self) -> World {
        let kv = KvStore::new();
        for (k, v) in self.kv.dump() {
            kv.set(&k, v);
        }
        World {
            cfg: self.cfg.clone(),
            ranks: self.ranks.clone(),
            queues: self.queues.clone(),
            kv,
            kv_reqs: self.kv_reqs.clone(),
            kv_resps: self.kv_resps.clone(),
            history: self.history.clone(),
            wal: self.wal.clone(),
            crashes_used: self.crashes_used,
            seq: self.seq,
            violations: self.violations.clone(),
            trace: self.trace.clone(),
            replaced: self.replaced.clone(),
        }
    }

    /// All live ranks completed every iteration.
    pub fn done(&self) -> bool {
        self.ranks
            .iter()
            .all(|r| !r.alive || r.phase == Phase::Done)
            && self.ranks.iter().any(|r| r.alive)
    }

    /// Stable fingerprint of protocol-relevant state (bookkeeping like
    /// `seq`, `history`, and `trace` excluded so revisits dedup).
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for r in &self.ranks {
            (r.slot, r.alive, r.incarnation, r.gen, r.it, r.g).hash(&mut h);
            format!("{:?}", r.phase).hash(&mut h);
            r.stash.hash(&mut h);
            r.applied.hash(&mut h);
            (r.recover_epoch, &r.recover_dead).hash(&mut h);
        }
        for ((s, d), q) in &self.queues {
            (s, d).hash(&mut h);
            for f in q {
                f.hash(&mut h);
            }
        }
        self.kv.dump().hash(&mut h);
        for (i, q) in self.kv_reqs.iter().enumerate() {
            for &op in q {
                (i, "req").hash(&mut h);
                format!("{:?}", self.history[op].req).hash(&mut h);
            }
        }
        for (i, q) in self.kv_resps.iter().enumerate() {
            for &op in q {
                (i, "resp").hash(&mut h);
                format!("{:?}", self.history[op].res).hash(&mut h);
            }
        }
        (self.crashes_used, &self.replaced).hash(&mut h);
        for w in &self.wal {
            (w.records, w.flushed, w.bytes.len()).hash(&mut h);
        }
        h.finish()
    }

    /// The schedule points currently available, in a stable order.
    pub fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for r in &self.ranks {
            if r.alive && r.phase == Phase::SendGrad {
                out.push(Action::RankStep { slot: r.slot });
            }
        }
        for (&(src, dst), q) in &self.queues {
            if !q.is_empty() && self.ranks[dst].alive {
                out.push(Action::Deliver { src, dst });
            }
        }
        for c in 0..self.cfg.ranks {
            if !self.kv_reqs[c].is_empty() {
                out.push(Action::KvApply { client: c });
            }
        }
        for c in 0..self.cfg.ranks {
            if !self.kv_resps[c].is_empty() && self.ranks[c].alive {
                out.push(Action::KvRespond { client: c });
            }
        }
        for r in &self.ranks {
            if self.detect_enabled(r) {
                out.push(Action::Detect { slot: r.slot });
            }
        }
        let (epoch, dead) = detector::failure_state(&self.kv);
        for r in &self.ranks {
            if r.alive && r.phase.is_training() && epoch.get() > r.gen {
                out.push(Action::ObserveEpoch { slot: r.slot });
            }
        }
        for r in &self.ranks {
            if r.alive && self.keys_ready(r) {
                out.push(Action::ObserveKeys { slot: r.slot });
            }
        }
        if !dead.is_empty() {
            let survivors: Vec<Slot> = (0..self.cfg.ranks).filter(|s| !dead.contains(s)).collect();
            let all_purged = survivors
                .iter()
                .all(|&s| self.kv.get(&fence_purged_key(epoch.get(), s)).is_some());
            for &d in &dead {
                if all_purged && !self.replaced.contains(&d) && !self.ranks[d].alive {
                    out.push(Action::ReplacementJoin { slot: d });
                }
            }
        }
        if self.crashes_used < self.cfg.max_crashes {
            for &s in &self.cfg.crash_slots {
                if self.ranks[s].alive && self.ranks[s].phase.is_training() {
                    out.push(Action::Crash {
                        slot: s,
                        torn: false,
                    });
                    if self.cfg.torn_wal && self.wal[s].records > 0 {
                        out.push(Action::Crash {
                            slot: s,
                            torn: true,
                        });
                    }
                }
            }
        }
        out
    }

    fn detect_enabled(&self, r: &RankState) -> bool {
        if !r.alive {
            return false;
        }
        match &r.phase {
            // A sender's dark link is noticed inside RankStep; blocked
            // receivers are what need an explicit timeout-probe event.
            Phase::AwaitReduced => !self.ranks[ROOT].alive && !self.has_matching_frame(r, ROOT),
            Phase::AwaitGrads { got } => (0..self.cfg.ranks).any(|s| {
                s != r.slot
                    && !got.contains(&s)
                    && !self.ranks[s].alive
                    && !self.has_matching_frame(r, s)
            }),
            _ => false,
        }
    }

    /// Whether a frame from `src` matching `r`'s current await (at `r`'s
    /// generation) is pending in the queue or stash.
    fn has_matching_frame(&self, r: &RankState, src: Slot) -> bool {
        let want = match &r.phase {
            Phase::AwaitReduced => FrameKind::Reduced { it: r.it, g: r.g },
            Phase::AwaitGrads { .. } => FrameKind::Grad { it: r.it, g: r.g },
            _ => return false,
        };
        let matches = |f: &Frame| f.src == src && f.gen == r.gen && f.kind == want;
        self.queues
            .get(&(src, r.slot))
            .map(|q| q.iter().any(matches))
            .unwrap_or(false)
            || r.stash.iter().any(matches)
    }

    fn keys_ready(&self, r: &RankState) -> bool {
        let e = r.recover_epoch;
        let survivors = || {
            (0..self.cfg.ranks)
                .filter(|s| !r.recover_dead.contains(s))
                .collect::<Vec<_>>()
        };
        match &r.phase {
            Phase::FenceAwaitProgress => survivors()
                .iter()
                .all(|&s| self.kv.get(&fence_it_key(e, s)).is_some()),
            Phase::FenceAwaitPurged => survivors()
                .iter()
                .all(|&s| self.kv.get(&fence_purged_key(e, s)).is_some()),
            Phase::AwaitReplacementUp => self.kv.get(&replace_up_key(e)).is_some(),
            Phase::AwaitAllClear => detector::failure_state(&self.kv).1.is_empty(),
            _ => false,
        }
    }

    /// Executes one schedule point. The action must come from the
    /// current [`enabled`](World::enabled) list.
    pub fn apply(&mut self, action: &Action) {
        self.seq += 1;
        match action {
            Action::RankStep { slot } => self.rank_step(*slot),
            Action::Deliver { src, dst } => self.deliver(*src, *dst),
            Action::KvApply { client } => self.kv_apply(*client),
            Action::KvRespond { client } => self.kv_respond(*client),
            Action::Detect { slot } => self.detect(*slot),
            Action::ObserveEpoch { slot } => self.observe_epoch(*slot),
            Action::ObserveKeys { slot } => self.observe_keys(*slot),
            Action::ReplacementJoin { slot } => self.replacement_join(*slot),
            Action::Crash { slot, torn } => self.crash(*slot, *torn),
        }
    }

    // --- training -----------------------------------------------------

    fn rank_step(&mut self, slot: Slot) {
        let (it, g, gen) = {
            let r = &self.ranks[slot];
            (r.it, r.g, r.gen)
        };
        if !self.ranks[ROOT].alive {
            // Send to a dark link: the sender observes the severed
            // connection and declares every dark link in one batch.
            self.note(format!(
                "rank {slot}: send grad(it {it}, g {g}) hit dark link to root"
            ));
            self.start_declare(slot);
            return;
        }
        self.send(
            slot,
            ROOT,
            Frame {
                src: slot,
                gen,
                kind: FrameKind::Grad { it, g },
            },
        );
        self.ranks[slot].phase = Phase::AwaitReduced;
        self.note(format!("rank {slot}: sent grad(it {it}, g {g}) gen {gen}"));
        self.drain_stash(slot);
    }

    fn send(&mut self, src: Slot, dst: Slot, frame: Frame) {
        self.queues.entry((src, dst)).or_default().push_back(frame);
    }

    fn deliver(&mut self, src: Slot, dst: Slot) {
        let frame = self
            .queues
            .get_mut(&(src, dst))
            .and_then(|q| q.pop_front())
            .expect("deliver on empty queue");
        self.consume(dst, frame);
        self.drain_stash(dst);
    }

    /// Receive-side fencing + stream matching for one frame.
    fn consume(&mut self, dst: Slot, frame: Frame) {
        let local_gen = self.ranks[dst].gen;
        if frame.gen < local_gen && self.cfg.mutation != Mutation::SkipGenerationFence {
            self.note(format!(
                "rank {dst}: fenced stale frame {:?} (gen {} < {})",
                frame.kind, frame.gen, local_gen
            ));
            return;
        }
        if !self.frame_matches(dst, &frame) {
            self.ranks[dst].stash.push(frame);
            return;
        }
        self.process_match(dst, frame);
    }

    fn frame_matches(&self, dst: Slot, frame: &Frame) -> bool {
        let r = &self.ranks[dst];
        // The generation must match too — a frame from a *newer*
        // generation than the receiver's waits in the stash until the
        // receiver fences forward (mirrors per-generation stream
        // cursors). Under the fence-skip mutation stale frames are
        // allowed to match: that is the seeded bug.
        let gen_ok = frame.gen == r.gen
            || (self.cfg.mutation == Mutation::SkipGenerationFence && frame.gen < r.gen);
        if !gen_ok {
            return false;
        }
        match (&r.phase, frame.kind) {
            (Phase::AwaitReduced, FrameKind::Reduced { it, g }) => {
                frame.src == ROOT && it == r.it && g == r.g
            }
            (Phase::AwaitGrads { got }, FrameKind::Grad { it, g }) => {
                it == r.it && g == r.g && !got.contains(&frame.src)
            }
            _ => false,
        }
    }

    fn process_match(&mut self, dst: Slot, frame: Frame) {
        if frame.gen < self.ranks[dst].gen {
            // Oracle 1: a stale-generation frame crossed the fence and
            // is being applied to protocol state.
            let (it, g) = match frame.kind {
                FrameKind::Grad { it, g } | FrameKind::Reduced { it, g } => (it, g),
            };
            self.violations.push(Violation::StaleGenerationApply {
                slot: dst,
                frame_gen: frame.gen,
                local_gen: self.ranks[dst].gen,
                it,
                group: g,
            });
        }
        match frame.kind {
            FrameKind::Reduced { it, g } => {
                self.apply_update(dst, it, g);
                self.advance_cursor(dst);
            }
            FrameKind::Grad { it, g } => {
                let complete = {
                    let r = &mut self.ranks[dst];
                    let Phase::AwaitGrads { got } = &mut r.phase else {
                        unreachable!("matched grad outside AwaitGrads")
                    };
                    got.insert(frame.src);
                    got.len() == self.cfg.ranks - 1
                };
                if complete {
                    self.apply_update(dst, it, g);
                    let gen = self.ranks[dst].gen;
                    for peer in 0..self.cfg.ranks {
                        if peer == dst {
                            continue;
                        }
                        if !self.ranks[peer].alive {
                            // The update-before-result-send contract:
                            // a dark peer's result is skipped without
                            // declaring from the fan-out (the data
                            // dependency at the next fold declares).
                            self.note(format!(
                                "root: skipped result(it {it}, g {g}) to dark rank {peer}"
                            ));
                            continue;
                        }
                        self.send(
                            dst,
                            peer,
                            Frame {
                                src: dst,
                                gen,
                                kind: FrameKind::Reduced { it, g },
                            },
                        );
                    }
                    self.advance_cursor(dst);
                }
            }
        }
    }

    fn apply_update(&mut self, slot: Slot, it: u64, g: usize) {
        *self.ranks[slot].applied.entry((it, g)).or_insert(0) += 1;
        let rec = LogRecord::new(
            slot,
            slot,
            it,
            g as u64,
            MsgKind::Gradient,
            Tensor::from_vec(vec![1usize], vec![(it * 31 + g as u64) as f32]),
        );
        let bytes = rec.encode();
        self.wal[slot].bytes.extend_from_slice(&bytes);
        self.wal[slot].records += 1;
        self.note(format!("rank {slot}: applied update(it {it}, g {g})"));
    }

    fn advance_cursor(&mut self, slot: Slot) {
        let (iters, groups) = (self.cfg.iters, self.cfg.groups);
        let r = &mut self.ranks[slot];
        r.g += 1;
        if r.g == groups {
            r.g = 0;
            r.it += 1;
        }
        r.phase = if r.it == iters {
            Phase::Done
        } else if slot == ROOT {
            Phase::AwaitGrads {
                got: BTreeSet::new(),
            }
        } else {
            Phase::SendGrad
        };
    }

    fn drain_stash(&mut self, slot: Slot) {
        loop {
            let idx = {
                let r = &self.ranks[slot];
                r.stash.iter().position(|f| self.frame_matches(slot, f))
            };
            match idx {
                Some(i) => {
                    let f = self.ranks[slot].stash.remove(i);
                    self.process_match(slot, f);
                }
                None => return,
            }
        }
    }

    // --- failure + detection ------------------------------------------

    fn crash(&mut self, slot: Slot, torn: bool) {
        self.crashes_used += 1;
        let r = &mut self.ranks[slot];
        r.alive = false;
        let w = &mut self.wal[slot];
        let total = w.bytes.len();
        w.flushed = Some(if torn && w.records > 0 {
            // Cut the last flush mid-record: recovery must treat the
            // tail as torn, never as a phantom record.
            let reclen = total / w.records;
            total - reclen / 2
        } else {
            total
        });
        self.note(format!(
            "CRASH rank {slot}{} (wal {} records, {} of {} bytes survive)",
            if torn { " [torn tail]" } else { "" },
            self.wal[slot].records,
            self.wal[slot].flushed.unwrap(),
            total,
        ));
    }

    fn dark_slots(&self) -> Vec<Slot> {
        (0..self.cfg.ranks)
            .filter(|&s| !self.ranks[s].alive)
            .collect()
    }

    fn detect(&mut self, slot: Slot) {
        self.note(format!(
            "rank {slot}: recv timed out, probe found dark link(s) {:?}",
            self.dark_slots()
        ));
        self.start_declare(slot);
    }

    /// Begin the two-phase CAS declaration of every currently-dark
    /// slot — the model twin of `declare_downed_links` running through
    /// the remote KV client's read-modify-write loop.
    fn start_declare(&mut self, slot: Slot) {
        self.ranks[slot].recover_dead = self.dark_slots();
        self.ranks[slot].phase = Phase::DeclareRead;
        self.enqueue_kv(
            slot,
            KvReq::Get {
                key: STATE_KEY.into(),
            },
        );
    }

    fn observe_epoch(&mut self, slot: Slot) {
        let (epoch, dead) = detector::failure_state(&self.kv);
        self.note(format!(
            "rank {slot}: observed epoch {} > generation {} (dead {:?})",
            epoch.get(),
            self.ranks[slot].gen,
            dead
        ));
        self.enter_recovery(slot, epoch.get(), dead);
    }

    /// The recovery entry point: undo the partial iteration, fence the
    /// generation, purge stale traffic, and start the fence-key dance.
    fn enter_recovery(&mut self, slot: Slot, epoch: u64, dead: Vec<Slot>) {
        let (it, g) = (self.ranks[slot].it, self.ranks[slot].g);
        if self.cfg.mutation != Mutation::SkipUndo {
            for g2 in 0..g {
                *self.ranks[slot].applied.entry((it, g2)).or_insert(0) -= 1;
                self.note(format!("rank {slot}: UNDO partial (it {it}, g {g2})"));
            }
        }
        let r = &mut self.ranks[slot];
        r.recover_epoch = epoch;
        r.recover_dead = dead;
        r.gen = epoch;
        if self.cfg.mutation != Mutation::SkipGenerationFence {
            r.stash.retain(|f| f.gen >= epoch);
        }
        r.phase = Phase::FenceSetProgress;
        let (key, val) = (fence_it_key(epoch, slot), it.to_string());
        self.note(format!(
            "rank {slot}: FENCE to generation {epoch}, publishing progress it={it}"
        ));
        self.enqueue_kv(slot, KvReq::Set { key, val });
    }

    fn observe_keys(&mut self, slot: Slot) {
        let e = self.ranks[slot].recover_epoch;
        match self.ranks[slot].phase.clone() {
            Phase::FenceAwaitProgress => {
                let dead = self.ranks[slot].recover_dead.clone();
                let resume = (0..self.cfg.ranks)
                    .filter(|s| !dead.contains(s))
                    .map(|s| {
                        self.kv
                            .get(&fence_it_key(e, s))
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or(0)
                    })
                    .min()
                    .unwrap_or(0);
                let it = self.ranks[slot].it;
                if self.cfg.mutation != Mutation::SkipUndo {
                    // Undo-to-min: iterations completed beyond the
                    // slowest survivor are rolled back so everyone
                    // re-enters lockstep at `resume`.
                    for it2 in resume..it {
                        for g2 in 0..self.cfg.groups {
                            *self.ranks[slot].applied.entry((it2, g2)).or_insert(0) -= 1;
                            self.note(format!("rank {slot}: UNDO completed (it {it2}, g {g2})"));
                        }
                    }
                }
                let r = &mut self.ranks[slot];
                r.it = resume;
                r.g = 0;
                r.phase = Phase::FenceSetPurged;
                self.note(format!("rank {slot}: purged, resume point it={resume}"));
                self.enqueue_kv(
                    slot,
                    KvReq::Set {
                        key: fence_purged_key(e, slot),
                        val: "1".into(),
                    },
                );
            }
            Phase::FenceAwaitPurged => {
                let dead = &self.ranks[slot].recover_dead;
                let min_survivor = (0..self.cfg.ranks)
                    .find(|s| !dead.contains(s))
                    .expect("at least one survivor");
                self.ranks[slot].phase = if slot == min_survivor {
                    Phase::AwaitReplacementUp
                } else {
                    Phase::AwaitAllClear
                };
            }
            Phase::AwaitReplacementUp => {
                self.ranks[slot].phase = Phase::RecoveredRead;
                self.enqueue_kv(
                    slot,
                    KvReq::Get {
                        key: STATE_KEY.into(),
                    },
                );
            }
            Phase::AwaitAllClear => {
                let (it, gen) = {
                    let r = &mut self.ranks[slot];
                    r.phase = if slot == ROOT {
                        Phase::AwaitGrads {
                            got: BTreeSet::new(),
                        }
                    } else {
                        Phase::SendGrad
                    };
                    (r.it, r.gen)
                };
                self.note(format!("rank {slot}: RESUME training at it {it} gen {gen}"));
            }
            other => unreachable!("observe_keys in phase {other:?}"),
        }
        self.drain_stash(slot);
    }

    fn replacement_join(&mut self, slot: Slot) {
        let (epoch, dead) = detector::failure_state(&self.kv);
        let e = epoch.get();
        self.replay_wal_check(slot);
        let resume = (0..self.cfg.ranks)
            .filter(|s| !dead.contains(s))
            .map(|s| {
                self.kv
                    .get(&fence_it_key(e, s))
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
            })
            .min()
            .unwrap_or(0);
        // The predecessor's inbox dies with it: a replacement starts
        // with empty queues (the fabric's reset_links_into contract).
        for src in 0..self.cfg.ranks {
            self.queues.remove(&(src, slot));
        }
        let inc = self.ranks[slot].incarnation + 1;
        let mut r = RankState::new(slot);
        r.incarnation = inc;
        r.gen = e;
        r.it = resume;
        r.recover_epoch = e;
        r.recover_dead = dead;
        // Replicated state from the survivors: every update before the
        // resume point is present exactly once.
        for it in 0..resume {
            for g in 0..self.cfg.groups {
                r.applied.insert((it, g), 1);
            }
        }
        r.phase = Phase::ReplaceSetUp;
        self.ranks[slot] = r;
        self.replaced.insert(slot);
        self.wal[slot] = WalState::default();
        self.note(format!(
            "REPLACEMENT joins slot {slot} at gen {e}, resume it={resume}"
        ));
        self.enqueue_kv(
            slot,
            KvReq::Set {
                key: replace_up_key(e),
                val: "1".into(),
            },
        );
    }

    /// Replays the victim's surviving WAL bytes through the *real*
    /// record codec: the decoded sequence must be exactly the complete
    /// records, with a torn tail surfacing as a truncation error —
    /// never a phantom or altered record.
    fn replay_wal_check(&mut self, slot: Slot) {
        let (bytes, records, flushed) = {
            let w = &self.wal[slot];
            (
                w.bytes.clone(),
                w.records,
                w.flushed.unwrap_or(w.bytes.len()),
            )
        };
        if records == 0 {
            return;
        }
        let surviving = &bytes[..flushed];
        let reclen = bytes.len() / records;
        let complete = flushed / reclen;
        let mut decoded = 0usize;
        let mut off = 0usize;
        while off < surviving.len() {
            let end = (off + reclen).min(surviving.len());
            let chunk = Bytes::copy_from_slice(&surviving[off..end]);
            match LogRecord::decode(chunk) {
                Ok(rec) => {
                    if end - off < reclen {
                        self.violations.push(Violation::ReplayIntegrity {
                            slot,
                            detail: format!(
                                "torn tail of {} bytes decoded as a record (it {})",
                                end - off,
                                rec.stamp.iteration
                            ),
                        });
                    }
                    decoded += 1;
                }
                Err(WalError::TruncatedRecord { .. }) if end - off < reclen => {
                    self.note(format!(
                        "replay slot {slot}: torn tail of {} bytes correctly rejected",
                        end - off
                    ));
                }
                Err(e) => {
                    self.violations.push(Violation::ReplayIntegrity {
                        slot,
                        detail: format!("record {decoded} failed to decode: {e:?}"),
                    });
                }
            }
            off = end;
        }
        if decoded != complete {
            self.violations.push(Violation::ReplayIntegrity {
                slot,
                detail: format!("decoded {decoded} records, expected prefix of {complete}"),
            });
        }
        self.note(format!(
            "replay slot {slot}: {decoded}/{records} complete records recovered"
        ));
    }

    // --- control plane (two-phase KV ops) -----------------------------

    fn enqueue_kv(&mut self, client: Slot, req: KvReq) {
        let id = self.history.len();
        self.history.push(KvCall {
            client,
            req,
            res: None,
            invoked: self.seq,
            applied: None,
            responded: None,
        });
        self.kv_reqs[client].push_back(id);
    }

    fn kv_apply(&mut self, client: Slot) {
        let id = self.kv_reqs[client].pop_front().expect("no pending req");
        let before = detector::failure_state(&self.kv);
        let res = match &self.history[id].req {
            KvReq::Get { key } => KvRes::Value(self.kv.get(key)),
            KvReq::Set { key, val } => {
                self.kv.set(key, val.clone());
                KvRes::SetOk
            }
            KvReq::Cas { key, old, new } => {
                let (ok, actual) = self.kv.cas(key, old.as_deref(), new.clone());
                KvRes::Cas { ok, actual }
            }
        };
        // Oracle 2 — epoch/lease monotonicity, checked against the real
        // store at every write point.
        let after = detector::failure_state(&self.kv);
        if after.0.get() < before.0.get() {
            self.violations.push(Violation::EpochRegressed {
                from: before.0.get(),
                to: after.0.get(),
            });
        }
        if after.1.iter().any(|r| !before.1.contains(r)) && after.0 == before.0 {
            self.violations.push(Violation::DeadSetGrewWithoutBump {
                epoch: after.0.get(),
            });
        }
        self.history[id].res = Some(res);
        self.history[id].applied = Some(self.seq);
        self.kv_resps[client].push_back(id);
    }

    fn kv_respond(&mut self, client: Slot) {
        let id = self.kv_resps[client].pop_front().expect("no pending resp");
        self.history[id].responded = Some(self.seq);
        let res = self.history[id]
            .res
            .clone()
            .expect("responded before apply");
        self.continue_after_kv(client, res);
    }

    /// The rank-side continuation after a KV response: this is where
    /// the declare/fence/recover sub-protocols advance.
    fn continue_after_kv(&mut self, slot: Slot, res: KvRes) {
        match self.ranks[slot].phase.clone() {
            Phase::DeclareRead => {
                let KvRes::Value(raw) = res else {
                    unreachable!("declare read got {res:?}")
                };
                let (epoch, mut dead) = raw
                    .as_deref()
                    .map(detector::parse_state)
                    .unwrap_or((0, Vec::new()));
                let mut grew = false;
                for &d in &self.ranks[slot].recover_dead.clone() {
                    if !dead.contains(&d) {
                        dead.push(d);
                        grew = true;
                    }
                }
                dead.sort_unstable();
                if grew {
                    let new = detector::format_state(epoch + 1, &dead);
                    self.ranks[slot].phase = Phase::DeclareCas {
                        epoch: epoch + 1,
                        dead: dead.clone(),
                    };
                    self.enqueue_kv(
                        slot,
                        KvReq::Cas {
                            key: STATE_KEY.into(),
                            old: raw,
                            new,
                        },
                    );
                } else {
                    // Someone else already declared; the epoch they
                    // bumped to is necessarily newer than our fence.
                    debug_assert!(epoch > self.ranks[slot].gen);
                    self.enter_recovery(slot, epoch, dead);
                }
            }
            Phase::DeclareCas { epoch, dead } => match res {
                KvRes::Cas { ok: true, .. } => {
                    self.note(format!(
                        "rank {slot}: DECLARED {dead:?} dead, epoch {epoch}"
                    ));
                    self.enter_recovery(slot, epoch, dead);
                }
                KvRes::Cas { ok: false, .. } => {
                    // Lost the race: re-read and re-union.
                    self.ranks[slot].phase = Phase::DeclareRead;
                    self.enqueue_kv(
                        slot,
                        KvReq::Get {
                            key: STATE_KEY.into(),
                        },
                    );
                }
                other => unreachable!("declare cas got {other:?}"),
            },
            Phase::FenceSetProgress => {
                self.ranks[slot].phase = Phase::FenceAwaitProgress;
            }
            Phase::FenceSetPurged => {
                self.ranks[slot].phase = Phase::FenceAwaitPurged;
            }
            Phase::ReplaceSetUp => {
                self.ranks[slot].phase = Phase::AwaitAllClear;
            }
            Phase::RecoveredRead => {
                let KvRes::Value(raw) = res else {
                    unreachable!("recovered read got {res:?}")
                };
                let (epoch, dead) = raw
                    .as_deref()
                    .map(detector::parse_state)
                    .unwrap_or((0, Vec::new()));
                let cleared: Vec<Slot> = dead
                    .iter()
                    .copied()
                    .filter(|d| !self.ranks[slot].recover_dead.contains(d))
                    .collect();
                if dead.is_empty() || cleared.len() == dead.len() {
                    self.ranks[slot].phase = Phase::AwaitAllClear;
                } else {
                    let new = detector::format_state(epoch, &cleared);
                    self.ranks[slot].phase = Phase::RecoveredCas;
                    self.enqueue_kv(
                        slot,
                        KvReq::Cas {
                            key: STATE_KEY.into(),
                            old: raw,
                            new,
                        },
                    );
                }
            }
            Phase::RecoveredCas => match res {
                KvRes::Cas { ok: true, .. } => {
                    self.note(format!("rank {slot}: declared recovery complete"));
                    self.ranks[slot].phase = Phase::AwaitAllClear;
                }
                KvRes::Cas { ok: false, .. } => {
                    self.ranks[slot].phase = Phase::RecoveredRead;
                    self.enqueue_kv(
                        slot,
                        KvReq::Get {
                            key: STATE_KEY.into(),
                        },
                    );
                }
                other => unreachable!("recovered cas got {other:?}"),
            },
            other => unreachable!("kv response in phase {other:?}"),
        }
    }

    // --- oracles at termination ---------------------------------------

    /// Runs the terminal oracles (exactly-once, linearizability) and the
    /// stuck check; incremental oracles (fence safety, epoch
    /// monotonicity, replay integrity) have already recorded into
    /// `violations` as the run went.
    pub fn check_terminal(&mut self) {
        if !self.done() {
            let phases: Vec<String> = self
                .ranks
                .iter()
                .map(|r| format!("{}:{:?}", r.slot, r.phase))
                .collect();
            self.violations.push(Violation::Stuck {
                detail: phases.join(", "),
            });
            return;
        }
        for r in &self.ranks {
            if !r.alive {
                continue;
            }
            for it in 0..self.cfg.iters {
                for g in 0..self.cfg.groups {
                    let count = r.applied.get(&(it, g)).copied().unwrap_or(0);
                    if count != 1 {
                        self.violations.push(Violation::ApplyCountWrong {
                            slot: r.slot,
                            it,
                            group: g,
                            count,
                        });
                    }
                }
            }
        }
        if let Err(detail) = crate::kvlin::check_history(&self.history) {
            self.violations
                .push(Violation::KvNotLinearizable { detail });
        }
    }

    fn note(&mut self, msg: String) {
        self.trace.push(format!("[{:>4}] {msg}", self.seq));
    }
}
