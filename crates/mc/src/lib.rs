//! # swift-mc
//!
//! A systematic interleaving + failure-point model checker for the
//! recovery protocol. The thread-per-rank runtime in `swift-net`
//! exercises *one* interleaving per run; this crate exercises *all of
//! them* (up to a depth bound): every message delivery order, KV
//! service order, failure-detector firing, crash point, and torn-WAL
//! tail is an explicit schedule point, explored exhaustively with
//! sleep-set pruning and state-fingerprint deduplication, with a
//! seeded random-walk fallback past the exhaustive horizon.
//!
//! Four invariant oracles run over every execution:
//!
//! 1. **Generation-fence safety** — no rank ever applies traffic from
//!    a generation it has fenced past.
//! 2. **Epoch monotonicity** — the failure record's epoch never
//!    regresses, and the dead set never grows without an epoch bump
//!    (checked against the real [`KvStore`](swift_net::KvStore) at
//!    every write).
//! 3. **Exactly-once application** — after any combination of crash,
//!    undo, fence, and replay, every live rank holds each `(iteration,
//!    group)` update exactly once; the replacement's WAL replay runs
//!    through the real [`LogRecord`](swift_wal::LogRecord) codec and a
//!    torn tail must surface as a truncation, never a phantom record.
//! 4. **KV linearizability** — the control-plane history (two-phase
//!    declare/fence operations) admits a Wing–Gong linearization
//!    against the sequential map spec.
//!
//! Violations come back as *minimized* (ddmin) schedules, serialized
//! to JSON and replayable bit-for-bit with `cargo xtask mc --replay`.
//! The mutation flags (`--mutation skip-generation-fence`,
//! `skip-undo`) seed known protocol bugs to prove the oracles catch
//! them — the checker checking itself.

pub mod explore;
pub mod json;
pub mod kvlin;
pub mod minimize;
pub mod model;
pub mod report;

pub use explore::{check, Counterexample, ExploreOpts, Report, Stats};
pub use minimize::execute;
pub use model::{Action, Config, Mutation, Violation, World};
pub use report::{counterexample_json, parse_replay, render_counterexample, report_json, summary};

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> Config {
        Config {
            ranks: 3,
            iters: 1,
            groups: 2,
            max_crashes: 0,
            crash_slots: vec![],
            torn_wal: false,
            mutation: Mutation::None,
        }
    }

    #[test]
    fn failure_free_training_passes_exhaustively() {
        let report = check(quick_cfg(), &ExploreOpts::default());
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.stats.terminals > 0);
        assert!(report.stats.explored > 0);
    }

    #[test]
    fn single_crash_recovery_passes_exhaustively() {
        let cfg = Config {
            max_crashes: 1,
            crash_slots: vec![1],
            ..quick_cfg()
        };
        let report = check(cfg, &ExploreOpts::default());
        assert!(report.violation.is_none(), "{:?}", report.violation);
        // The crash branch must actually reach recovered terminals.
        assert!(report.stats.terminals > 0);
        assert!(report.stats.pruned_sleep > 0 || report.stats.pruned_visited > 0);
    }

    #[test]
    fn torn_wal_tail_is_handled_by_replay() {
        let cfg = Config {
            max_crashes: 1,
            crash_slots: vec![1],
            torn_wal: true,
            ..quick_cfg()
        };
        let report = check(cfg, &ExploreOpts::default());
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    #[test]
    fn seeded_fence_bug_is_caught_and_minimized() {
        let cfg = Config {
            max_crashes: 1,
            crash_slots: vec![1],
            mutation: Mutation::SkipGenerationFence,
            ..quick_cfg()
        };
        let report = check(cfg.clone(), &ExploreOpts::default());
        let ce = report.violation.expect("mutation must be caught");
        assert_eq!(ce.violation.kind(), "stale-generation-apply");
        assert!(ce.minimized);
        // The minimized schedule must replay to the same violation.
        let (world, _) = execute(&cfg, &ce.choices);
        assert!(world
            .violations
            .iter()
            .any(|v| v.kind() == "stale-generation-apply"));
        // And survive a JSON round-trip.
        let doc = counterexample_json(&cfg, &ce);
        let (cfg2, choices2) = parse_replay(&doc).unwrap();
        let (world2, _) = execute(&cfg2, &choices2);
        assert!(world2
            .violations
            .iter()
            .any(|v| v.kind() == "stale-generation-apply"));
    }

    #[test]
    fn seeded_undo_bug_is_caught() {
        let cfg = Config {
            max_crashes: 1,
            crash_slots: vec![1],
            mutation: Mutation::SkipUndo,
            ..quick_cfg()
        };
        let report = check(cfg, &ExploreOpts::default());
        let ce = report.violation.expect("mutation must be caught");
        assert_eq!(ce.violation.kind(), "apply-count-wrong");
    }

    #[test]
    fn random_walks_agree_with_exhaustive_on_clean_config() {
        let cfg = Config {
            max_crashes: 1,
            crash_slots: vec![1],
            ..quick_cfg()
        };
        let opts = ExploreOpts {
            depth: 0, // skip the exhaustive pass entirely
            walks: 50,
            walk_depth: 300,
            ..ExploreOpts::default()
        };
        let report = check(cfg, &opts);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.stats.walk_steps > 0);
    }
}
