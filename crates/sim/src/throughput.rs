//! Failure-free iteration-time / throughput series (paper Fig. 3 and the
//! top halves of Fig. 8) and the recovery-window throughput timeline
//! (Fig. 9).

use crate::method::{CostModel, Method};
use crate::recovery::recovery_time_s;

/// Per-iteration wall time for iterations `0..iters` under `method`
/// during failure-free execution — the Fig. 3 series.
pub fn iteration_times(cm: &CostModel, method: Method, iters: u64) -> Vec<f64> {
    let base = cm.model.iter_time_s;
    let mut out = Vec::with_capacity(iters as usize);
    // CheckFreq persist tail: iterations still overlapping the background
    // disk write run slower.
    let mut persist_left = 0.0f64;
    for it in 0..iters {
        let mut t = base;
        match method {
            Method::Normal => {}
            Method::GlobalCkpt { interval } => {
                if it > 0 && it % interval == 0 {
                    t += cm.global_ckpt_time_s();
                }
            }
            Method::CheckFreq { interval } => {
                if persist_left > 0.0 {
                    t *= 1.0 + cm.persist_interference();
                    persist_left -= t;
                }
                if it > 0 && it % interval == 0 {
                    // Stall if the previous persist is still running, then
                    // take the snapshot.
                    t += persist_left.max(0.0);
                    t += cm.snapshot_time_s();
                    persist_left = cm.persist_time_s();
                }
            }
            Method::ElasticHorovod { interval } => {
                if it > 0 && it % interval == 0 {
                    t += cm.snapshot_time_s();
                }
            }
            Method::SwiftReplication { ckpt_interval } => {
                if it > 0 && it % ckpt_interval == 0 {
                    t += cm.global_ckpt_time_s();
                }
            }
            Method::SwiftLogging {
                ckpt_interval,
                groups,
                sync,
                ..
            } => {
                t += if sync {
                    cm.sync_logging_overhead_s(groups)
                } else {
                    cm.async_logging_overhead_s(groups)
                };
                if it > 0 && it % ckpt_interval == 0 {
                    t += cm.global_ckpt_time_s();
                }
            }
        }
        out.push(t);
    }
    out
}

/// Mean failure-free throughput in samples (images/tokens×seq) per second.
pub fn mean_throughput(cm: &CostModel, method: Method, iters: u64) -> f64 {
    let times = iteration_times(cm, method, iters);
    let total: f64 = times.iter().sum();
    cm.model.batch_size as f64 * iters as f64 / total
}

/// One point of the Fig. 9 timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelinePoint {
    /// Seconds since the failure.
    pub t: f64,
    /// Throughput (samples/s) at that instant.
    pub throughput: f64,
}

/// Throughput timeline around a failure (Fig. 9): zero during
/// initialization + recovery, full speed after. The lost-work "area"
/// differentiates the methods.
pub fn recovery_timeline(
    cm: &CostModel,
    method: Method,
    iters_since_ckpt: u64,
    horizon_s: f64,
    step_s: f64,
) -> Vec<TimelinePoint> {
    let rec = recovery_time_s(cm, method, iters_since_ckpt);
    let ready = rec.init_s + rec.recovery_s;
    let full = cm.model.batch_size as f64 / cm.model.iter_time_s;
    let mut out = Vec::new();
    let mut t = 0.0;
    while t <= horizon_s {
        let tp = if t < ready {
            0.0
        } else if matches!(method, Method::SwiftLogging { parallel_recovery, .. } if parallel_recovery > 1)
            && t < ready + 60.0
        {
            // §7.1: with parallel recovery, file transfer becomes the
            // bottleneck right after replay — throughput fluctuates while
            // the tail of log downloads drains.
            let phase = ((t - ready) / step_s) as u64;
            if phase % 3 == 2 {
                0.6 * full
            } else {
                full
            }
        } else {
            full
        };
        out.push(TimelinePoint { t, throughput: tp });
        t += step_s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dnn::profile::{vit_128_32, wide_resnet_50, TESTBED};

    fn wrn_cm() -> CostModel {
        CostModel::new(wide_resnet_50(), TESTBED)
    }

    #[test]
    fn fig3_shape_snapshot_spikes() {
        // Snapshot iterations (30/60/90) are visibly slower for CheckFreq
        // and Elastic Horovod; global ckpt spikes at 100.
        let cm = wrn_cm();
        let cf = iteration_times(&cm, Method::CheckFreq { interval: 30 }, 110);
        let eh = iteration_times(&cm, Method::ElasticHorovod { interval: 30 }, 110);
        let gc = iteration_times(&cm, Method::GlobalCkpt { interval: 100 }, 110);
        let normal = iteration_times(&cm, Method::Normal, 110);
        for spike in [30usize, 60, 90] {
            assert!(
                cf[spike] > 1.15 * normal[spike],
                "CheckFreq spike at {spike}"
            );
            assert!(eh[spike] > 1.15 * normal[spike], "EH spike at {spike}");
        }
        assert!(gc[100] > gc[99] + 1.0, "global ckpt spike at 100");
        // CheckFreq's post-snapshot iterations slower than EH's (persist).
        assert!(cf[31] > eh[31]);
    }

    #[test]
    fn fig8a_swift_throughput_beats_snapshotters() {
        let cm = wrn_cm();
        let swift = mean_throughput(&cm, Method::SwiftReplication { ckpt_interval: 100 }, 100);
        let cf = mean_throughput(&cm, Method::CheckFreq { interval: 30 }, 100);
        let eh = mean_throughput(&cm, Method::ElasticHorovod { interval: 30 }, 100);
        let normal = mean_throughput(&cm, Method::Normal, 100);
        assert!(swift > cf && swift > eh);
        assert!(swift / normal > 0.98, "SWIFT within 2% of normal training");
    }

    #[test]
    fn fig8b_sync_logging_degrades_vit() {
        let cm = CostModel::new(vit_128_32(), TESTBED);
        let async_tp = mean_throughput(
            &cm,
            Method::SwiftLogging {
                ckpt_interval: 100,
                groups: 16,
                sync: false,
                parallel_recovery: 1,
            },
            100,
        );
        let sync_tp = mean_throughput(
            &cm,
            Method::SwiftLogging {
                ckpt_interval: 100,
                groups: 16,
                sync: true,
                parallel_recovery: 1,
            },
            100,
        );
        let gc_tp = mean_throughput(&cm, Method::GlobalCkpt { interval: 100 }, 100);
        assert!(
            sync_tp < 0.9 * gc_tp,
            "sync logging significantly degrades throughput"
        );
        assert!(
            async_tp > 0.97 * gc_tp,
            "bubble-time logging is off the critical path"
        );
    }

    #[test]
    fn fig9_timeline_recovers_earlier_with_logging() {
        let cm = CostModel::new(vit_128_32(), TESTBED);
        let gc = recovery_timeline(&cm, Method::GlobalCkpt { interval: 100 }, 50, 400.0, 1.0);
        let lg = recovery_timeline(
            &cm,
            Method::SwiftLogging {
                ckpt_interval: 100,
                groups: 16,
                sync: false,
                parallel_recovery: 1,
            },
            50,
            400.0,
            1.0,
        );
        let first_up = |tl: &[TimelinePoint]| {
            tl.iter()
                .find(|p| p.throughput > 0.0)
                .map(|p| p.t)
                .unwrap_or(f64::INFINITY)
        };
        assert!(
            first_up(&lg) < first_up(&gc),
            "logging resumes before global checkpointing"
        );
    }
}
