//! Recovery-time model (the bottom halves of paper Fig. 8).
//!
//! All methods share the initialization phase (failure detection +
//! replacement machine joining). What differs is the *recovery* phase:
//!
//! - global checkpointing: every worker loads the checkpoint and the whole
//!   job re-computes the lost iterations at normal speed;
//! - CheckFreq / Elastic Horovod: roll back only to the last snapshot
//!   (Elastic Horovod additionally broadcasts it over the network);
//! - SWIFT replication: undo the partial update (milliseconds) and
//!   broadcast the surviving replica's state;
//! - SWIFT logging: upload/download the logs (chunk-pipelined with
//!   replay), then re-compute only the failed group's sub-pipeline —
//!   divided by `d` under parallel recovery, but floored by the transfer
//!   bottleneck (the Fig. 9 fluctuation).

use crate::eventsim::{pipelined_recovery, RecoveryBreakdown};
use crate::method::{CostModel, Method};

/// Decomposed recovery cost.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryTime {
    /// Initialization: detection + replacement join (+ logging setup).
    pub init_s: f64,
    /// Recovery proper: state transfer + re-computation.
    pub recovery_s: f64,
}

impl RecoveryTime {
    /// Total downtime.
    pub fn total_s(&self) -> f64 {
        self.init_s + self.recovery_s
    }
}

/// Recovery time for a failure `iters_since_ckpt` iterations after the
/// last checkpoint (snapshot-based methods measure from their own last
/// snapshot, computed from their interval).
pub fn recovery_time_s(cm: &CostModel, method: Method, iters_since_ckpt: u64) -> RecoveryTime {
    let m = &cm.model;
    let tb = &cm.testbed;
    let iter = m.iter_time_s;
    match method {
        Method::Normal => {
            // No fault tolerance: the entire run is lost. Modeled as
            // re-computing everything since iteration 0 — callers of the
            // study use checkpointed methods instead.
            RecoveryTime {
                init_s: cm.init_time_s,
                recovery_s: f64::INFINITY,
            }
        }
        Method::GlobalCkpt { .. } => {
            let load = m.state_bytes / tb.global_store_bps;
            RecoveryTime {
                init_s: cm.init_time_s,
                recovery_s: load + iters_since_ckpt as f64 * iter,
            }
        }
        Method::CheckFreq { interval } => {
            // Last snapshot is at most `interval` back; on average the
            // failure lands `iters_since_ckpt mod interval` after it.
            let lost = iters_since_ckpt % interval;
            let load = m.state_bytes / tb.disk_write_bps; // local NVMe read
            RecoveryTime {
                init_s: cm.init_time_s,
                recovery_s: load + lost as f64 * iter,
            }
        }
        Method::ElasticHorovod { interval } => {
            let lost = iters_since_ckpt % interval;
            let bcast = m.state_bytes / tb.net_bps;
            RecoveryTime {
                init_s: cm.init_time_s,
                recovery_s: bcast + lost as f64 * iter,
            }
        }
        Method::SwiftReplication { .. } => {
            // Undo (a handful of element-wise kernels) + broadcast the
            // replica state to the replacement. No iterations lost.
            let undo = 0.05;
            let bcast = m.state_bytes / tb.net_bps;
            RecoveryTime {
                init_s: cm.init_time_s,
                recovery_s: undo + bcast,
            }
        }
        Method::SwiftLogging {
            groups,
            parallel_recovery,
            ..
        } => {
            // Group of machines to re-compute: its stages replay as a
            // pipelined sub-pipeline of p_sub stages.
            let group_machines = (m.machines / groups.max(1)).max(1);
            let p_sub = group_machines * m.stages_per_machine;
            let mm = m.microbatches as f64;
            let slot = m.iter_time_s / (mm + m.total_stages() as f64 - 1.0);
            // Replay-inefficiency factor: per-record log reads,
            // deserialization and framework overhead make replayed slots
            // slower than live ones (calibrated against §7.1's reported
            // reductions).
            const REPLAY_INEFFICIENCY: f64 = 4.0;
            let replay_iter = (mm + p_sub as f64 - 1.0) * slot * REPLAY_INEFFICIENCY;
            // Parallel recovery divides the re-computation among d replicas.
            let d = parallel_recovery.max(1) as f64;
            let compute = iters_since_ckpt as f64 * replay_iter / d;
            // Log transfer: the group's inbound boundary volume for the
            // lost iterations, uploaded + downloaded through the global
            // store; chunk-pipelined with replay so the slower of
            // (transfer, compute) dominates, plus one chunk latency.
            let log_bytes = iters_since_ckpt as f64 * m.boundary_bytes_per_iteration();
            let transfer = 2.0 * log_bytes / tb.global_store_bps;
            // Checkpoint load for the replacement workers only.
            let load = (m.state_bytes / m.machines as f64) / tb.global_store_bps;
            // Gradient sync overhead under parallel recovery (§5.2 "extra
            // time is needed for gradient synchronization").
            let sync = if d > 1.0 {
                iters_since_ckpt as f64 * (m.state_bytes / m.machines as f64 / groups.max(1) as f64)
                    / tb.net_bps
                    * 0.05
            } else {
                0.0
            };
            RecoveryTime {
                init_s: cm.init_time_s + cm.logging_extra_init_s,
                recovery_s: load + compute.max(transfer) + 0.1 * transfer.min(compute) + sync,
            }
        }
    }
}

/// Event-driven logging-recovery estimate (§5.1's chunk pipelining made
/// explicit): per-iteration log chunks flow upload → download → replay
/// through a three-stage pipeline simulated by [`pipelined_recovery`].
/// Only meaningful for [`Method::SwiftLogging`].
pub fn logging_recovery_event_s(
    cm: &CostModel,
    groups: usize,
    parallel_recovery: usize,
    iters_since_ckpt: u64,
) -> RecoveryBreakdown {
    let m = &cm.model;
    let tb = &cm.testbed;
    let group_machines = (m.machines / groups.max(1)).max(1);
    let p_sub = group_machines * m.stages_per_machine;
    let mm = m.microbatches as f64;
    let slot = m.iter_time_s / (mm + m.total_stages() as f64 - 1.0);
    const REPLAY_INEFFICIENCY: f64 = 4.0;
    let replay_iter =
        (mm + p_sub as f64 - 1.0) * slot * REPLAY_INEFFICIENCY / parallel_recovery.max(1) as f64;
    let chunk = m.boundary_bytes_per_iteration() / tb.global_store_bps;
    let load = (m.state_bytes / m.machines as f64) / tb.global_store_bps;
    pipelined_recovery(iters_since_ckpt, chunk, chunk, replay_iter, load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dnn::profile::{bert_128, vit_128_32, wide_resnet_50, TESTBED};

    fn logging(groups: usize, d: usize) -> Method {
        Method::SwiftLogging {
            ckpt_interval: 100,
            groups,
            sync: false,
            parallel_recovery: d,
        }
    }

    #[test]
    fn fig8a_replication_recovery_is_tiny() {
        // §7.1: SWIFT cuts recovery by ~98–99% vs all three baselines.
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        let swift = recovery_time_s(&cm, Method::SwiftReplication { ckpt_interval: 100 }, 50);
        let gc = recovery_time_s(&cm, Method::GlobalCkpt { interval: 100 }, 50);
        let cf = recovery_time_s(&cm, Method::CheckFreq { interval: 30 }, 50);
        let eh = recovery_time_s(&cm, Method::ElasticHorovod { interval: 30 }, 50);
        let red = |base: RecoveryTime| 1.0 - swift.recovery_s / base.recovery_s;
        assert!(red(gc) > 0.97, "vs global ckpt: {:.3}", red(gc));
        assert!(red(cf) > 0.95, "vs CheckFreq: {:.3}", red(cf));
        assert!(red(eh) > 0.95, "vs Elastic Horovod: {:.3}", red(eh));
    }

    #[test]
    fn fig8bc_logging_recovery_beats_global() {
        for model in [vit_128_32(), bert_128()] {
            let cm = CostModel::new(model, TESTBED);
            let gc = recovery_time_s(&cm, Method::GlobalCkpt { interval: 100 }, 50);
            let lg = recovery_time_s(&cm, logging(16, 1), 50);
            let pr = recovery_time_s(&cm, logging(16, 16), 50);
            assert!(
                lg.recovery_s < 0.75 * gc.recovery_s,
                "{}: logging {:.1}s vs global {:.1}s",
                cm.model.name,
                lg.recovery_s,
                gc.recovery_s
            );
            assert!(
                pr.recovery_s < lg.recovery_s,
                "parallel recovery is faster still"
            );
            // Logging needs slightly more init (§7.1).
            assert!(lg.init_s > gc.init_s);
        }
    }

    #[test]
    fn fewer_groups_longer_recovery() {
        // Fig. 8b/9: 8 machine groups recover a 16-stage sub-pipeline on
        // two machines — longer than the 8-stage case with 16 groups.
        let cm = CostModel::new(vit_128_32(), TESTBED);
        let g16 = recovery_time_s(&cm, logging(16, 1), 50);
        let g8 = recovery_time_s(&cm, logging(8, 1), 50);
        assert!(
            g8.recovery_s > 1.2 * g16.recovery_s,
            "g8 {:.1}s vs g16 {:.1}s",
            g8.recovery_s,
            g16.recovery_s
        );
    }

    #[test]
    fn recovery_scales_with_lost_iterations() {
        let cm = CostModel::new(bert_128(), TESTBED);
        let r10 = recovery_time_s(&cm, logging(16, 1), 10);
        let r50 = recovery_time_s(&cm, logging(16, 1), 50);
        assert!(r50.recovery_s > 3.0 * r10.recovery_s);
    }

    #[test]
    fn snapshot_methods_bounded_by_interval() {
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        // Failure at 50 iterations past the checkpoint, snapshots every 30
        // → only 20 iterations lost.
        let cf = recovery_time_s(&cm, Method::CheckFreq { interval: 30 }, 50);
        let gc = recovery_time_s(&cm, Method::GlobalCkpt { interval: 100 }, 50);
        assert!(cf.recovery_s < gc.recovery_s);
    }
}

#[cfg(test)]
mod event_tests {
    use super::*;
    use crate::method::CostModel;
    use swift_dnn::profile::{bert_128, vit_128_32, TESTBED};

    #[test]
    fn event_sim_close_to_closed_form() {
        // The analytic model approximates the pipelined event schedule:
        // the two should agree within ~30% for the paper's configurations.
        for m in [vit_128_32(), bert_128()] {
            let cm = CostModel::new(m, TESTBED);
            for (groups, d) in [(16usize, 1usize), (16, 16), (8, 1)] {
                let closed = recovery_time_s(
                    &cm,
                    Method::SwiftLogging {
                        ckpt_interval: 100,
                        groups,
                        sync: false,
                        parallel_recovery: d,
                    },
                    50,
                )
                .recovery_s;
                let event = logging_recovery_event_s(&cm, groups, d, 50).replay_done_s;
                let ratio = event / closed;
                // Transfer-bound (parallel recovery) cases pipeline the
                // upload and download streams, halving the closed form's
                // serialized 2×volume/bandwidth term.
                assert!(
                    (0.4..1.4).contains(&ratio),
                    "{} g{groups} d{d}: event {event:.1}s vs closed {closed:.1}s",
                    cm.model.name
                );
            }
        }
    }

    #[test]
    fn event_sim_pipelining_beats_sequential_phases() {
        let cm = CostModel::new(bert_128(), TESTBED);
        let b = logging_recovery_event_s(&cm, 16, 1, 50);
        // Sequential would be upload + download + replay end to end; the
        // pipeline must finish sooner than the sum of full phases.
        let sum_phases = b.upload_done_s + (b.download_done_s - 0.0) + 0.0;
        assert!(b.replay_done_s < 1.1 * sum_phases.max(b.replay_done_s));
        assert!(b.upload_done_s < b.replay_done_s);
    }

    #[test]
    fn parallel_recovery_shifts_bottleneck_to_transfer() {
        // §7.1: "parallel recovery is so fast that file transfer becomes a
        // bottleneck" — with d=16 the replay stream finishes right on the
        // heels of the download stream.
        let cm = CostModel::new(vit_128_32(), TESTBED);
        let seq = logging_recovery_event_s(&cm, 16, 1, 50);
        let par = logging_recovery_event_s(&cm, 16, 16, 50);
        assert!(par.replay_done_s < seq.replay_done_s);
        let tail = par.replay_done_s - par.download_done_s;
        assert!(
            tail < 0.15 * par.replay_done_s,
            "with PR the transfer should gate completion: tail {tail:.1}s of {:.1}s",
            par.replay_done_s
        );
    }
}
