//! The fault-tolerance methods compared in the paper's evaluation, and
//! their cost models on the testbed.

use swift_dnn::profile::{PaperModel, Testbed};

/// A fault-tolerance method under evaluation (§7.1 baselines + SWIFT).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// No fault tolerance at all (the "normal" curve of Fig. 3/8a).
    Normal,
    /// Synchronous global checkpointing every `interval` iterations.
    GlobalCkpt {
        /// Checkpoint interval (iterations).
        interval: u64,
    },
    /// CheckFreq: in-memory snapshot + async persist every `interval`.
    CheckFreq {
        /// Snapshot interval (iterations).
        interval: u64,
    },
    /// Elastic Horovod: in-memory snapshot every `interval` (no persist).
    ElasticHorovod {
        /// Snapshot interval (iterations).
        interval: u64,
    },
    /// SWIFT replication-based recovery (zero failure-free overhead
    /// beyond the periodic backstop checkpoint).
    SwiftReplication {
        /// Backstop checkpoint interval (iterations).
        ckpt_interval: u64,
    },
    /// SWIFT logging-based recovery.
    SwiftLogging {
        /// Backstop checkpoint interval (iterations).
        ckpt_interval: u64,
        /// Selective-logging group count.
        groups: usize,
        /// Whether logging is synchronous (the §7.1 `torch.save` baseline)
        /// instead of bubble-time asynchronous.
        sync: bool,
        /// Parallel-recovery replica count `d` (1 = sequential replay).
        parallel_recovery: usize,
    },
}

impl Method {
    /// Short label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            Method::Normal => "normal".into(),
            Method::GlobalCkpt { .. } => "global-ckpt".into(),
            Method::CheckFreq { .. } => "checkfreq".into(),
            Method::ElasticHorovod { .. } => "elastic-horovod".into(),
            Method::SwiftReplication { .. } => "swift-replication".into(),
            Method::SwiftLogging {
                groups,
                sync,
                parallel_recovery,
                ..
            } => {
                let mode = if *sync { "sync" } else { "async" };
                if *parallel_recovery > 1 {
                    format!("swift-logging-{groups}g-{mode}+PR")
                } else {
                    format!("swift-logging-{groups}g-{mode}")
                }
            }
        }
    }
}

/// Cost model constants derived from a model profile + testbed.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The model profile.
    pub model: PaperModel,
    /// The hardware constants.
    pub testbed: Testbed,
    /// Failure-detection plus replacement-join time, seconds
    /// ("initialization time" in §7; machine replacement dominates).
    pub init_time_s: f64,
    /// Extra initialization for logging recovery (CUDA streams, logging
    /// threads — §7.1 notes logging "needs slightly more initialization").
    pub logging_extra_init_s: f64,
}

impl CostModel {
    /// Builds the cost model the paper's testbed implies.
    pub fn new(model: PaperModel, testbed: Testbed) -> Self {
        CostModel {
            model,
            testbed,
            init_time_s: 35.0,
            logging_extra_init_s: 5.0,
        }
    }

    /// Time to write a full snapshot GPU→CPU over PCIe (CheckFreq/Elastic
    /// Horovod phase 1; the Fig. 3 spike).
    pub fn snapshot_time_s(&self) -> f64 {
        self.model.state_bytes / self.testbed.pcie_bps
    }

    /// Time to persist a snapshot to local disk (CheckFreq phase 2).
    pub fn persist_time_s(&self) -> f64 {
        self.model.state_bytes / self.testbed.disk_write_bps
    }

    /// Synchronous global checkpoint cost per checkpoint.
    pub fn global_ckpt_time_s(&self) -> f64 {
        self.model.ckpt_write_s
    }

    /// Per-iteration slowdown while a background persist is in flight
    /// (disk + PCIe contention; visible after CheckFreq snapshots in
    /// Fig. 3).
    pub fn persist_interference(&self) -> f64 {
        0.12
    }

    /// Per-iteration cost of *synchronous* logging: every boundary tensor
    /// is written to disk before the send returns.
    pub fn sync_logging_overhead_s(&self, groups: usize) -> f64 {
        let per_machine =
            self.model.logging_bytes_per_iteration(groups) / self.model.machines as f64;
        per_machine / self.testbed.disk_write_bps
    }

    /// Per-iteration cost of bubble-time asynchronous logging: zero when
    /// the volume fits the bubble-time PCIe budget (§5.4), else the
    /// overflow spills onto the critical path.
    pub fn async_logging_overhead_s(&self, groups: usize) -> f64 {
        let per_machine =
            self.model.logging_bytes_per_iteration(groups) / self.model.machines as f64;
        let pcie_time = per_machine / self.testbed.pcie_bps;
        let bubble = self.model.bubble_ratio() * self.model.iter_time_s;
        (pcie_time - bubble).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dnn::profile::{bert_128, vit_128_32, wide_resnet_50, TESTBED};

    #[test]
    fn snapshot_cost_matches_wrn_scale() {
        // 9.8 GB over PCIe ≈ 0.8 s; persist ≈ 4.9 s (the Fig. 3 effects).
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        assert!((cm.snapshot_time_s() - 0.82).abs() < 0.05);
        assert!((cm.persist_time_s() - 4.9).abs() < 0.1);
    }

    #[test]
    fn sync_logging_hurts_vit_more_than_bert() {
        // §7.1: synchronous logging degrades ViT more (more data logged).
        let vit = CostModel::new(vit_128_32(), TESTBED);
        let bert = CostModel::new(bert_128(), TESTBED);
        assert!(vit.sync_logging_overhead_s(16) > bert.sync_logging_overhead_s(16));
        assert!(vit.sync_logging_overhead_s(16) > 0.2 * vit.model.iter_time_s);
    }

    #[test]
    fn async_logging_is_free_for_transformers() {
        for m in [vit_128_32(), bert_128()] {
            let cm = CostModel::new(m, TESTBED);
            assert_eq!(cm.async_logging_overhead_s(16), 0.0);
            assert_eq!(cm.async_logging_overhead_s(8), 0.0);
        }
    }

    #[test]
    fn fewer_groups_less_sync_overhead() {
        let cm = CostModel::new(vit_128_32(), TESTBED);
        assert!(cm.sync_logging_overhead_s(8) < cm.sync_logging_overhead_s(16));
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let methods = [
            Method::Normal,
            Method::GlobalCkpt { interval: 100 },
            Method::CheckFreq { interval: 30 },
            Method::ElasticHorovod { interval: 30 },
            Method::SwiftReplication { ckpt_interval: 100 },
            Method::SwiftLogging {
                ckpt_interval: 100,
                groups: 16,
                sync: false,
                parallel_recovery: 1,
            },
            Method::SwiftLogging {
                ckpt_interval: 100,
                groups: 16,
                sync: true,
                parallel_recovery: 1,
            },
            Method::SwiftLogging {
                ckpt_interval: 100,
                groups: 8,
                sync: false,
                parallel_recovery: 16,
            },
        ];
        let labels: HashSet<String> = methods.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), methods.len());
    }
}
