//! The end-to-end simulation study (paper §7.3): total training time with
//! randomly injected failures — Tables 4–5, Figs. 12–13.

use swift_tensor::CounterRng;

use crate::method::{CostModel, Method};
use crate::recovery::recovery_time_s;
use crate::throughput::iteration_times;

/// Outcome of one simulated training run.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Total wall-clock hours.
    pub hours: f64,
    /// Failures encountered.
    pub failures: u64,
}

/// Simulates one full training run of `cm.model` under `method` with
/// failures arriving as a Poisson process with inter-arrival time
/// `mtbf_hours` (the paper follows its reference \[6\] with 17 hours; the reported
/// failure counts — e.g. 28 over the 480-hour WRN run — imply the value
/// is used as the *mean* arrival rate on the wall clock).
pub fn simulate_run(cm: &CostModel, method: Method, mtbf_hours: f64, seed: u64) -> RunOutcome {
    let model = &cm.model;
    let mut rng = CounterRng::new(seed, 0x57D7);
    let mean_s = mtbf_hours * 3600.0;

    // Failure-free per-iteration cost (amortized): base + per-iteration
    // overhead + amortized checkpoint/snapshot cost.
    let probe = 10_000.min(model.total_iters).max(1);
    let times = iteration_times(cm, method, probe);
    let per_iter: f64 = times.iter().sum::<f64>() / probe as f64;

    let ckpt_interval = match method {
        Method::GlobalCkpt { interval }
        | Method::CheckFreq { interval }
        | Method::ElasticHorovod { interval } => interval,
        Method::SwiftReplication { ckpt_interval } | Method::SwiftLogging { ckpt_interval, .. } => {
            ckpt_interval
        }
        Method::Normal => u64::MAX,
    };

    let mut wall_s = 0.0f64;
    let mut done_iters = 0u64;
    let mut failures = 0u64;
    let mut next_failure_s = rng.exponential(mean_s);
    while done_iters < model.total_iters {
        let remaining = model.total_iters - done_iters;
        let seg_iters_until_failure =
            ((next_failure_s - wall_s) / per_iter).floor().max(0.0) as u64;
        if seg_iters_until_failure >= remaining {
            wall_s += remaining as f64 * per_iter;
            break;
        }
        // Run until the failure.
        wall_s += seg_iters_until_failure as f64 * per_iter;
        done_iters += seg_iters_until_failure;
        failures += 1;

        // Iterations since the last *global checkpoint* (backstop for
        // SWIFT, primary for the baselines).
        let since_ckpt = if ckpt_interval == u64::MAX {
            done_iters
        } else {
            done_iters % ckpt_interval
        };
        let rec = recovery_time_s(cm, method, since_ckpt);
        wall_s += rec.total_s();
        // Methods that roll back lose the re-computed iterations from
        // `done_iters` only in wall-clock (already charged inside
        // recovery_s); the iteration counter itself resumes at the
        // pre-failure point for SWIFT and at the rollback point for the
        // others — recovery_s accounts for re-computing up to the failure
        // point, so `done_iters` is unchanged.

        // Failures are a process on the wall clock (they can also arrive
        // during recovery; the next one is simply handled afterwards).
        while next_failure_s <= wall_s {
            next_failure_s += rng.exponential(mean_s);
        }
    }
    RunOutcome {
        hours: wall_s / 3600.0,
        failures,
    }
}

/// Averages `runs` seeded simulations (the paper repeats 10×).
pub fn simulate_mean(cm: &CostModel, method: Method, mtbf_hours: f64, runs: u64) -> RunOutcome {
    let mut hours = 0.0;
    let mut failures = 0u64;
    for seed in 0..runs {
        let o = simulate_run(cm, method, mtbf_hours, seed);
        hours += o.hours;
        failures += o.failures;
    }
    RunOutcome {
        hours: hours / runs as f64,
        failures: failures / runs,
    }
}

/// Sweeps the checkpoint/snapshot interval (Fig. 12), returning
/// `(interval, mean hours)` pairs.
pub fn sweep_ckpt_interval(
    cm: &CostModel,
    make_method: impl Fn(u64) -> Method,
    intervals: &[u64],
    mtbf_hours: f64,
    runs: u64,
) -> Vec<(u64, f64)> {
    intervals
        .iter()
        .map(|&iv| {
            (
                iv,
                simulate_mean(cm, make_method(iv), mtbf_hours, runs).hours,
            )
        })
        .collect()
}

/// Sweeps the failure frequency (Fig. 13), returning `(mtbf, hours)`.
pub fn sweep_mtbf(
    cm: &CostModel,
    method: Method,
    mtbfs_hours: &[f64],
    runs: u64,
) -> Vec<(f64, f64)> {
    mtbfs_hours
        .iter()
        .map(|&mt| (mt, simulate_mean(cm, method, mt, runs).hours))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dnn::profile::{bert_128, vit_128_32, wide_resnet_50, TESTBED};

    #[test]
    fn table5_wrn_speedup_band() {
        // Paper: 28 failures; global 557.4 h vs SWIFT 480.7 h → 1.16×.
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        let gc = simulate_mean(
            &cm,
            Method::GlobalCkpt {
                interval: cm.model.ckpt_interval,
            },
            17.0,
            10,
        );
        let sw = simulate_mean(
            &cm,
            Method::SwiftReplication {
                ckpt_interval: cm.model.ckpt_interval,
            },
            17.0,
            10,
        );
        let speedup = gc.hours / sw.hours;
        assert!(
            (1.08..1.30).contains(&speedup),
            "WRN speedup {speedup:.3} (paper: 1.16×); gc {:.1}h sw {:.1}h",
            gc.hours,
            sw.hours
        );
        assert!(
            (20..40).contains(&gc.failures),
            "≈28 failures, got {}",
            gc.failures
        );
        assert!(
            (sw.hours - 479.4).abs() < 15.0,
            "SWIFT near failure-free time"
        );
    }

    #[test]
    fn table5_bert_speedup_band() {
        // Paper: 27 failures; global 524.2 h vs SWIFT 476.1 h → 1.10×.
        let cm = CostModel::new(bert_128(), TESTBED);
        let gc = simulate_mean(
            &cm,
            Method::GlobalCkpt {
                interval: cm.model.ckpt_interval,
            },
            17.0,
            10,
        );
        let sw = simulate_mean(
            &cm,
            Method::SwiftLogging {
                ckpt_interval: cm.model.ckpt_interval,
                groups: 16,
                sync: false,
                parallel_recovery: 16,
            },
            17.0,
            10,
        );
        let speedup = gc.hours / sw.hours;
        assert!(
            (1.04..1.20).contains(&speedup),
            "BERT speedup {speedup:.3} (paper: 1.10×); gc {:.1}h sw {:.1}h",
            gc.hours,
            sw.hours
        );
    }

    #[test]
    fn table5_vit_short_job_benefits_little() {
        // Paper: only ~5 failures; 86.4 h vs 86.0 h → 1.01×.
        let cm = CostModel::new(vit_128_32(), TESTBED);
        let gc = simulate_mean(
            &cm,
            Method::GlobalCkpt {
                interval: cm.model.ckpt_interval,
            },
            17.0,
            10,
        );
        let sw = simulate_mean(
            &cm,
            Method::SwiftLogging {
                ckpt_interval: cm.model.ckpt_interval,
                groups: 16,
                sync: false,
                parallel_recovery: 16,
            },
            17.0,
            10,
        );
        let speedup = gc.hours / sw.hours;
        assert!(
            (1.0..1.05).contains(&speedup),
            "ViT speedup {speedup:.3} (paper: 1.01×)"
        );
        assert!(
            gc.failures <= 10,
            "short job sees few failures: {}",
            gc.failures
        );
    }

    #[test]
    fn fig12_interval_sweep_has_interior_optimum_for_global() {
        // Too-frequent checkpoints pay overhead; too-rare ones pay
        // rollback. The optimum is interior.
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        let sweep = sweep_ckpt_interval(
            &cm,
            |iv| Method::GlobalCkpt { interval: iv },
            &[50, 200, 1000, 5004, 20000, 100000],
            17.0,
            6,
        );
        let best = sweep.iter().map(|&(_, h)| h).fold(f64::INFINITY, f64::min);
        let first = sweep.first().unwrap().1;
        let last = sweep.last().unwrap().1;
        assert!(best < first && best < last, "interior optimum: {sweep:?}");
    }

    #[test]
    fn fig12_swift_beats_global_at_every_interval() {
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        for iv in [500u64, 5004, 20000] {
            let gc = simulate_mean(&cm, Method::GlobalCkpt { interval: iv }, 17.0, 6).hours;
            let sw =
                simulate_mean(&cm, Method::SwiftReplication { ckpt_interval: iv }, 17.0, 6).hours;
            assert!(sw <= gc, "interval {iv}: swift {sw:.1} vs global {gc:.1}");
        }
    }

    #[test]
    fn fig13_more_failures_more_swift_advantage() {
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        let gc = sweep_mtbf(
            &cm,
            Method::GlobalCkpt { interval: 5004 },
            &[4.0, 17.0, 68.0],
            6,
        );
        let sw = sweep_mtbf(
            &cm,
            Method::SwiftReplication {
                ckpt_interval: 5004,
            },
            &[4.0, 17.0, 68.0],
            6,
        );
        let speedup: Vec<f64> = gc.iter().zip(sw.iter()).map(|(g, s)| g.1 / s.1).collect();
        assert!(
            speedup[0] > speedup[1] && speedup[1] > speedup[2],
            "speedup grows with failure frequency: {speedup:?}"
        );
        // SWIFT still (weakly) best when failures are rare.
        assert!(sw[2].1 <= gc[2].1 + 0.5);
    }

    #[test]
    fn zero_failures_reduces_to_failure_free_time() {
        let cm = CostModel::new(bert_128(), TESTBED);
        // Enormous MTBF → essentially no failures.
        let o = simulate_mean(
            &cm,
            Method::GlobalCkpt {
                interval: cm.model.ckpt_interval,
            },
            1e9,
            3,
        );
        assert_eq!(o.failures, 0);
        let expect = cm.model.failure_free_seconds() / 3600.0;
        assert!(
            (o.hours - expect).abs() / expect < 0.02,
            "{} vs {}",
            o.hours,
            expect
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        let a = simulate_run(&cm, Method::GlobalCkpt { interval: 5004 }, 17.0, 3);
        let b = simulate_run(&cm, Method::GlobalCkpt { interval: 5004 }, 17.0, 3);
        assert_eq!(a.hours, b.hours);
        assert_eq!(a.failures, b.failures);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use swift_dnn::profile::{bert_128, wide_resnet_50, TESTBED};

    #[test]
    fn failure_count_scales_with_run_length() {
        // WRN runs ~480 h, ViT ~86 h: at the same MTBF the longer job sees
        // proportionally more failures.
        let wrn = CostModel::new(wide_resnet_50(), TESTBED);
        let vit = CostModel::new(swift_dnn::profile::vit_128_32(), TESTBED);
        let fw = simulate_mean(&wrn, Method::GlobalCkpt { interval: 5_004 }, 17.0, 8).failures;
        let fv = simulate_mean(&vit, Method::GlobalCkpt { interval: 312 }, 17.0, 8).failures;
        assert!(fw > 3 * fv, "WRN {fw} vs ViT {fv}");
    }

    #[test]
    fn sync_logging_slows_failure_free_time() {
        let cm = CostModel::new(bert_128(), TESTBED);
        let sync = simulate_mean(
            &cm,
            Method::SwiftLogging {
                ckpt_interval: 5_000,
                groups: 16,
                sync: true,
                parallel_recovery: 1,
            },
            1e9, // effectively failure-free
            2,
        );
        let async_ = simulate_mean(
            &cm,
            Method::SwiftLogging {
                ckpt_interval: 5_000,
                groups: 16,
                sync: false,
                parallel_recovery: 1,
            },
            1e9,
            2,
        );
        assert!(
            sync.hours > async_.hours,
            "sync {:.1} vs async {:.1}",
            sync.hours,
            async_.hours
        );
    }

    #[test]
    fn elastic_horovod_beats_checkfreq_slightly() {
        // EH skips the disk persist; its failure-free overhead is lower.
        let cm = CostModel::new(wide_resnet_50(), TESTBED);
        let cf = simulate_mean(&cm, Method::CheckFreq { interval: 30 }, 17.0, 6);
        let eh = simulate_mean(&cm, Method::ElasticHorovod { interval: 30 }, 17.0, 6);
        assert!(
            eh.hours <= cf.hours,
            "EH {:.1} vs CF {:.1}",
            eh.hours,
            cf.hours
        );
    }
}
