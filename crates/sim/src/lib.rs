//! # swift-sim
//!
//! The evaluation-scale performance model. The in-process runtime
//! (`swift-net` + `swift-core`) proves SWIFT's *protocol and numerical*
//! properties on real tensors; this crate models the *wall-clock*
//! behaviour of the paper's testbed (16 DGX-2 machines, §7) from first
//! principles — compute/bandwidth constants, schedule structure, and the
//! recovery protocols — to regenerate every quantitative figure:
//!
//! - [`throughput`]: Fig. 3 iteration-time series, Fig. 8 (top)
//!   failure-free throughput, Fig. 9 recovery-window timelines;
//! - [`recovery`]: Fig. 8 (bottom) recovery times;
//! - [`study`]: §7.3's end-to-end study — Tables 4–5, Figs. 12–13.
//!
//! Absolute numbers are modeled, not measured; the claims preserved are
//! the *shapes*: orderings, crossover locations, and approximate factors
//! (see EXPERIMENTS.md for paper-vs-model values).

pub mod eventsim;
pub mod method;
pub mod recovery;
pub mod study;
pub mod throughput;

pub use eventsim::{pipelined_recovery, simulate_tasks, RecoveryBreakdown, Task};
pub use method::{CostModel, Method};
pub use recovery::{logging_recovery_event_s, recovery_time_s, RecoveryTime};
pub use study::{simulate_mean, simulate_run, sweep_ckpt_interval, sweep_mtbf, RunOutcome};
pub use throughput::{iteration_times, mean_throughput, recovery_timeline, TimelinePoint};
