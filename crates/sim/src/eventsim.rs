//! A small deterministic discrete-event simulator, used to model the
//! *pipelined* recovery of §5.1 ("steps 3, 4, and 5 can be executed in a
//! pipeline by chunking the logging file"): per-iteration log chunks flow
//! upload → download → replay through three exclusive resources, and the
//! recovery makespan emerges from the event schedule instead of a closed
//! form.

use std::collections::BinaryHeap;

/// A task in the dependency graph.
#[derive(Debug, Clone)]
pub struct Task {
    /// Service time on its resource, seconds.
    pub duration: f64,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
    /// The exclusive resource that executes it.
    pub resource: usize,
}

/// Event-driven execution of a task DAG over exclusive resources.
///
/// Each resource serves one task at a time; among ready tasks it picks the
/// lowest index (deterministic FIFO). Returns per-task finish times and
/// the makespan.
///
/// # Panics
/// Panics on dependency cycles (the queue drains with tasks unfinished).
pub fn simulate_tasks(tasks: &[Task], n_resources: usize) -> (Vec<f64>, f64) {
    let n = tasks.len();
    let mut remaining_deps: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in tasks.iter().enumerate() {
        assert!(t.resource < n_resources, "task {i} uses unknown resource");
        assert!(t.duration >= 0.0);
        for &d in &t.deps {
            dependents[d].push(i);
        }
    }
    let mut ready: Vec<BinaryHeap<std::cmp::Reverse<usize>>> =
        (0..n_resources).map(|_| BinaryHeap::new()).collect();
    for (i, _) in tasks.iter().enumerate() {
        if remaining_deps[i] == 0 {
            ready[tasks[i].resource].push(std::cmp::Reverse(i));
        }
    }
    let mut resource_free = vec![0f64; n_resources];
    let mut finish = vec![f64::NAN; n];
    // Event queue of (time, resource) completions; we advance time by
    // repeatedly starting whatever is startable.
    let mut events: BinaryHeap<std::cmp::Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let key = |t: f64| (t * 1e9) as u64; // fixed-point ordering

    let mut running: Vec<Option<usize>> = vec![None; n_resources];
    let mut done = 0usize;
    let mut now = 0f64;
    loop {
        // Start tasks on idle resources.
        for r in 0..n_resources {
            if running[r].is_none() {
                if let Some(std::cmp::Reverse(i)) = ready[r].pop() {
                    let start = now.max(resource_free[r]);
                    let end = start + tasks[i].duration;
                    resource_free[r] = end;
                    running[r] = Some(i);
                    events.push(std::cmp::Reverse((key(end), r, i)));
                }
            }
        }
        let Some(std::cmp::Reverse((tk, r, i))) = events.pop() else {
            break;
        };
        now = tk as f64 / 1e9;
        finish[i] = resource_free[r];
        running[r] = None;
        done += 1;
        for &dep in &dependents[i] {
            remaining_deps[dep] -= 1;
            if remaining_deps[dep] == 0 {
                ready[tasks[dep].resource].push(std::cmp::Reverse(dep));
            }
        }
    }
    assert_eq!(done, n, "dependency cycle: {} tasks never ran", n - done);
    let makespan = finish.iter().copied().fold(0.0, f64::max);
    (finish, makespan)
}

/// Per-phase completion times of an event-simulated logging recovery.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryBreakdown {
    /// When the last log chunk left the survivors' disks.
    pub upload_done_s: f64,
    /// When the last chunk reached the recovering workers.
    pub download_done_s: f64,
    /// When the last iteration finished replaying (= recovery complete).
    pub replay_done_s: f64,
}

/// Event-simulates the §5.1 pipelined recovery: one chunk per lost
/// iteration flows upload → download → replay.
///
/// - `upload_s` / `download_s`: per-iteration transfer time of the group's
///   boundary log volume through the global store;
/// - `replay_s`: per-iteration re-computation time (already divided by the
///   parallel-recovery factor by the caller);
/// - `load_s`: checkpoint load, serialized before the first replay.
pub fn pipelined_recovery(
    iters: u64,
    upload_s: f64,
    download_s: f64,
    replay_s: f64,
    load_s: f64,
) -> RecoveryBreakdown {
    // Resources: 0 = uplink, 1 = downlink, 2 = recovering compute.
    let n = iters as usize;
    let mut tasks = Vec::with_capacity(3 * n + 1);
    // Task 0: checkpoint load on the compute resource.
    tasks.push(Task {
        duration: load_s,
        deps: vec![],
        resource: 2,
    });
    for i in 0..n {
        let up = tasks.len(); // 1 + 3i
        tasks.push(Task {
            duration: upload_s,
            deps: vec![],
            resource: 0,
        });
        let down = tasks.len(); // 2 + 3i
        tasks.push(Task {
            duration: download_s,
            deps: vec![up],
            resource: 1,
        });
        let replay = tasks.len(); // 3 + 3i
        let mut deps = vec![down, 0];
        if i > 0 {
            deps.push(replay - 3); // the previous iteration's replay
        }
        tasks.push(Task {
            duration: replay_s,
            deps,
            resource: 2,
        });
    }
    let (finish, _) = simulate_tasks(&tasks, 3);
    let mut upload_done = 0f64;
    let mut download_done = 0f64;
    let mut replay_done = 0f64;
    for (i, t) in tasks.iter().enumerate() {
        match t.resource {
            0 => upload_done = upload_done.max(finish[i]),
            1 => download_done = download_done.max(finish[i]),
            _ => replay_done = replay_done.max(finish[i]),
        }
    }
    RecoveryBreakdown {
        upload_done_s: upload_done,
        download_done_s: download_done,
        replay_done_s: replay_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_tasks_run_back_to_back() {
        let tasks = vec![
            Task {
                duration: 1.0,
                deps: vec![],
                resource: 0,
            },
            Task {
                duration: 2.0,
                deps: vec![],
                resource: 0,
            },
            Task {
                duration: 1.5,
                deps: vec![],
                resource: 1,
            },
        ];
        let (finish, makespan) = simulate_tasks(&tasks, 2);
        assert!((finish[0] - 1.0).abs() < 1e-9);
        assert!((finish[1] - 3.0).abs() < 1e-9);
        assert!((finish[2] - 1.5).abs() < 1e-9);
        assert!((makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_respected() {
        let tasks = vec![
            Task {
                duration: 2.0,
                deps: vec![],
                resource: 0,
            },
            Task {
                duration: 1.0,
                deps: vec![0],
                resource: 1,
            },
            Task {
                duration: 1.0,
                deps: vec![1],
                resource: 0,
            },
        ];
        let (finish, makespan) = simulate_tasks(&tasks, 2);
        assert!((finish[1] - 3.0).abs() < 1e-9);
        assert!((finish[2] - 4.0).abs() < 1e-9);
        assert!((makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn cycle_detected() {
        let tasks = vec![
            Task {
                duration: 1.0,
                deps: vec![1],
                resource: 0,
            },
            Task {
                duration: 1.0,
                deps: vec![0],
                resource: 0,
            },
        ];
        simulate_tasks(&tasks, 1);
    }

    #[test]
    fn pipelined_recovery_is_bottleneck_bound() {
        // 100 chunks; replay is the bottleneck at 1 s/chunk: makespan ≈
        // load + startup + 100 × 1 s, far below the 250 s sequential sum.
        let b = pipelined_recovery(100, 0.5, 0.5, 1.0, 2.0);
        let sequential = 2.0 + 100.0 * (0.5 + 0.5 + 1.0);
        assert!(b.replay_done_s < 0.55 * sequential, "{b:?}");
        assert!(b.replay_done_s >= 2.0 + 100.0 * 1.0);
        assert!(b.upload_done_s <= b.download_done_s);
        assert!(b.download_done_s <= b.replay_done_s);
    }

    #[test]
    fn transfer_bound_when_network_is_slow() {
        let b = pipelined_recovery(50, 2.0, 2.0, 0.1, 0.0);
        // Download stream gates everything: ~2 s upload head start + 50×2 s.
        assert!(
            (b.replay_done_s - (2.0 + 50.0 * 2.0 + 0.1)).abs() < 1.0,
            "{b:?}"
        );
    }

    #[test]
    fn zero_iterations_costs_only_the_load() {
        let b = pipelined_recovery(0, 1.0, 1.0, 1.0, 3.0);
        assert!((b.replay_done_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let a = pipelined_recovery(37, 0.7, 0.3, 0.9, 1.1);
        let b = pipelined_recovery(37, 0.7, 0.3, 0.9, 1.1);
        assert_eq!(a.replay_done_s.to_bits(), b.replay_done_s.to_bits());
    }
}
