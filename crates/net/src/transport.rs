//! The transport abstraction: how frames move between ranks.
//!
//! [`Comm`](crate::comm::Comm) implements ordering, generation fencing,
//! failure detection and collectives once, against this trait; backends
//! supply the actual fabric. Two exist:
//!
//! - [`ChannelTransport`]: the in-process crossbeam fabric (one thread
//!   per rank). Deterministic, injectable, the CI default.
//! - [`SocketTransport`](crate::socket::SocketTransport): one OS process
//!   per rank over Unix-domain sockets, where a crash is a real `SIGKILL`
//!   and reconnection is a real `connect(2)`.
//!
//! The frame header is identical across backends — `(src, tag, tag_seq,
//! generation)` — so the stream-ordering and epoch-fencing logic in
//! `Comm` observes the same protocol whichever fabric carries it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError};

use crate::comm::Fabric;
use crate::faults::FaultInjector;
use crate::topology::Rank;
use crate::trace::Tracer;

/// One in-flight message, as seen by a receiver.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Sending rank.
    pub src: Rank,
    /// User or collective tag.
    pub tag: u64,
    /// Position in the per-`(src, dst, tag)` stream. Receivers deliver
    /// each stream strictly in order, exactly once.
    pub tag_seq: u64,
    /// Sender's failure generation; receivers fence older generations.
    pub generation: u64,
    /// Earliest delivery time (injected delay; `now` when fault-free).
    pub deliver_at: Instant,
    /// The payload bytes.
    pub payload: Bytes,
    /// Sender's vector clock at send time (tracing enabled only).
    pub vc: Option<Arc<Vec<u64>>>,
}

/// What became of a [`Transport::transmit`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// The frame was handed to the fabric.
    Sent,
    /// A crash trigger fired on the sender mid-send; the message died
    /// with the machine.
    SenderCrashed,
    /// The destination is unreachable (inbox dropped, socket refused or
    /// broken). The frame may be lost; recovery re-synchronizes streams
    /// via the generation fence.
    PeerGone,
}

/// What a bounded receive produced.
#[derive(Debug)]
pub enum RecvEvent {
    /// A frame arrived.
    Frame(Frame),
    /// Nothing arrived within the timeout.
    Timeout,
    /// The receive side is permanently gone (fabric torn down).
    Disconnected,
}

/// A rank's connection to the fabric.
///
/// Implementations own the sender-side stream counters (so `tag_seq`
/// stamping is theirs) and the inbound queue. They do *not* implement
/// ordering, deduplication or fencing — that is `Comm`'s job, identical
/// across backends.
pub trait Transport: Send {
    /// Stamps sequence numbers and ships `payload` to `dst`.
    fn transmit(&self, dst: Rank, generation: u64, tag: u64, payload: Bytes) -> TransmitOutcome;

    /// Blocks up to `timeout` for the next inbound frame.
    fn recv_timeout(&mut self, timeout: Duration) -> RecvEvent;

    /// Drains every frame currently queued inbound (recovery purge).
    fn drain(&mut self) -> Vec<Frame>;

    /// Whether `rank`'s link is believed up — the cheap, non-blocking
    /// liveness signal consulted before sends and on receive timeouts.
    fn link_up(&self, rank: Rank) -> bool;

    /// Like [`link_up`](Transport::link_up), but allowed to do work to
    /// find out (a socket backend attempts a reconnect). Used on receive
    /// timeouts so a peer that *recovered* since the last failure is not
    /// re-declared dead.
    fn probe_link(&self, rank: Rank) -> bool {
        self.link_up(rank)
    }

    /// Raises the backend's generation fence floor: frames stamped with
    /// an older generation may be rejected before they are queued (the
    /// socket backend drops them at the boundary). Purely an early
    /// filter — `Comm` fences stale generations again on receive.
    fn fence_generation(&self, _generation: u64) {}

    /// The fault injector shaping this transport's traffic, if any.
    fn injector(&self) -> Option<Arc<FaultInjector>> {
        None
    }

    /// The protocol tracer observing this transport, if any.
    fn tracer(&self) -> Option<Arc<Tracer>> {
        None
    }
}

/// The in-process backend: a receiver on the shared channel
/// [`Fabric`]. Sends go through the fabric (which owns the stream
/// counters and the injector); receives drain this rank's inbox.
pub struct ChannelTransport {
    fabric: Arc<Fabric>,
    rank: Rank,
    inbox: Receiver<Frame>,
}

impl ChannelTransport {
    /// Wraps one rank's end of the channel fabric.
    pub fn new(fabric: Arc<Fabric>, rank: Rank, inbox: Receiver<Frame>) -> Self {
        ChannelTransport {
            fabric,
            rank,
            inbox,
        }
    }
}

impl Transport for ChannelTransport {
    fn transmit(&self, dst: Rank, generation: u64, tag: u64, payload: Bytes) -> TransmitOutcome {
        self.fabric
            .transmit(self.rank, dst, generation, tag, payload)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> RecvEvent {
        match self.inbox.recv_timeout(timeout) {
            Ok(f) => RecvEvent::Frame(f),
            Err(RecvTimeoutError::Timeout) => RecvEvent::Timeout,
            Err(RecvTimeoutError::Disconnected) => RecvEvent::Disconnected,
        }
    }

    fn drain(&mut self) -> Vec<Frame> {
        let mut out = Vec::new();
        while let Ok(f) = self.inbox.try_recv() {
            out.push(f);
        }
        out
    }

    fn link_up(&self, rank: Rank) -> bool {
        self.fabric.link_up(rank)
    }

    fn injector(&self) -> Option<Arc<FaultInjector>> {
        self.fabric.injector()
    }

    fn tracer(&self) -> Option<Arc<Tracer>> {
        self.fabric.tracer()
    }
}
