//! A tiny global key-value store, co-located with rank 0 in the paper
//! (§6 "Failure detection"): workers publish the failure flag and other
//! small coordination facts here.
//!
//! Two backends share one handle type:
//!
//! - **Local**: an `Arc`'d map + condvar, cloned between threads — the
//!   in-process cluster's store, and the storage behind the supervisor's
//!   [`KvServer`](crate::kv_remote::KvServer).
//! - **Remote**: a Unix-socket client to a supervisor-hosted server,
//!   used by worker *processes* ([`KvStore::connect`]). Blocking waits
//!   poll; read-modify-write runs as a compare-and-swap retry loop.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
#[cfg(test)]
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::clock::{self, Clock};
use crate::kv_remote::{self, RemoteKv};
use crate::retry::RetryPolicy;

/// Shared key-value store with blocking waits.
#[derive(Debug, Clone)]
pub struct KvStore {
    backend: Backend,
    /// Time source for [`wait_for`](KvStore::wait_for) deadlines
    /// (virtual under `swift-mc`, wall-clock everywhere else).
    clock: Arc<dyn Clock>,
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore {
            backend: Backend::default(),
            clock: clock::system(),
        }
    }
}

#[derive(Debug, Clone)]
enum Backend {
    Local(Arc<KvInner>),
    Remote(Arc<RemoteKv>),
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Local(Arc::default())
    }
}

#[derive(Debug, Default)]
struct KvInner {
    map: Mutex<HashMap<String, String>>,
    cv: Condvar,
}

/// Remote poll cadence for [`KvStore::wait_for`] (the local backend
/// blocks on a condvar instead).
const REMOTE_WAIT_TICK: Duration = Duration::from_millis(2);

impl KvStore {
    /// Creates an empty local store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Connects to a [`KvServer`](crate::kv_remote::KvServer) at `path`,
    /// retrying until the policy's deadline (the server may still be
    /// binding). Every operation on the returned handle is a socket
    /// round-trip to the hosting process's store.
    pub fn connect(path: &Path, retry: &RetryPolicy) -> io::Result<Self> {
        Ok(KvStore {
            backend: Backend::Remote(Arc::new(RemoteKv::connect(path, retry)?)),
            clock: clock::system(),
        })
    }

    /// This store with its [`wait_for`](KvStore::wait_for) deadlines
    /// measured on `clock`. The model checker installs a
    /// [`VirtualClock`](crate::clock::VirtualClock) so a blocked wait
    /// expires when the schedule advances time, not when the wall does.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Whether this handle is a remote client (worker-process side).
    pub fn is_remote(&self) -> bool {
        matches!(self.backend, Backend::Remote(_))
    }

    /// Sets `key` to `value`, waking any waiters.
    pub fn set(&self, key: &str, value: impl Into<String>) {
        match &self.backend {
            Backend::Local(inner) => {
                let mut m = inner.map.lock();
                m.insert(key.to_string(), value.into());
                inner.cv.notify_all();
            }
            Backend::Remote(r) => {
                r.roundtrip(&kv_remote::encode_set(key, &value.into()));
            }
        }
    }

    /// Sorted snapshot of the whole store — the model checker's state
    /// fingerprint. Local backend only; a remote handle would need a
    /// server round-trip per key and has no enumeration protocol.
    pub fn dump(&self) -> Vec<(String, String)> {
        match &self.backend {
            Backend::Local(inner) => {
                let mut all: Vec<_> = inner
                    .map
                    .lock()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                all.sort();
                all
            }
            Backend::Remote(_) => Vec::new(),
        }
    }

    /// Current value of `key`, if any.
    pub fn get(&self, key: &str) -> Option<String> {
        match &self.backend {
            Backend::Local(inner) => inner.map.lock().get(key).cloned(),
            Backend::Remote(r) => r.roundtrip(&kv_remote::encode_get(key)).1,
        }
    }

    /// Removes `key`, returning its previous value.
    pub fn remove(&self, key: &str) -> Option<String> {
        match &self.backend {
            Backend::Local(inner) => {
                let mut m = inner.map.lock();
                let v = m.remove(key);
                inner.cv.notify_all();
                v
            }
            Backend::Remote(r) => r.roundtrip(&kv_remote::encode_remove(key)).1,
        }
    }

    /// Blocks until `key` exists (or the timeout elapses), returning its
    /// value. The local backend parks on a condvar; the remote client
    /// polls the server.
    pub fn wait_for(&self, key: &str, timeout: Duration) -> Option<String> {
        let deadline = self.clock.now() + timeout;
        match &self.backend {
            Backend::Local(inner) => {
                let mut m = inner.map.lock();
                loop {
                    if let Some(v) = m.get(key) {
                        return Some(v.clone());
                    }
                    let now = self.clock.now();
                    if now >= deadline {
                        return None;
                    }
                    // The condvar parks on the real wall clock: under a
                    // virtual clock the deadline is typically already in
                    // the past, so the wait degrades to a non-blocking
                    // poll — exactly what the checker wants.
                    if inner.cv.wait_until(&mut m, deadline).timed_out() {
                        return m.get(key).cloned();
                    }
                }
            }
            Backend::Remote(_) => loop {
                if let Some(v) = self.get(key) {
                    return Some(v);
                }
                if self.clock.now() >= deadline {
                    return self.get(key);
                }
                self.clock.sleep(REMOTE_WAIT_TICK);
            },
        }
    }

    /// Atomically replaces the value at `key` with `f(current)`.
    /// Returning `None` leaves the key unchanged; the final value (old
    /// or new) is returned. Used for idempotent failure declarations:
    /// concurrent detectors can union into the dead-rank list without
    /// losing ranks.
    ///
    /// The local backend holds the store lock across one invocation of
    /// `f`; the remote client runs a compare-and-swap loop, so `f` may
    /// run *several times* against fresh snapshots — it must be a pure
    /// function of its input (or tolerate re-execution) on handles that
    /// may be remote.
    pub fn update(
        &self,
        key: &str,
        mut f: impl FnMut(Option<&str>) -> Option<String>,
    ) -> Option<String> {
        match &self.backend {
            Backend::Local(inner) => {
                let mut m = inner.map.lock();
                let current = m.get(key).cloned();
                match f(current.as_deref()) {
                    Some(new) => {
                        m.insert(key.to_string(), new.clone());
                        inner.cv.notify_all();
                        Some(new)
                    }
                    None => current,
                }
            }
            Backend::Remote(_) => {
                let mut current = self.get(key);
                loop {
                    match f(current.as_deref()) {
                        None => return current,
                        Some(new) => {
                            let (swapped, observed) =
                                self.cas(key, current.as_deref(), new.clone());
                            if swapped {
                                return Some(new);
                            }
                            // Lost the race: retry against the value that
                            // beat us.
                            current = observed;
                        }
                    }
                }
            }
        }
    }

    /// Compares the current value of `key` with `expected` and, when
    /// they match (`None` = absent), installs `new`. Returns `(swapped,
    /// current)` where `current` is the conflicting value on failure.
    pub fn cas(&self, key: &str, expected: Option<&str>, new: String) -> (bool, Option<String>) {
        match &self.backend {
            Backend::Local(inner) => {
                let mut m = inner.map.lock();
                if m.get(key).map(String::as_str) == expected {
                    m.insert(key.to_string(), new);
                    inner.cv.notify_all();
                    (true, None)
                } else {
                    (false, m.get(key).cloned())
                }
            }
            Backend::Remote(r) => r.roundtrip(&kv_remote::encode_cas(key, expected, &new)),
        }
    }

    /// Atomically increments an integer counter at `key`, returning the
    /// new value (missing keys count as 0).
    pub fn incr(&self, key: &str) -> i64 {
        match &self.backend {
            Backend::Local(inner) => {
                let mut m = inner.map.lock();
                let v = m.get(key).and_then(|s| s.parse::<i64>().ok()).unwrap_or(0) + 1;
                m.insert(key.to_string(), v.to_string());
                inner.cv.notify_all();
                v
            }
            Backend::Remote(r) => r
                .roundtrip(&kv_remote::encode_incr(key))
                .1
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_get_remove() {
        let kv = KvStore::new();
        assert!(kv.get("a").is_none());
        kv.set("a", "1");
        assert_eq!(kv.get("a").as_deref(), Some("1"));
        assert_eq!(kv.remove("a").as_deref(), Some("1"));
        assert!(kv.get("a").is_none());
    }

    #[test]
    fn wait_for_cross_thread() {
        let kv = KvStore::new();
        let kv2 = kv.clone();
        let h = thread::spawn(move || kv2.wait_for("flag", Duration::from_secs(2)));
        thread::sleep(Duration::from_millis(20));
        kv.set("flag", "up");
        assert_eq!(h.join().unwrap().as_deref(), Some("up"));
    }

    #[test]
    fn wait_for_times_out() {
        let kv = KvStore::new();
        let t0 = Instant::now();
        assert!(kv.wait_for("never", Duration::from_millis(30)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn late_set_after_timeout_is_not_lost() {
        // A timed-out waiter must not poison the key: a set landing after
        // the timeout is visible to get() and to a fresh wait_for().
        let kv = KvStore::new();
        assert!(kv.wait_for("late", Duration::from_millis(20)).is_none());
        kv.set("late", "v");
        assert_eq!(kv.get("late").as_deref(), Some("v"));
        assert_eq!(
            kv.wait_for("late", Duration::from_millis(20)).as_deref(),
            Some("v")
        );
    }

    #[test]
    fn incr_is_atomic_across_threads() {
        let kv = KvStore::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let kv = kv.clone();
                thread::spawn(move || {
                    for _ in 0..100 {
                        kv.incr("n");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.get("n").as_deref(), Some("800"));
    }

    #[test]
    fn local_cas_matches_and_conflicts() {
        let kv = KvStore::new();
        let (ok, _) = kv.cas("k", None, "a".into());
        assert!(ok);
        let (ok, cur) = kv.cas("k", Some("wrong"), "b".into());
        assert!(!ok);
        assert_eq!(cur.as_deref(), Some("a"));
        let (ok, _) = kv.cas("k", Some("a"), "b".into());
        assert!(ok);
        assert_eq!(kv.get("k").as_deref(), Some("b"));
    }
}
