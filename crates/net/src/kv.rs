//! A tiny global key-value store, co-located with rank 0 in the paper
//! (§6 "Failure detection"): workers publish the failure flag and other
//! small coordination facts here.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Shared key-value store with blocking waits.
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    inner: Arc<KvInner>,
}

#[derive(Debug, Default)]
struct KvInner {
    map: Mutex<HashMap<String, String>>,
    cv: Condvar,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value`, waking any waiters.
    pub fn set(&self, key: &str, value: impl Into<String>) {
        let mut m = self.inner.map.lock();
        m.insert(key.to_string(), value.into());
        self.inner.cv.notify_all();
    }

    /// Current value of `key`, if any.
    pub fn get(&self, key: &str) -> Option<String> {
        self.inner.map.lock().get(key).cloned()
    }

    /// Removes `key`, returning its previous value.
    pub fn remove(&self, key: &str) -> Option<String> {
        let mut m = self.inner.map.lock();
        let v = m.remove(key);
        self.inner.cv.notify_all();
        v
    }

    /// Blocks until `key` exists (or the timeout elapses), returning its
    /// value.
    pub fn wait_for(&self, key: &str, timeout: Duration) -> Option<String> {
        let deadline = Instant::now() + timeout;
        let mut m = self.inner.map.lock();
        loop {
            if let Some(v) = m.get(key) {
                return Some(v.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.inner.cv.wait_until(&mut m, deadline).timed_out() {
                return m.get(key).cloned();
            }
        }
    }

    /// Atomically replaces the value at `key` with `f(current)`, holding
    /// the store lock across the read-modify-write. Returning `None`
    /// leaves the key unchanged; the final value (old or new) is
    /// returned. Used for idempotent failure declarations: concurrent
    /// detectors can union into the dead-rank list without losing ranks.
    pub fn update(
        &self,
        key: &str,
        f: impl FnOnce(Option<&str>) -> Option<String>,
    ) -> Option<String> {
        let mut m = self.inner.map.lock();
        let current = m.get(key).cloned();
        match f(current.as_deref()) {
            Some(new) => {
                m.insert(key.to_string(), new.clone());
                self.inner.cv.notify_all();
                Some(new)
            }
            None => current,
        }
    }

    /// Atomically increments an integer counter at `key`, returning the
    /// new value (missing keys count as 0).
    pub fn incr(&self, key: &str) -> i64 {
        let mut m = self.inner.map.lock();
        let v = m.get(key).and_then(|s| s.parse::<i64>().ok()).unwrap_or(0) + 1;
        m.insert(key.to_string(), v.to_string());
        self.inner.cv.notify_all();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_get_remove() {
        let kv = KvStore::new();
        assert!(kv.get("a").is_none());
        kv.set("a", "1");
        assert_eq!(kv.get("a").as_deref(), Some("1"));
        assert_eq!(kv.remove("a").as_deref(), Some("1"));
        assert!(kv.get("a").is_none());
    }

    #[test]
    fn wait_for_cross_thread() {
        let kv = KvStore::new();
        let kv2 = kv.clone();
        let h = thread::spawn(move || kv2.wait_for("flag", Duration::from_secs(2)));
        thread::sleep(Duration::from_millis(20));
        kv.set("flag", "up");
        assert_eq!(h.join().unwrap().as_deref(), Some("up"));
    }

    #[test]
    fn wait_for_times_out() {
        let kv = KvStore::new();
        let t0 = Instant::now();
        assert!(kv.wait_for("never", Duration::from_millis(30)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn late_set_after_timeout_is_not_lost() {
        // A timed-out waiter must not poison the key: a set landing after
        // the timeout is visible to get() and to a fresh wait_for().
        let kv = KvStore::new();
        assert!(kv.wait_for("late", Duration::from_millis(20)).is_none());
        kv.set("late", "v");
        assert_eq!(kv.get("late").as_deref(), Some("v"));
        assert_eq!(
            kv.wait_for("late", Duration::from_millis(20)).as_deref(),
            Some("v")
        );
    }

    #[test]
    fn incr_is_atomic_across_threads() {
        let kv = KvStore::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let kv = kv.clone();
                thread::spawn(move || {
                    for _ in 0..100 {
                        kv.incr("n");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.get("n").as_deref(), Some("800"));
    }
}
