//! The time seam behind swift_net's protocol code.
//!
//! Every protocol-relevant read of "now" and every protocol sleep goes
//! through a [`Clock`], so the same detector, communicator, and KV code
//! runs against real time in production and against a [`VirtualClock`]
//! under the model checker (`swift-mc`), where lease expiry and message
//! maturation become explicit schedule points instead of wall-clock
//! races. Code that talks to real sockets or real processes
//! (`socket.rs`, `kv_remote.rs`, `retry.rs`) is exempt: wall time is
//! inherent there, and the checker models those layers instead of
//! executing them. `cargo xtask lint` enforces the split.
//!
//! [`Instant`] stays the unit of time on both sides: a virtual clock
//! reports a fixed base instant plus a manually advanced offset, so
//! `Frame::deliver_at`, lease bookkeeping, and deadline arithmetic are
//! identical under either clock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of time plus the ability to pass it.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current instant.
    fn now(&self) -> Instant;

    /// Passes `d` of this clock's time. The system clock blocks the
    /// calling thread; a virtual clock advances instantly, which turns
    /// protocol back-off loops into plain state transitions the
    /// checker can interleave.
    fn sleep(&self, d: Duration);
}

/// Wall-clock time — the production behavior.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d)
    }
}

/// The default clock handle: real time.
pub fn system() -> Arc<dyn Clock> {
    Arc::new(SystemClock)
}

/// Deterministic time under test: a base instant captured at
/// construction plus an atomic nanosecond offset that only [`advance`]
/// (or a virtual `sleep`) moves. Two reads with no advance in between
/// observe the *same* instant, so anything timing-dependent becomes a
/// pure function of the schedule that advanced the clock.
///
/// [`advance`]: VirtualClock::advance
#[derive(Debug)]
pub struct VirtualClock {
    base: Instant,
    offset_ns: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at "now", frozen until advanced.
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock {
            base: Instant::now(),
            offset_ns: AtomicU64::new(0),
        })
    }

    /// Moves virtual time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.offset_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Virtual time passed since construction.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.offset_ns.load(Ordering::SeqCst))
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Instant {
        self.base + self.elapsed()
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_frozen_until_advanced() {
        let clock = VirtualClock::new();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(a, clock.now(), "wall time must not leak in");
        clock.advance(Duration::from_secs(3));
        assert_eq!(clock.now() - a, Duration::from_secs(3));
    }

    #[test]
    fn virtual_sleep_advances_instead_of_blocking() {
        let clock = VirtualClock::new();
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(5));
        assert_eq!(clock.elapsed(), Duration::from_secs(3600));
    }
}
