//! Deterministic, seeded fault injection for the channel fabric.
//!
//! A [`FaultPlan`] describes the adversary: per-link delay and jitter,
//! message reordering, transient drops (repaired by retransmission),
//! duplicate delivery, transient rank stalls, and crash *triggers* that
//! fire on the Nth message or the Kth iteration of a target rank —
//! replacing the oracle-style "kill machine M at iteration I" coordinates
//! with conditions the workload itself trips over.
//!
//! The [`FaultInjector`] is the fabric-side interpreter of a plan. Every
//! per-message decision is drawn from an RNG keyed on
//! `(seed, src, dst, link_seq)`, so the *fate* of each message is a pure
//! function of the plan and the traffic pattern — independent of thread
//! scheduling. (Delivery *timing* still depends on the OS scheduler; the
//! deterministic collectives in [`crate::comm`] are what turn a chaotic
//! schedule back into bit-identical numerics.)
//!
//! The injector is strictly a *cause* of failures, never an input to
//! detection: production code observes faults only through severed fabric
//! links, missing heartbeats, channel errors, and the key-value store
//! (see [`crate::detector`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::clock::{self, Clock};
use crate::failure::FailureController;
use crate::topology::Rank;

/// A condition under which the injector kills a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Kill `rank`'s machine the moment it attempts its `n`-th message
    /// send (1-based). The message is swallowed — the machine died with
    /// it on the wire.
    AtNthSend { rank: Rank, n: u64 },
    /// Kill `rank`'s machine when it consumes its `n`-th delivered
    /// message (1-based).
    AtNthDelivery { rank: Rank, n: u64 },
    /// Kill `rank`'s machine when it reports reaching training iteration
    /// `iteration` (workers call [`FaultInjector::note_iteration`]).
    AtIteration { rank: Rank, iteration: u64 },
    /// Kill the *OS process* hosting `rank` when it reports reaching
    /// `iteration`. Under the process backend the supervisor watches the
    /// rank's published progress and delivers a real SIGKILL; under the
    /// in-process backend this degrades to [`CrashTrigger::AtIteration`]
    /// semantics, so one plan drives both backends identically.
    KillProcess { rank: Rank, iteration: u64 },
}

/// A transient freeze: `rank` stops making progress for `duration` once
/// it has sent `after_sends` messages. The rank is *alive* the whole
/// time — this is the adversary that manufactures false suspicion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallSpec {
    pub rank: Rank,
    pub after_sends: u64,
    pub duration: Duration,
}

/// A complete, seeded description of the faults to inject.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; every per-message decision derives from it.
    pub seed: u64,
    /// Base delivery delay added to every message.
    pub delay: Duration,
    /// Extra uniform-random delay in `[0, jitter)` per message.
    pub jitter: Duration,
    /// Probability a message is held back long enough to arrive after
    /// its successors.
    pub reorder_prob: f64,
    /// How long a reordered message is held back.
    pub reorder_extra: Duration,
    /// Probability the first transmission of a message is dropped.
    pub drop_prob: f64,
    /// How long after a drop the retransmission arrives.
    pub retransmit_after: Duration,
    /// Probability a message is delivered twice.
    pub duplicate_prob: f64,
    /// Transient rank freezes.
    pub stalls: Vec<StallSpec>,
    /// Crash triggers.
    pub crashes: Vec<CrashTrigger>,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
            reorder_prob: 0.0,
            reorder_extra: Duration::ZERO,
            drop_prob: 0.0,
            retransmit_after: Duration::from_millis(1),
            duplicate_prob: 0.0,
            stalls: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// A ready-made adversarial network: delayed, jittered, reordered,
    /// lossy, and duplicating — but with no crashes or stalls. Training
    /// under this plan must converge bit-identically to a fault-free run.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::new(seed)
            .with_delay(Duration::from_micros(20), Duration::from_micros(200))
            .with_reorder(0.2, Duration::from_micros(500))
            .with_drops(0.05, Duration::from_millis(1))
            .with_duplicates(0.05)
    }

    /// Sets the base delay and jitter.
    pub fn with_delay(mut self, delay: Duration, jitter: Duration) -> Self {
        self.delay = delay;
        self.jitter = jitter;
        self
    }

    /// Sets the reorder probability and hold-back duration.
    pub fn with_reorder(mut self, prob: f64, extra: Duration) -> Self {
        self.reorder_prob = prob;
        self.reorder_extra = extra;
        self
    }

    /// Sets the transient-drop probability and the retransmission delay.
    pub fn with_drops(mut self, prob: f64, retransmit_after: Duration) -> Self {
        self.drop_prob = prob;
        self.retransmit_after = retransmit_after;
        self
    }

    /// Sets the duplicate-delivery probability.
    pub fn with_duplicates(mut self, prob: f64) -> Self {
        self.duplicate_prob = prob;
        self
    }

    /// Adds a transient stall.
    pub fn with_stall(mut self, rank: Rank, after_sends: u64, duration: Duration) -> Self {
        self.stalls.push(StallSpec {
            rank,
            after_sends,
            duration,
        });
        self
    }

    /// Adds a crash trigger.
    pub fn with_crash(mut self, trigger: CrashTrigger) -> Self {
        self.crashes.push(trigger);
        self
    }

    /// Adds a [`CrashTrigger::KillProcess`] trigger: SIGKILL `rank`'s
    /// process once it reports reaching `iteration`.
    pub fn kill_process(self, rank: Rank, iteration: u64) -> Self {
        self.with_crash(CrashTrigger::KillProcess { rank, iteration })
    }

    /// The `(rank, iteration)` coordinates of every
    /// [`CrashTrigger::KillProcess`] trigger — what a process supervisor
    /// arms real SIGKILLs with.
    pub fn process_kills(&self) -> Vec<(Rank, u64)> {
        self.crashes
            .iter()
            .filter_map(|t| match *t {
                CrashTrigger::KillProcess { rank, iteration } => Some((rank, iteration)),
                _ => None,
            })
            .collect()
    }

    /// Whether the plan perturbs message delivery at all (used by the
    /// fabric to skip the injector entirely on the fault-free fast path).
    pub fn perturbs_delivery(&self) -> bool {
        self.delay > Duration::ZERO
            || self.jitter > Duration::ZERO
            || self.reorder_prob > 0.0
            || self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
    }
}

/// Counters for what the injector actually did (assertion material for
/// chaos tests: a run that claims to survive reordering should show
/// `reordered > 0`).
#[derive(Debug, Default)]
pub struct FaultStats {
    delayed: AtomicU64,
    reordered: AtomicU64,
    dropped: AtomicU64,
    retransmitted: AtomicU64,
    duplicated: AtomicU64,
    stalls_served: AtomicU64,
    crashes_fired: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    pub delayed: u64,
    pub reordered: u64,
    pub dropped: u64,
    pub retransmitted: u64,
    pub duplicated: u64,
    pub stalls_served: u64,
    pub crashes_fired: u64,
}

/// The fate of one message send, as decided by the injector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendFate {
    /// Delivery delays, one per copy to enqueue. Empty only when
    /// `crashed` (the message died with its sender). A dropped first
    /// transmission appears here as a single late (retransmitted) copy; a
    /// duplicate as two copies.
    pub copies: Vec<Duration>,
    /// The sender's machine was killed by a crash trigger on this send.
    pub crashed: bool,
}

/// Fabric-side interpreter of a [`FaultPlan`].
///
/// Holds the [`FailureController`] purely as the *kill mechanism* for
/// crash triggers; it never exposes liveness back to production code.
pub struct FaultInjector {
    plan: FaultPlan,
    fc: Arc<FailureController>,
    send_counts: Vec<AtomicU64>,
    delivery_counts: Vec<AtomicU64>,
    /// Activation state per `plan.stalls` entry: `None` = not yet
    /// triggered, `Some(end)` = serving (or served) until `end`.
    stall_ends: Mutex<Vec<Option<Instant>>>,
    /// One-shot latches per `plan.crashes` entry.
    crash_fired: Vec<AtomicBool>,
    stats: FaultStats,
    /// Time source for stall windows (virtual under `swift-mc`).
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Builds an injector for `plan` over the world managed by `fc`.
    pub fn new(plan: FaultPlan, fc: Arc<FailureController>) -> Arc<Self> {
        Self::with_clock(plan, fc, clock::system())
    }

    /// Builds an injector whose stall windows run on `clock` — the
    /// model checker's hook for making "stall ends" a schedule point.
    pub fn with_clock(
        plan: FaultPlan,
        fc: Arc<FailureController>,
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        let world = fc.topology().world_size();
        let stall_ends = Mutex::new(vec![None; plan.stalls.len()]);
        let crash_fired = (0..plan.crashes.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        Arc::new(FaultInjector {
            plan,
            fc,
            send_counts: (0..world).map(|_| AtomicU64::new(0)).collect(),
            delivery_counts: (0..world).map(|_| AtomicU64::new(0)).collect(),
            stall_ends,
            crash_fired,
            stats: FaultStats::default(),
            clock,
        })
    }

    /// The plan being interpreted.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of the message `src` is about to send to `dst`.
    /// `link_seq` is the per-`(src, dst)` message index, which keys the
    /// deterministic RNG.
    pub fn on_send(&self, src: Rank, dst: Rank, link_seq: u64) -> SendFate {
        let count = self.send_counts[src].fetch_add(1, Ordering::SeqCst) + 1;
        for (i, trig) in self.plan.crashes.iter().enumerate() {
            if let CrashTrigger::AtNthSend { rank, n } = *trig {
                if rank == src && count >= n && self.fire_crash(i, rank) {
                    return SendFate {
                        copies: Vec::new(),
                        crashed: true,
                    };
                }
            }
        }
        if !self.plan.perturbs_delivery() {
            return SendFate {
                copies: vec![Duration::ZERO],
                crashed: false,
            };
        }
        let mut rng = MsgRng::new(self.plan.seed, src, dst, link_seq);
        let base = self.plan.delay + mul_duration(self.plan.jitter, rng.next_f64());
        if base > Duration::ZERO {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
        }
        let mut copies = Vec::with_capacity(2);
        if rng.next_f64() < self.plan.drop_prob {
            // First transmission lost; the (sole) copy that arrives is the
            // retransmission, carrying the same sequence numbers.
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            self.stats.retransmitted.fetch_add(1, Ordering::Relaxed);
            swift_obs::add(swift_obs::Counter::Retransmits, 1);
            copies.push(base + self.plan.retransmit_after);
        } else {
            let mut d = base;
            if rng.next_f64() < self.plan.reorder_prob {
                self.stats.reordered.fetch_add(1, Ordering::Relaxed);
                d += self.plan.reorder_extra;
            }
            copies.push(d);
            if rng.next_f64() < self.plan.duplicate_prob {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                copies.push(d + mul_duration(self.plan.jitter, rng.next_f64()));
            }
        }
        SendFate {
            copies,
            crashed: false,
        }
    }

    /// Records that `rank` consumed a delivered message; returns whether a
    /// crash trigger fired on it (the consumer dies mid-receive).
    pub fn on_delivery(&self, rank: Rank) -> bool {
        let count = self.delivery_counts[rank].fetch_add(1, Ordering::SeqCst) + 1;
        for (i, trig) in self.plan.crashes.iter().enumerate() {
            if let CrashTrigger::AtNthDelivery { rank: r, n } = *trig {
                if r == rank && count >= n && self.fire_crash(i, r) {
                    return true;
                }
            }
        }
        false
    }

    /// Workers report iteration progress here so `AtIteration` triggers
    /// can fire. Returns whether this rank's machine was just killed.
    pub fn note_iteration(&self, rank: Rank, iteration: u64) -> bool {
        let mut crashed = false;
        for (i, trig) in self.plan.crashes.iter().enumerate() {
            // KillProcess degrades to AtIteration in-process: the fabric
            // cannot SIGKILL a thread, but killing the machine at the
            // same progress point keeps the two backends equivalent.
            let (r, k) = match *trig {
                CrashTrigger::AtIteration { rank, iteration } => (rank, iteration),
                CrashTrigger::KillProcess { rank, iteration } => (rank, iteration),
                _ => continue,
            };
            if r == rank && iteration >= k && self.fire_crash(i, r) {
                crashed = true;
            }
        }
        crashed
    }

    /// If `rank` is inside an injected stall, returns when it ends. Both
    /// the communicator (to freeze traffic) and the heartbeat publisher
    /// (to starve the lease) consult this.
    pub fn stalled_until(&self, rank: Rank) -> Option<Instant> {
        if self.plan.stalls.is_empty() {
            return None;
        }
        let sent = self.send_counts[rank].load(Ordering::SeqCst);
        let now = self.clock.now();
        let mut ends = self.stall_ends.lock();
        for (i, spec) in self.plan.stalls.iter().enumerate() {
            if spec.rank != rank {
                continue;
            }
            match ends[i] {
                Some(end) if now < end => return Some(end),
                Some(_) => {}
                None if sent >= spec.after_sends => {
                    let end = now + spec.duration;
                    ends[i] = Some(end);
                    self.stats.stalls_served.fetch_add(1, Ordering::Relaxed);
                    return Some(end);
                }
                None => {}
            }
        }
        None
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            delayed: self.stats.delayed.load(Ordering::Relaxed),
            reordered: self.stats.reordered.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            retransmitted: self.stats.retransmitted.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            stalls_served: self.stats.stalls_served.load(Ordering::Relaxed),
            crashes_fired: self.stats.crashes_fired.load(Ordering::Relaxed),
        }
    }

    /// Fires crash trigger `i` on `rank`'s machine exactly once.
    fn fire_crash(&self, i: usize, rank: Rank) -> bool {
        if self.crash_fired[i].swap(true, Ordering::SeqCst) {
            return false;
        }
        let machine = self.fc.topology().machine_of(rank);
        self.fc.kill_machine(machine);
        self.stats.crashes_fired.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// Per-message deterministic RNG: SplitMix64 seeded by hashing
/// `(seed, src, dst, link_seq)`.
struct MsgRng {
    state: u64,
}

impl MsgRng {
    fn new(seed: u64, src: Rank, dst: Rank, link_seq: u64) -> Self {
        let mut h = 0xcbf29ce484222325u64 ^ seed;
        for v in [src as u64, dst as u64, link_seq] {
            h = (h ^ v).wrapping_mul(0x100000001b3);
        }
        MsgRng { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn mul_duration(d: Duration, f: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn injector(plan: FaultPlan) -> Arc<FaultInjector> {
        FaultInjector::new(plan, FailureController::new(Topology::uniform(2, 2)))
    }

    #[test]
    fn fates_are_deterministic_per_message() {
        let plan = FaultPlan::chaos(42);
        let a = injector(plan.clone());
        let b = injector(plan);
        for seq in 0..200 {
            assert_eq!(a.on_send(0, 1, seq), b.on_send(0, 1, seq), "seq {seq}");
        }
    }

    #[test]
    fn different_seeds_give_different_fates() {
        let a = injector(FaultPlan::chaos(1));
        let b = injector(FaultPlan::chaos(2));
        let diff = (0..100)
            .filter(|&s| a.on_send(0, 1, s) != b.on_send(0, 1, s))
            .count();
        assert!(diff > 0, "seeds 1 and 2 produced identical fates");
    }

    #[test]
    fn empty_plan_is_transparent() {
        let inj = injector(FaultPlan::new(7));
        let fate = inj.on_send(0, 1, 0);
        assert_eq!(
            fate,
            SendFate {
                copies: vec![Duration::ZERO],
                crashed: false
            }
        );
        assert_eq!(inj.stats().delayed, 0);
    }

    #[test]
    fn drop_yields_single_late_copy() {
        let plan = FaultPlan::new(3).with_drops(1.0, Duration::from_millis(5));
        let inj = injector(plan);
        let fate = inj.on_send(0, 1, 0);
        assert_eq!(fate.copies.len(), 1);
        assert!(fate.copies[0] >= Duration::from_millis(5));
        let s = inj.stats();
        assert_eq!((s.dropped, s.retransmitted), (1, 1));
    }

    #[test]
    fn duplicate_yields_two_copies_same_stream_position() {
        let plan = FaultPlan::new(3)
            .with_duplicates(1.0)
            .with_delay(Duration::ZERO, Duration::from_micros(50));
        let inj = injector(plan);
        let fate = inj.on_send(0, 1, 0);
        assert_eq!(fate.copies.len(), 2);
        assert_eq!(inj.stats().duplicated, 1);
    }

    #[test]
    fn nth_send_trigger_kills_whole_machine_once() {
        let fc = FailureController::new(Topology::uniform(2, 2));
        let inj = FaultInjector::new(
            FaultPlan::new(0).with_crash(CrashTrigger::AtNthSend { rank: 2, n: 3 }),
            fc.clone(),
        );
        assert!(!inj.on_send(2, 0, 0).crashed);
        assert!(!inj.on_send(2, 0, 1).crashed);
        let fate = inj.on_send(2, 0, 2);
        assert!(fate.crashed && fate.copies.is_empty());
        // Whole machine 1 (ranks 2, 3) is down; trigger is one-shot.
        assert!(fc.is_dead(2) && fc.is_dead(3));
        assert!(!inj.on_send(2, 0, 3).crashed);
        assert_eq!(inj.stats().crashes_fired, 1);
    }

    #[test]
    fn iteration_trigger_fires_at_or_after_threshold() {
        let fc = FailureController::new(Topology::uniform(4, 1));
        let inj = FaultInjector::new(
            FaultPlan::new(0).with_crash(CrashTrigger::AtIteration {
                rank: 1,
                iteration: 5,
            }),
            fc.clone(),
        );
        assert!(!inj.note_iteration(1, 4));
        assert!(!inj.note_iteration(0, 9));
        assert!(inj.note_iteration(1, 6));
        assert!(fc.is_dead(1));
    }

    #[test]
    fn stall_activates_after_send_threshold_and_expires() {
        let inj = injector(FaultPlan::new(0).with_stall(1, 2, Duration::from_millis(20)));
        assert!(inj.stalled_until(1).is_none());
        inj.on_send(1, 0, 0);
        inj.on_send(1, 0, 1);
        let end = inj.stalled_until(1).expect("stall should be active");
        assert!(end > Instant::now());
        assert!(inj.stalled_until(0).is_none());
        std::thread::sleep(Duration::from_millis(25));
        assert!(inj.stalled_until(1).is_none(), "stall must expire");
        assert_eq!(inj.stats().stalls_served, 1);
    }
}
