//! Cluster topology: which worker ranks live on which machine.
//!
//! SWIFT's logging policy is topology-driven (§5.1): only *inter-machine*
//! traffic is logged, because machines fail as a unit while individual
//! GPUs rarely do. The topology answers exactly that question.

/// A worker rank (one GPU in the paper's terms). The canonical
/// definition lives in the shared typed-ID module ([`swift_obs::ids`])
/// so every crate speaks the same vocabulary.
pub use swift_obs::Rank;

/// A machine identifier.
pub type MachineId = usize;

/// Static mapping of ranks onto machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `machine_of[rank]` = machine hosting that rank.
    machine_of: Vec<MachineId>,
    /// `ranks_of[machine]` = ranks hosted there, ascending.
    ranks_of: Vec<Vec<Rank>>,
}

impl Topology {
    /// `machines` machines with `per_machine` consecutive ranks each
    /// (rank `r` lives on machine `r / per_machine`), matching the paper's
    /// DGX layout.
    pub fn uniform(machines: usize, per_machine: usize) -> Self {
        assert!(machines >= 1 && per_machine >= 1);
        let machine_of = (0..machines * per_machine)
            .map(|r| r / per_machine)
            .collect();
        let ranks_of = (0..machines)
            .map(|m| (m * per_machine..(m + 1) * per_machine).collect())
            .collect();
        Topology {
            machine_of,
            ranks_of,
        }
    }

    /// Arbitrary layout: `ranks_of[m]` lists machine `m`'s ranks.
    pub fn from_groups(groups: Vec<Vec<Rank>>) -> Self {
        let world: usize = groups.iter().map(|g| g.len()).sum();
        let mut machine_of = vec![usize::MAX; world];
        for (m, ranks) in groups.iter().enumerate() {
            for &r in ranks {
                assert!(r < world, "rank {r} out of range");
                assert_eq!(machine_of[r], usize::MAX, "rank {r} assigned twice");
                machine_of[r] = m;
            }
        }
        assert!(
            machine_of.iter().all(|&m| m != usize::MAX),
            "unassigned rank"
        );
        Topology {
            machine_of,
            ranks_of: groups,
        }
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.machine_of.len()
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.ranks_of.len()
    }

    /// Machine hosting `rank`.
    pub fn machine_of(&self, rank: Rank) -> MachineId {
        self.machine_of[rank]
    }

    /// Ranks on `machine`.
    pub fn ranks_of(&self, machine: MachineId) -> &[Rank] {
        &self.ranks_of[machine]
    }

    /// True when the two ranks live on different machines — the traffic
    /// SWIFT logs.
    pub fn is_inter_machine(&self, a: Rank, b: Rank) -> bool {
        self.machine_of[a] != self.machine_of[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout() {
        let t = Topology::uniform(2, 4);
        assert_eq!(t.world_size(), 8);
        assert_eq!(t.num_machines(), 2);
        assert_eq!(t.machine_of(3), 0);
        assert_eq!(t.machine_of(4), 1);
        assert_eq!(t.ranks_of(1), &[4, 5, 6, 7]);
        assert!(t.is_inter_machine(3, 4));
        assert!(!t.is_inter_machine(0, 3));
    }

    #[test]
    fn custom_groups() {
        let t = Topology::from_groups(vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(t.machine_of(2), 0);
        assert_eq!(t.machine_of(1), 1);
        assert!(t.is_inter_machine(0, 1));
        assert!(!t.is_inter_machine(0, 2));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_rank_rejected() {
        Topology::from_groups(vec![vec![0, 1], vec![1]]);
    }
}
