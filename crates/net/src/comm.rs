//! Point-to-point and collective communication over in-process channels,
//! with NCCL-style asynchronous failure propagation.
//!
//! Each rank owns a [`Comm`] handle. Sends are non-blocking (unbounded
//! channels); receives block with a poll loop that doubles as the failure
//! detector: while waiting, the receiver checks the [`FailureController`]
//! — the analogue of the paper's background thread polling
//! `ncclCommGetAsyncError()` (§6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use swift_tensor::{decode_slice, encode, Tensor};

use crate::failure::FailureController;
use crate::topology::Rank;

/// Tag bit reserved for internal collective sequencing; user tags must
/// leave it clear.
pub const COLLECTIVE_BIT: u64 = 1 << 63;

/// A communication failure, observed NCCL-style at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer rank is dead (fail-stop).
    PeerFailed { rank: Rank },
    /// This rank itself was killed; the worker must unwind (its volatile
    /// state is considered lost).
    SelfKilled,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
            CommError::SelfKilled => write!(f, "this rank was killed"),
        }
    }
}

impl std::error::Error for CommError {}

/// One in-flight message.
#[derive(Debug, Clone)]
struct Message {
    src: Rank,
    tag: u64,
    payload: Bytes,
}

/// Shared channel fabric: one inbox per rank, senders replaceable so a
/// replacement worker can re-join under the same rank. Opaque to users;
/// obtained from [`build_comms`] and passed to [`respawn_comm`].
pub struct Fabric {
    senders: RwLock<Vec<Sender<Message>>>,
}

/// A per-rank communicator handle.
pub struct Comm {
    rank: Rank,
    world: usize,
    fabric: Arc<Fabric>,
    inbox: Receiver<Message>,
    /// Out-of-order stash for messages whose (src, tag) didn't match.
    stash: Vec<Message>,
    fc: Arc<FailureController>,
    coll_seq: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

/// Poll interval while blocked in `recv` (the failure-detector cadence).
const POLL: Duration = Duration::from_micros(200);

/// Builds the fabric and one `Comm` per rank.
pub fn build_comms(world: usize, fc: Arc<FailureController>) -> (Arc<Fabric>, Vec<Comm>) {
    let mut senders = Vec::with_capacity(world);
    let mut receivers = Vec::with_capacity(world);
    for _ in 0..world {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let fabric = Arc::new(Fabric { senders: RwLock::new(senders) });
    let comms = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            world,
            fabric: fabric.clone(),
            inbox,
            stash: Vec::new(),
            fc: fc.clone(),
            coll_seq: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        })
        .collect();
    (fabric, comms)
}

/// Creates a fresh `Comm` for `rank` on an existing fabric (a replacement
/// worker joining after a failure, §3). Messages queued for the dead
/// predecessor are discarded with its receiver.
pub fn respawn_comm(
    fabric: &Arc<Fabric>,
    rank: Rank,
    world: usize,
    fc: Arc<FailureController>,
) -> Comm {
    let (s, r) = unbounded();
    fabric.senders.write()[rank] = s;
    Comm {
        rank,
        world,
        fabric: fabric.clone(),
        inbox: r,
        stash: Vec::new(),
        fc,
        coll_seq: AtomicU64::new(0),
        bytes_sent: AtomicU64::new(0),
        bytes_received: AtomicU64::new(0),
    }
}

impl Comm {
    /// This communicator's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// The failure controller this communicator observes.
    pub fn failure_controller(&self) -> &Arc<FailureController> {
        &self.fc
    }

    fn check_self(&self) -> Result<(), CommError> {
        if self.fc.is_dead(self.rank) {
            Err(CommError::SelfKilled)
        } else {
            Ok(())
        }
    }

    /// Sends raw bytes to `dst` with a user tag (must not set
    /// [`COLLECTIVE_BIT`]).
    pub fn send_bytes(&self, dst: Rank, tag: u64, payload: Bytes) -> Result<(), CommError> {
        self.check_self()?;
        if self.fc.is_dead(dst) {
            return Err(CommError::PeerFailed { rank: dst });
        }
        self.bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
        let msg = Message { src: self.rank, tag, payload };
        // A send can still race with the peer dying; that surfaces on the
        // peer's side (or on our next call), matching async NCCL errors.
        let _ = self.fabric.senders.read()[dst].send(msg);
        Ok(())
    }

    /// Receives raw bytes from `src` with the given tag, blocking until
    /// the message arrives or a failure is detected.
    pub fn recv_bytes(&mut self, src: Rank, tag: u64) -> Result<Bytes, CommError> {
        loop {
            self.check_self()?;
            if let Some(pos) = self.stash.iter().position(|m| m.src == src && m.tag == tag) {
                let payload = self.stash.swap_remove(pos).payload;
                self.bytes_received.fetch_add(payload.len() as u64, Ordering::Relaxed);
                return Ok(payload);
            }
            match self.inbox.recv_timeout(POLL) {
                Ok(m) if m.src == src && m.tag == tag => {
                    self.bytes_received.fetch_add(m.payload.len() as u64, Ordering::Relaxed);
                    return Ok(m.payload);
                }
                Ok(m) => self.stash.push(m),
                Err(RecvTimeoutError::Timeout) => {
                    // Failure detector: the sender died and nothing is
                    // buffered for us → the message will never come.
                    if self.fc.is_dead(src) {
                        return Err(CommError::PeerFailed { rank: src });
                    }
                    // Global failure flag (§6): some *other* machine died.
                    // Our sender may be alive but itself blocked on the
                    // dead machine, so this receive would hang — abort,
                    // reporting the actually-dead rank, exactly like
                    // workers aborting their NCCL communicators when the
                    // KV-store flag is set.
                    if self.fc.failure_detected() {
                        if self.fc.is_dead(self.rank) {
                            return Err(CommError::SelfKilled);
                        }
                        let rank = self
                            .fc
                            .dead_ranks()
                            .into_iter()
                            .find(|&r| r != self.rank)
                            .unwrap_or(src);
                        return Err(CommError::PeerFailed { rank });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerFailed { rank: src });
                }
            }
        }
    }

    /// Sends a tensor (encoded on the wire).
    pub fn send_tensor(&self, dst: Rank, tag: u64, t: &Tensor) -> Result<(), CommError> {
        self.send_bytes(dst, tag, encode(t))
    }

    /// Receives a tensor.
    pub fn recv_tensor(&mut self, src: Rank, tag: u64) -> Result<Tensor, CommError> {
        let b = self.recv_bytes(src, tag)?;
        Ok(decode_slice(&b).expect("malformed tensor payload"))
    }

    fn next_coll_tag(&self) -> u64 {
        COLLECTIVE_BIT | self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Current collective sequence number. Collectives only match between
    /// communicators whose sequences agree; after a failure, survivors and
    /// the (fresh, sequence-zero) replacement must resynchronize — see the
    /// recovery fence in `swift-core`.
    pub fn coll_seq(&self) -> u64 {
        self.coll_seq.load(Ordering::SeqCst)
    }

    /// Overwrites the collective sequence number (recovery fence only).
    pub fn set_coll_seq(&self, v: u64) {
        self.coll_seq.store(v, Ordering::SeqCst);
    }

    /// Bytes sent through this communicator (payloads only).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes received through this communicator (payloads only).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Discards every buffered inbound message (stash + channel). Called
    /// during the recovery fence: pre-failure in-flight traffic must not
    /// satisfy post-recovery receives.
    pub fn purge(&mut self) {
        self.stash.clear();
        while self.inbox.try_recv().is_ok() {}
    }

    /// Barrier among `participants` (must be called by all of them, in the
    /// same collective order). Root is the smallest rank.
    pub fn barrier_among(&mut self, participants: &[Rank]) -> Result<(), CommError> {
        let tag = self.next_coll_tag();
        let root = *participants.iter().min().expect("empty participant set");
        if self.rank == root {
            for &r in participants.iter().filter(|&&r| r != root) {
                self.recv_bytes(r, tag)?;
            }
            for &r in participants.iter().filter(|&&r| r != root) {
                self.send_bytes(r, tag, Bytes::new())?;
            }
        } else {
            self.send_bytes(root, tag, Bytes::new())?;
            self.recv_bytes(root, tag)?;
        }
        Ok(())
    }

    /// Full-world barrier.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let all: Vec<Rank> = (0..self.world).collect();
        self.barrier_among(&all)
    }

    /// Broadcast raw bytes from `root` among `participants`.
    pub fn broadcast_bytes_among(
        &mut self,
        participants: &[Rank],
        root: Rank,
        data: Option<Bytes>,
    ) -> Result<Bytes, CommError> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let payload = data.expect("root must supply the broadcast payload");
            for &r in participants.iter().filter(|&&r| r != root) {
                self.send_bytes(r, tag, payload.clone())?;
            }
            Ok(payload)
        } else {
            self.recv_bytes(root, tag)
        }
    }

    /// Broadcast a tensor from `root` among `participants` (used by
    /// replication-based recovery to ship the surviving replica's state).
    pub fn broadcast_tensor_among(
        &mut self,
        participants: &[Rank],
        root: Rank,
        t: Option<&Tensor>,
    ) -> Result<Tensor, CommError> {
        let b = self.broadcast_bytes_among(participants, root, t.map(encode))?;
        Ok(decode_slice(&b).expect("malformed tensor payload"))
    }

    /// Deterministic all-reduce (sum) among `participants`: the smallest
    /// rank gathers contributions in ascending rank order, sums them, and
    /// broadcasts the result. Rank order fixes the floating-point
    /// reduction order, so every run produces bit-identical results —
    /// required for replay determinism (§6).
    pub fn allreduce_sum_among(
        &mut self,
        participants: &[Rank],
        t: &Tensor,
    ) -> Result<Tensor, CommError> {
        let tag = self.next_coll_tag();
        let mut sorted: Vec<Rank> = participants.to_vec();
        sorted.sort_unstable();
        let root = sorted[0];
        if self.rank == root {
            let mut acc = t.clone();
            for &r in sorted.iter().skip(1) {
                let contrib = {
                    let b = self.recv_bytes(r, tag)?;
                    decode_slice(&b).expect("malformed tensor payload")
                };
                acc.add_inplace(&contrib);
            }
            for &r in sorted.iter().skip(1) {
                self.send_bytes(r, tag, encode(&acc))?;
            }
            Ok(acc)
        } else {
            self.send_bytes(root, tag, encode(t))?;
            let b = self.recv_bytes(root, tag)?;
            Ok(decode_slice(&b).expect("malformed tensor payload"))
        }
    }

    /// Full-world deterministic all-reduce (sum).
    pub fn allreduce_sum(&mut self, t: &Tensor) -> Result<Tensor, CommError> {
        let all: Vec<Rank> = (0..self.world).collect();
        self.allreduce_sum_among(&all, t)
    }

    /// Ring all-reduce (sum): reduce-scatter then all-gather over the ring
    /// of `participants`. Deterministic (the ring fixes the reduction
    /// order) but with a different rounding order than
    /// [`allreduce_sum_among`](Comm::allreduce_sum_among); offered for bandwidth-optimal synchronization
    /// at scale.
    pub fn ring_allreduce_among(
        &mut self,
        participants: &[Rank],
        t: &Tensor,
    ) -> Result<Tensor, CommError> {
        let mut ring: Vec<Rank> = participants.to_vec();
        ring.sort_unstable();
        let n = ring.len();
        if n == 1 {
            return Ok(t.clone());
        }
        let me = ring.iter().position(|&r| r == self.rank).expect("not a participant");
        let next = ring[(me + 1) % n];
        let prev = ring[(me + n - 1) % n];
        let numel = t.numel();
        // Chunk boundaries: chunk c covers [floor(c·numel/n), floor((c+1)·numel/n)).
        let bounds: Vec<usize> = (0..=n).map(|c| c * numel / n).collect();
        let mut data = t.data().to_vec();
        let tag_base = self.next_coll_tag();

        // Reduce-scatter: after n−1 steps, chunk c is fully summed at rank
        // index (c+1) mod n.
        for step in 0..n - 1 {
            let send_c = (me + n - step) % n;
            let recv_c = (me + n - 1 - step) % n;
            let tag = tag_base ^ (step as u64) << 32;
            let chunk = Bytes::copy_from_slice(bytemuck_f32(&data[bounds[send_c]..bounds[send_c + 1]]));
            self.send_bytes(next, tag, chunk)?;
            let incoming = self.recv_bytes(prev, tag)?;
            let vals = f32_from_bytes(&incoming);
            for (dst, v) in data[bounds[recv_c]..bounds[recv_c + 1]].iter_mut().zip(vals) {
                *dst += v;
            }
        }
        // All-gather: circulate the finished chunks.
        for step in 0..n - 1 {
            let send_c = (me + 1 + n - step) % n;
            let recv_c = (me + n - step) % n;
            let tag = tag_base ^ (0x100 + step as u64) << 32;
            let chunk = Bytes::copy_from_slice(bytemuck_f32(&data[bounds[send_c]..bounds[send_c + 1]]));
            self.send_bytes(next, tag, chunk)?;
            let incoming = self.recv_bytes(prev, tag)?;
            let vals = f32_from_bytes(&incoming);
            for (dst, v) in data[bounds[recv_c]..bounds[recv_c + 1]].iter_mut().zip(vals) {
                *dst = v;
            }
        }
        Ok(Tensor::from_vec(t.shape().clone(), data))
    }

    /// Gathers one `u64` from every participant at every participant
    /// (used to reach consensus on the pre-failure iteration, §6
    /// "Update-undo" in pipeline parallelism). Returns values in
    /// ascending-rank order.
    pub fn all_gather_u64_among(
        &mut self,
        participants: &[Rank],
        value: u64,
    ) -> Result<Vec<u64>, CommError> {
        let tag = self.next_coll_tag();
        let mut sorted: Vec<Rank> = participants.to_vec();
        sorted.sort_unstable();
        let root = sorted[0];
        if self.rank == root {
            let mut vals = vec![value];
            for &r in sorted.iter().skip(1) {
                let b = self.recv_bytes(r, tag)?;
                vals.push(u64::from_le_bytes(b[..8].try_into().unwrap()));
            }
            let mut payload = Vec::with_capacity(8 * vals.len());
            for v in &vals {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            let payload = Bytes::from(payload);
            for &r in sorted.iter().skip(1) {
                self.send_bytes(r, tag, payload.clone())?;
            }
            Ok(vals)
        } else {
            self.send_bytes(root, tag, Bytes::copy_from_slice(&value.to_le_bytes()))?;
            let b = self.recv_bytes(root, tag)?;
            Ok(b.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
        }
    }
}

fn bytemuck_f32(v: &[f32]) -> &[u8] {
    // Safety: f32 and u8 have no invalid bit patterns; alignment of u8 is 1.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 4) }
}

fn f32_from_bytes(b: &[u8]) -> impl Iterator<Item = f32> + '_ {
    b.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap()))
}
