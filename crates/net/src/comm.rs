//! Point-to-point and collective communication with NCCL-style
//! asynchronous failure propagation, generic over the fabric.
//!
//! Each rank owns a [`Comm`] handle over a [`Transport`] backend — the
//! in-process channel fabric by default, or one OS process per rank over
//! Unix sockets ([`crate::socket`]). Sends are non-blocking; receives
//! block with a poll loop that doubles as the failure detector — the
//! analogue of the paper's background thread polling
//! `ncclCommGetAsyncError()` (§6). Detection uses only *observable*
//! signals: severed fabric links (the victim's NIC going dark), channel
//! disconnects, and the key-value failure state published by other
//! detectors ([`crate::detector`]). The [`FailureController`] is
//! consulted for exactly one thing: whether *this* rank has been killed,
//! which is the mechanism by which the crashed process ceases to run.
//!
//! Messages carry three pieces of fault armor:
//! - a per-`(src, dst, tag)` stream sequence number (`tag_seq`), giving
//!   in-order, exactly-once delivery under injected reordering, drops
//!   (repaired by retransmission) and duplicates;
//! - the sender's failure *generation*: receivers drop traffic from
//!   generations older than their own, so delayed pre-failure messages
//!   can never satisfy post-recovery receives. Stream counters are
//!   per-generation on both sides — the recovery fence rolls every
//!   surviving and replacement stream back to position zero, which is
//!   the only contract a freshly-exec'd replacement *process* can keep;
//! - a `deliver_at` timestamp, the injector's delivery-delay lever.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use swift_obs::Epoch;
use swift_tensor::{decode_slice, encode, Tensor};

use crate::clock::{self, Clock};
use crate::detector;
use crate::failure::FailureController;
use crate::faults::{FaultInjector, SendFate};
use crate::kv::KvStore;
use crate::topology::Rank;
use crate::trace::Tracer;
use crate::transport::{ChannelTransport, Frame, RecvEvent, TransmitOutcome, Transport};

/// Tag bit reserved for internal collective sequencing; user tags must
/// leave it clear.
pub const COLLECTIVE_BIT: u64 = 1 << 63;

/// A communication failure, observed NCCL-style at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer rank is dead (fail-stop).
    PeerFailed { rank: Rank },
    /// This rank itself was killed; the worker must unwind (its volatile
    /// state is considered lost).
    SelfKilled,
    /// Shared coordination state was malformed (e.g. an unparsable value
    /// in the key-value store) — a protocol bug, not a rank failure.
    Protocol { detail: String },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
            CommError::SelfKilled => write!(f, "this rank was killed"),
            CommError::Protocol { detail } => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Sender-side stream state for one `(src, dst)` link, scoped to one
/// failure generation: the first transmit at a newer generation clears
/// the per-tag counters, so every stream restarts from position zero
/// after a recovery fence — matching the receiver, whose cursors reset
/// when it synchronizes its generation. (`link_seq` stays monotonic
/// across generations; it keys the injector's RNG.)
#[derive(Debug, Default)]
struct LinkState {
    /// Messages ever pushed onto this link (keys the injector's RNG).
    link_seq: u64,
    /// Generation the per-tag counters belong to.
    generation: u64,
    /// Next sequence number per tag, within `generation`.
    tag_seqs: HashMap<u64, u64>,
}

/// Shared channel fabric: one inbox per rank, senders replaceable so a
/// replacement worker can re-join under the same rank. Opaque to users;
/// obtained from [`build_comms`] and passed to [`respawn_comm`].
///
/// The fabric also owns the *observable* per-rank link state: killing a
/// machine severs its ranks' links (registered as a
/// [`FailureController::on_transition`] observer), which survivors see as
/// connection errors — no ground-truth liveness is consulted.
pub struct Fabric {
    senders: RwLock<Vec<Sender<Frame>>>,
    /// Per-rank "NIC is reachable".
    link_up: Vec<AtomicBool>,
    /// Sender-side stream counters.
    links: Mutex<HashMap<(Rank, Rank), LinkState>>,
    /// Optional fault injector (the adversary).
    injector: RwLock<Option<Arc<FaultInjector>>>,
    /// Optional protocol tracer (the observer for `swift-verify`).
    tracer: RwLock<Option<Arc<Tracer>>>,
    /// Time source for `deliver_at` stamping (virtual under `swift-mc`).
    clock: RwLock<Arc<dyn Clock>>,
}

impl Fabric {
    /// Installs a fault injector; all subsequent traffic passes through
    /// it. Call before spawning workers for full coverage.
    pub fn install_injector(&self, inj: Arc<FaultInjector>) {
        *self.injector.write() = Some(inj);
    }

    /// The installed injector, if any.
    pub fn injector(&self) -> Option<Arc<FaultInjector>> {
        self.injector.read().clone()
    }

    /// Installs a protocol tracer; all subsequent sends, deliveries,
    /// epoch bumps and purges are recorded with vector clocks. Install
    /// before spawning workers for a complete trace.
    pub fn install_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.write() = Some(tracer);
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.read().clone()
    }

    /// Replaces the fabric's time source. The model checker installs a
    /// [`VirtualClock`](crate::clock::VirtualClock) before spawning
    /// workers so injected delivery delays mature on schedule points
    /// instead of wall time.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.write() = clock;
    }

    /// Whether `rank`'s link is up (the observable liveness signal).
    pub fn link_up(&self, rank: Rank) -> bool {
        self.link_up[rank].load(Ordering::SeqCst)
    }

    /// Raises or severs `rank`'s link.
    pub fn set_link(&self, rank: Rank, up: bool) {
        self.link_up[rank].store(up, Ordering::SeqCst);
    }

    /// Forgets sender-side stream state for every link *into* `rank` — a
    /// replacement worker starts with an empty inbox and expects every
    /// stream from position zero.
    fn reset_links_into(&self, rank: Rank) {
        self.links.lock().retain(|&(_, dst), _| dst != rank);
    }

    /// Stamps sequence numbers, consults the injector for the message's
    /// fate, and enqueues the surviving copies.
    pub(crate) fn transmit(
        &self,
        src: Rank,
        dst: Rank,
        generation: u64,
        tag: u64,
        payload: Bytes,
    ) -> TransmitOutcome {
        let (copies, tag_seq) = {
            let mut links = self.links.lock();
            let ls = links.entry((src, dst)).or_default();
            let link_seq = ls.link_seq;
            ls.link_seq += 1;
            if generation > ls.generation {
                // First transmit of a new generation: the recovery fence
                // rolled both ends of every stream back to zero.
                ls.generation = generation;
                ls.tag_seqs.clear();
            }
            let seq = ls.tag_seqs.entry(tag).or_insert(0);
            let tag_seq = *seq;
            *seq += 1;
            let fate = match self.injector.read().as_ref() {
                Some(inj) => inj.on_send(src, dst, link_seq),
                None => SendFate {
                    copies: vec![Duration::ZERO],
                    crashed: false,
                },
            };
            if fate.crashed {
                return TransmitOutcome::SenderCrashed;
            }
            (fate.copies, tag_seq)
        };
        let vc = self
            .tracer
            .read()
            .as_ref()
            .map(|t| Arc::new(t.on_send(src, dst, tag, tag_seq, generation)));
        let sender = self.senders.read()[dst].clone();
        let now = self.clock.read().now();
        for delay in copies {
            let msg = Frame {
                src,
                tag,
                tag_seq,
                generation,
                deliver_at: now + delay,
                payload: payload.clone(),
                vc: vc.clone(),
            };
            if sender.send(msg).is_err() {
                return TransmitOutcome::PeerGone;
            }
        }
        TransmitOutcome::Sent
    }
}

/// A per-rank communicator handle, generic over the [`Transport`]
/// backend carrying its frames.
pub struct Comm {
    rank: Rank,
    world: usize,
    transport: Box<dyn Transport>,
    /// Out-of-order stash for messages that arrived early (wrong stream,
    /// future sequence number, or injected delay not yet elapsed).
    stash: Vec<Frame>,
    /// Next expected `tag_seq` per `(src, tag)` stream, within the
    /// current generation.
    expected: HashMap<(Rank, u64), u64>,
    fc: Arc<FailureController>,
    kv: KvStore,
    /// Failure generation this communicator has synchronized to
    /// (advanced by the recovery fence). Outgoing traffic is stamped with
    /// it; inbound traffic from older generations is fenced.
    generation: AtomicU64,
    coll_seq: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    /// Time source for receive deadlines and stall serving (virtual
    /// under `swift-mc`, wall-clock everywhere else).
    clock: Arc<dyn Clock>,
}

/// Poll interval while blocked in `recv` (the failure-detector cadence).
const POLL: Duration = Duration::from_micros(200);

/// Builds the fabric and one `Comm` per rank. The failure controller's
/// kill/replace transitions are wired to the fabric's link state, which
/// is how an injected crash becomes observable to survivors.
pub fn build_comms(
    world: usize,
    fc: Arc<FailureController>,
    kv: KvStore,
) -> (Arc<Fabric>, Vec<Comm>) {
    let mut senders = Vec::with_capacity(world);
    let mut receivers = Vec::with_capacity(world);
    for _ in 0..world {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let fabric = Arc::new(Fabric {
        senders: RwLock::new(senders),
        link_up: (0..world).map(|_| AtomicBool::new(true)).collect(),
        links: Mutex::new(HashMap::new()),
        injector: RwLock::new(None),
        tracer: RwLock::new(None),
        clock: RwLock::new(clock::system()),
    });
    {
        let fabric = fabric.clone();
        fc.on_transition(move |ranks, alive| {
            for &r in ranks {
                fabric.set_link(r, alive);
            }
        });
    }
    let epoch = detector::failure_epoch(&kv).get();
    let comms = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| {
            Comm::over_transport(
                rank,
                world,
                Box::new(ChannelTransport::new(fabric.clone(), rank, inbox)),
                fc.clone(),
                kv.clone(),
                epoch,
            )
        })
        .collect();
    (fabric, comms)
}

/// Creates a fresh `Comm` for `rank` on an existing fabric (a replacement
/// worker joining after a failure, §3). Messages queued for the dead
/// predecessor are discarded with its receiver, sender-side streams into
/// the rank restart from zero, and the communicator joins at the current
/// failure epoch.
pub fn respawn_comm(
    fabric: &Arc<Fabric>,
    rank: Rank,
    world: usize,
    fc: Arc<FailureController>,
    kv: KvStore,
) -> Comm {
    let (s, r) = unbounded();
    fabric.senders.write()[rank] = s;
    fabric.reset_links_into(rank);
    let epoch = detector::failure_epoch(&kv).get();
    Comm::over_transport(
        rank,
        world,
        Box::new(ChannelTransport::new(fabric.clone(), rank, r)),
        fc,
        kv,
        epoch,
    )
}

impl Comm {
    /// Builds a communicator over an arbitrary transport backend, joining
    /// at failure `generation`. The in-process paths use [`build_comms`];
    /// process workers wrap a socket transport here.
    pub fn over_transport(
        rank: Rank,
        world: usize,
        transport: Box<dyn Transport>,
        fc: Arc<FailureController>,
        kv: KvStore,
        generation: u64,
    ) -> Comm {
        Comm {
            rank,
            world,
            transport,
            stash: Vec::new(),
            expected: HashMap::new(),
            fc,
            kv,
            generation: AtomicU64::new(generation),
            coll_seq: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            clock: clock::system(),
        }
    }

    /// Replaces this communicator's time source (see
    /// [`Fabric::set_clock`]); install before first use.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// This communicator's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// The failure controller this communicator unwinds through (the
    /// injection mechanism — not a detection input).
    pub fn failure_controller(&self) -> &Arc<FailureController> {
        &self.fc
    }

    /// The key-value store shared with the detector.
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// The fault injector installed on the transport, if any.
    pub fn injector(&self) -> Option<Arc<FaultInjector>> {
        self.transport.injector()
    }

    /// Whether `rank`'s link is currently believed up — the cheap,
    /// non-blocking liveness signal (no probing, no declaration).
    /// Callers fanning a result out to several peers use it to serve
    /// live links before touching a dark one (whose send *declares* the
    /// failure, fencing all later sends behind the declared epoch).
    pub fn peer_link_up(&self, rank: Rank) -> bool {
        self.transport.link_up(rank)
    }

    /// The mechanism of fail-stop: a killed rank's next communication
    /// unwinds. This is the *only* ground-truth liveness read in the
    /// communication path, and it is strictly self-directed. Public so
    /// that KV-polling recovery waits can serve the same fail-stop
    /// semantics a real dead process would get for free.
    pub fn check_self(&self) -> Result<(), CommError> {
        if self.fc.is_dead(self.rank) {
            Err(CommError::SelfKilled)
        } else {
            Ok(())
        }
    }

    /// Serves an injected stall: the whole rank freezes until it ends
    /// (heartbeats freeze with it — see [`crate::detector::Heartbeat`]).
    fn serve_stall(&self) {
        if let Some(inj) = self.transport.injector() {
            while let Some(end) = inj.stalled_until(self.rank) {
                let now = self.clock.now();
                if end <= now {
                    break;
                }
                self.clock.sleep(end - now);
            }
        }
    }

    /// Publishes an observed link failure. Every currently-dark link is
    /// declared in one atomic call, so a simultaneous multi-machine
    /// failure (Appendix B) lands in a *single* epoch bump no matter
    /// which victim a survivor happens to notice first — every observer
    /// then agrees on the resulting epoch.
    fn declare_downed_links(&self, observed: Rank) -> CommError {
        let downed: Vec<Rank> = (0..self.world)
            .filter(|&r| r != self.rank && !self.transport.link_up(r))
            .collect();
        if downed.is_empty() {
            // The link flapped back up (a replacement already joined);
            // report the rank we were blocked on.
            return CommError::PeerFailed { rank: observed };
        }
        detector::declare_failed(&self.kv, &downed);
        let rank = if downed.contains(&observed) {
            observed
        } else {
            downed[0]
        };
        CommError::PeerFailed { rank }
    }

    /// Checks the observable KV failure state (§6: the flag workers poll).
    /// An epoch ahead of ours means a failure we have not yet fenced:
    /// unwind — as ourselves if we are the one declared dead (false
    /// suspicion self-fencing), otherwise reporting a declared-dead peer.
    fn check_failure_state(&self, fallback: Rank) -> Result<(), CommError> {
        let (epoch, dead) = detector::failure_state(&self.kv);
        if epoch.get() > self.generation.load(Ordering::SeqCst) {
            if dead.contains(&self.rank) {
                return Err(CommError::SelfKilled);
            }
            let rank = dead
                .iter()
                .copied()
                .find(|&r| r != self.rank)
                .unwrap_or(fallback);
            return Err(CommError::PeerFailed { rank });
        }
        Ok(())
    }

    /// Sends raw bytes to `dst` with a user tag (must not set
    /// [`COLLECTIVE_BIT`]).
    pub fn send_bytes(&self, dst: Rank, tag: u64, payload: Bytes) -> Result<(), CommError> {
        self.check_self()?;
        self.serve_stall();
        // The stall may have outlived us (or our false suspicion).
        self.check_self()?;
        if !self.transport.link_up(dst) {
            // Connection error: the peer's NIC is dark. Publish what we
            // observed so the rest of the job learns without touching it.
            return Err(self.declare_downed_links(dst));
        }
        self.check_failure_state(dst)?;
        self.bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        // A send can still race with the peer dying; that surfaces on the
        // peer's side (or on our next call), matching async NCCL errors.
        let gen = self.generation.load(Ordering::SeqCst);
        match self.transport.transmit(dst, gen, tag, payload) {
            TransmitOutcome::Sent => Ok(()),
            TransmitOutcome::SenderCrashed => Err(CommError::SelfKilled),
            // The write itself failed (EPIPE on a socket, a dropped
            // channel in-process): the transport already marked the link
            // dark, so declare before unwinding — recovery code derives
            // its namespaces from the declared epoch, and a PeerFailed
            // that precedes the declaration would ack under a stale one.
            TransmitOutcome::PeerGone => Err(self.declare_downed_links(dst)),
        }
    }

    /// Consumes a matched message: advances the stream cursor, counts the
    /// bytes, and gives crash triggers their shot at the consumer.
    fn deliver(&mut self, m: Frame) -> Result<Bytes, CommError> {
        self.expected.insert((m.src, m.tag), m.tag_seq + 1);
        self.bytes_received
            .fetch_add(m.payload.len() as u64, Ordering::Relaxed);
        if let Some(t) = self.transport.tracer() {
            t.on_deliver(
                self.rank,
                m.src,
                m.tag,
                m.tag_seq,
                m.generation,
                self.generation.load(Ordering::SeqCst),
                m.vc.as_deref().map(Vec::as_slice).unwrap_or(&[]),
            );
        }
        if let Some(inj) = self.transport.injector() {
            if inj.on_delivery(self.rank) {
                return Err(CommError::SelfKilled);
            }
        }
        Ok(m.payload)
    }

    /// Receives raw bytes from `src` with the given tag, blocking until
    /// the next in-stream message arrives or a failure is detected.
    ///
    /// Delivery is in-order and exactly-once per `(src, tag)` stream:
    /// reordered messages wait in the stash for their turn, duplicates of
    /// already-consumed sequence numbers are suppressed, and messages
    /// stamped with a pre-recovery generation are fenced — dropped
    /// without touching the cursors, which restart from zero each
    /// generation.
    pub fn recv_bytes(&mut self, src: Rank, tag: u64) -> Result<Bytes, CommError> {
        loop {
            self.check_self()?;
            self.serve_stall();
            let gen = self.generation.load(Ordering::SeqCst);
            let now = self.clock.now();
            // Scan the stash: drop fenced/duplicate traffic, deliver the
            // expected in-stream message if its delay has elapsed, and
            // otherwise note when the earliest candidate matures.
            let mut hit = None;
            let mut matures: Option<Instant> = None;
            let mut i = 0;
            while i < self.stash.len() {
                let m = &self.stash[i];
                if m.generation < gen {
                    // Pre-recovery traffic: fenced. Cursors are
                    // per-generation, so the slot simply vanishes.
                    self.stash.swap_remove(i);
                    continue;
                }
                if m.src == src && m.tag == tag && m.generation == gen {
                    let expected = self.expected.get(&(src, tag)).copied().unwrap_or(0);
                    if m.tag_seq < expected {
                        // Duplicate of an already-consumed message.
                        self.stash.swap_remove(i);
                        continue;
                    }
                    if m.tag_seq == expected {
                        if m.deliver_at <= now {
                            hit = Some(i);
                            break;
                        }
                        matures = Some(matures.map_or(m.deliver_at, |t| t.min(m.deliver_at)));
                    }
                }
                i += 1;
            }
            if let Some(i) = hit {
                let m = self.stash.swap_remove(i);
                return self.deliver(m);
            }
            let wait = matures
                .map(|t| t.saturating_duration_since(now).min(POLL))
                .unwrap_or(POLL)
                .max(Duration::from_micros(10));
            match self.transport.recv_timeout(wait) {
                RecvEvent::Frame(m) => {
                    if m.generation >= gen {
                        self.stash.push(m);
                    }
                    // else: fenced, dropped without cursor movement.
                }
                RecvEvent::Timeout => {
                    // Failure detector, observable signals only. First:
                    // is the sender's link dark (connection error)? The
                    // probe may do real work — a socket backend attempts
                    // a reconnect, so a peer that recovered since its
                    // last failure is not re-declared dead.
                    if !self.transport.probe_link(src) {
                        return Err(self.declare_downed_links(src));
                    }
                    // Second: has anyone declared a failure we have not
                    // fenced? Our sender may be alive but itself blocked
                    // on the dead machine, so this receive would hang —
                    // abort, exactly like workers tearing down their NCCL
                    // communicators when the KV-store flag is set.
                    self.check_failure_state(src)?;
                }
                RecvEvent::Disconnected => {
                    return Err(CommError::PeerFailed { rank: src });
                }
            }
        }
    }

    /// Sends a tensor (encoded on the wire).
    pub fn send_tensor(&self, dst: Rank, tag: u64, t: &Tensor) -> Result<(), CommError> {
        self.send_bytes(dst, tag, encode(t))
    }

    /// Receives a tensor.
    pub fn recv_tensor(&mut self, src: Rank, tag: u64) -> Result<Tensor, CommError> {
        let b = self.recv_bytes(src, tag)?;
        Ok(decode_slice(&b).expect("malformed tensor payload"))
    }

    /// Allocates the next collective tag. Multi-collective protocols built
    /// on top of `Comm` (e.g. bucketed all-reduce in `swift-core`) allocate
    /// their per-bucket tags here; every participant must allocate in the
    /// same order so sequences stay aligned.
    pub fn next_coll_tag(&self) -> u64 {
        COLLECTIVE_BIT | self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Current collective sequence number. Collectives only match between
    /// communicators whose sequences agree; after a failure, survivors and
    /// the (fresh, sequence-zero) replacement must resynchronize — see the
    /// recovery fence in `swift-core`.
    pub fn coll_seq(&self) -> u64 {
        self.coll_seq.load(Ordering::SeqCst)
    }

    /// Overwrites the collective sequence number (recovery fence only).
    pub fn set_coll_seq(&self, v: u64) {
        self.coll_seq.store(v, Ordering::SeqCst);
    }

    /// Bytes sent through this communicator (payloads only).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes received through this communicator (payloads only).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Discards buffered inbound traffic (stash + transport queue).
    /// Called during the recovery fence: pre-failure in-flight traffic
    /// must not satisfy post-recovery receives.
    ///
    /// Frames from *older* generations vanish without touching cursors
    /// (cursors are per-generation). Frames of the *current* generation
    /// are discarded with a cursor advance, so senders' live stream
    /// positions stay aligned — this is the path taken when a rank is
    /// replaced without an epoch bump. Frames from a *future* generation
    /// (a peer that fenced ahead of us) stay stashed for delivery once
    /// we synchronize.
    pub fn purge(&mut self) {
        let gen = self.generation.load(Ordering::SeqCst);
        let mut keep = Vec::new();
        let drained = std::mem::take(&mut self.stash)
            .into_iter()
            .chain(self.transport.drain());
        for m in drained {
            match m.generation.cmp(&gen) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    let cursor = self.expected.entry((m.src, m.tag)).or_insert(0);
                    *cursor = (*cursor).max(m.tag_seq + 1);
                }
                std::cmp::Ordering::Greater => keep.push(m),
            }
        }
        self.stash = keep;
        if let Some(t) = self.transport.tracer() {
            t.on_purge(self.rank, gen);
        }
    }

    /// The failure epoch this communicator's generation stamp is
    /// synchronized to.
    pub fn generation(&self) -> Epoch {
        Epoch::new(self.generation.load(Ordering::SeqCst))
    }

    /// Synchronizes the failure generation to the declared epoch
    /// (recovery fence only). Inbound traffic stamped with an older
    /// generation is fenced on receipt, and every stream cursor resets
    /// to zero — the sender side does the same on its first transmit of
    /// the new generation, so both ends of every stream restart aligned.
    pub fn set_generation(&mut self, epoch: Epoch) {
        let g = epoch.get();
        let from = self.generation.swap(g, Ordering::SeqCst);
        if from != g {
            self.expected.clear();
            self.transport.fence_generation(g);
            if let Some(t) = self.transport.tracer() {
                t.on_epoch_bump(self.rank, from, g);
            }
        }
    }

    /// Records a protocol milestone in the trace (no-op unless tracing is
    /// enabled). Used by the recovery fence to mark entry and exit so the
    /// race checker can anchor its happens-before invariants.
    pub fn trace_mark(&self, label: &str) {
        if let Some(t) = self.transport.tracer() {
            t.mark(self.rank, label, self.generation.load(Ordering::SeqCst));
        }
    }

    /// Barrier among `participants` (must be called by all of them, in the
    /// same collective order). Root is the smallest rank.
    pub fn barrier_among(&mut self, participants: &[Rank]) -> Result<(), CommError> {
        let tag = self.next_coll_tag();
        let root = *participants.iter().min().expect("empty participant set");
        if self.rank == root {
            for &r in participants.iter().filter(|&&r| r != root) {
                self.recv_bytes(r, tag)?;
            }
            for &r in participants.iter().filter(|&&r| r != root) {
                self.send_bytes(r, tag, Bytes::new())?;
            }
        } else {
            self.send_bytes(root, tag, Bytes::new())?;
            self.recv_bytes(root, tag)?;
        }
        Ok(())
    }

    /// Full-world barrier.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let all: Vec<Rank> = (0..self.world).collect();
        self.barrier_among(&all)
    }

    /// Broadcast raw bytes from `root` among `participants`.
    pub fn broadcast_bytes_among(
        &mut self,
        participants: &[Rank],
        root: Rank,
        data: Option<Bytes>,
    ) -> Result<Bytes, CommError> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let payload = data.expect("root must supply the broadcast payload");
            for &r in participants.iter().filter(|&&r| r != root) {
                self.send_bytes(r, tag, payload.clone())?;
            }
            Ok(payload)
        } else {
            self.recv_bytes(root, tag)
        }
    }

    /// Broadcast a tensor from `root` among `participants` (used by
    /// replication-based recovery to ship the surviving replica's state).
    pub fn broadcast_tensor_among(
        &mut self,
        participants: &[Rank],
        root: Rank,
        t: Option<&Tensor>,
    ) -> Result<Tensor, CommError> {
        let b = self.broadcast_bytes_among(participants, root, t.map(encode))?;
        Ok(decode_slice(&b).expect("malformed tensor payload"))
    }

    /// Deterministic all-reduce (sum) among `participants`: the smallest
    /// rank gathers contributions in ascending rank order, sums them, and
    /// broadcasts the result. Rank order fixes the floating-point
    /// reduction order, so every run produces bit-identical results —
    /// required for replay determinism (§6).
    pub fn allreduce_sum_among(
        &mut self,
        participants: &[Rank],
        t: &Tensor,
    ) -> Result<Tensor, CommError> {
        let tag = self.next_coll_tag();
        let mut sorted: Vec<Rank> = participants.to_vec();
        sorted.sort_unstable();
        let root = sorted[0];
        if self.rank == root {
            let mut acc = t.clone();
            for &r in sorted.iter().skip(1) {
                let contrib = {
                    let b = self.recv_bytes(r, tag)?;
                    decode_slice(&b).expect("malformed tensor payload")
                };
                acc.add_inplace(&contrib);
            }
            for &r in sorted.iter().skip(1) {
                self.send_bytes(r, tag, encode(&acc))?;
            }
            Ok(acc)
        } else {
            self.send_bytes(root, tag, encode(t))?;
            let b = self.recv_bytes(root, tag)?;
            Ok(decode_slice(&b).expect("malformed tensor payload"))
        }
    }

    /// Full-world deterministic all-reduce (sum).
    pub fn allreduce_sum(&mut self, t: &Tensor) -> Result<Tensor, CommError> {
        let all: Vec<Rank> = (0..self.world).collect();
        self.allreduce_sum_among(&all, t)
    }

    /// Ring all-reduce (sum): reduce-scatter then all-gather over the ring
    /// of `participants`. Deterministic (the ring fixes the reduction
    /// order) but with a different rounding order than
    /// [`allreduce_sum_among`](Comm::allreduce_sum_among); offered for bandwidth-optimal synchronization
    /// at scale.
    pub fn ring_allreduce_among(
        &mut self,
        participants: &[Rank],
        t: &Tensor,
    ) -> Result<Tensor, CommError> {
        let mut ring: Vec<Rank> = participants.to_vec();
        ring.sort_unstable();
        let n = ring.len();
        if n == 1 {
            return Ok(t.clone());
        }
        let me = ring
            .iter()
            .position(|&r| r == self.rank)
            .expect("not a participant");
        let next = ring[(me + 1) % n];
        let prev = ring[(me + n - 1) % n];
        let numel = t.numel();
        // Chunk boundaries: chunk c covers [floor(c·numel/n), floor((c+1)·numel/n)).
        let bounds: Vec<usize> = (0..=n).map(|c| c * numel / n).collect();
        let mut data = t.data().to_vec();
        let tag_base = self.next_coll_tag();

        // Reduce-scatter: after n−1 steps, chunk c is fully summed at rank
        // index (c+1) mod n.
        for step in 0..n - 1 {
            let send_c = (me + n - step) % n;
            let recv_c = (me + n - 1 - step) % n;
            let tag = tag_base ^ (step as u64) << 32;
            let chunk =
                Bytes::copy_from_slice(bytemuck_f32(&data[bounds[send_c]..bounds[send_c + 1]]));
            self.send_bytes(next, tag, chunk)?;
            let incoming = self.recv_bytes(prev, tag)?;
            let vals = f32_from_bytes(&incoming);
            for (dst, v) in data[bounds[recv_c]..bounds[recv_c + 1]]
                .iter_mut()
                .zip(vals)
            {
                *dst += v;
            }
        }
        // All-gather: circulate the finished chunks.
        for step in 0..n - 1 {
            let send_c = (me + 1 + n - step) % n;
            let recv_c = (me + n - step) % n;
            let tag = tag_base ^ (0x100 + step as u64) << 32;
            let chunk =
                Bytes::copy_from_slice(bytemuck_f32(&data[bounds[send_c]..bounds[send_c + 1]]));
            self.send_bytes(next, tag, chunk)?;
            let incoming = self.recv_bytes(prev, tag)?;
            let vals = f32_from_bytes(&incoming);
            for (dst, v) in data[bounds[recv_c]..bounds[recv_c + 1]]
                .iter_mut()
                .zip(vals)
            {
                *dst = v;
            }
        }
        Ok(Tensor::from_vec(*t.shape(), data))
    }

    /// Chunked, pipelined deterministic all-reduce (sum): identical
    /// rounding to [`allreduce_sum_among`](Comm::allreduce_sum_among)
    /// — bitwise equal at any chunk size and thread count — but streamed
    /// in `chunk_bytes` chunks so chunk *k*'s reduction overlaps chunk
    /// *k+1*'s transfer.
    ///
    /// The schedule is an ascending-rank chain: the partial sum of chunk
    /// *k* flows rank-index 0 → 1 → … → n−1, each rank folding its own
    /// contribution in (the exact left-fold order of the monolithic
    /// gather), and the last rank streams finished chunks back down the
    /// chain while later chunks are still folding — 2(n−1) hops per
    /// chunk, pipelined across chunks.
    pub fn allreduce_sum_chunked_among(
        &mut self,
        participants: &[Rank],
        t: &Tensor,
        chunk_bytes: usize,
    ) -> Result<Tensor, CommError> {
        let mut out = t.clone();
        self.allreduce_sum_chunked_into(participants, t, &mut out, chunk_bytes)?;
        Ok(out)
    }

    /// [`allreduce_sum_chunked_among`](Comm::allreduce_sum_chunked_among)
    /// writing the result into an existing tensor (hot paths reuse `out`
    /// across iterations so steady state allocates nothing).
    pub fn allreduce_sum_chunked_into(
        &mut self,
        participants: &[Rank],
        t: &Tensor,
        out: &mut Tensor,
        chunk_bytes: usize,
    ) -> Result<(), CommError> {
        assert_eq!(
            t.shape().dims(),
            out.shape().dims(),
            "output shape must match the input"
        );
        let mut chain: Vec<Rank> = participants.to_vec();
        chain.sort_unstable();
        let n = chain.len();
        if n == 1 {
            out.data_mut().copy_from_slice(t.data());
            return Ok(());
        }
        let me = chain
            .iter()
            .position(|&r| r == self.rank)
            .expect("not a participant");
        let fold_tag = self.next_coll_tag();
        let gather_tag = fold_tag ^ (1 << 32);
        let numel = t.numel();
        let chunk = (chunk_bytes / 4).max(1);
        let own = t.data();
        // Fold phase: the partial sum climbs the chain chunk by chunk.
        // Rank index i receives t₀+…+t_{i−1} and adds its own values —
        // exactly the monolithic root's `acc += contrib` left fold, so
        // the result is bitwise identical and, being elementwise,
        // independent of thread count.
        if me == 0 {
            let mut lo = 0;
            while lo < numel {
                let hi = (lo + chunk).min(numel);
                let piece = Bytes::copy_from_slice(bytemuck_f32(&own[lo..hi]));
                self.send_bytes(chain[1], fold_tag, piece)?;
                lo = hi;
            }
        } else {
            let prev = chain[me - 1];
            let mut scratch: Vec<f32> = Vec::with_capacity(chunk.min(numel.max(1)));
            let mut lo = 0;
            while lo < numel {
                let hi = (lo + chunk).min(numel);
                let incoming = self.recv_bytes(prev, fold_tag)?;
                scratch.clear();
                scratch.extend(
                    f32_from_bytes(&incoming)
                        .zip(&own[lo..hi])
                        .map(|(partial, &mine)| partial + mine),
                );
                let outgoing = Bytes::copy_from_slice(bytemuck_f32(&scratch));
                if me + 1 < n {
                    self.send_bytes(chain[me + 1], fold_tag, outgoing)?;
                } else {
                    // Last rank: this chunk is final. Install it and
                    // stream it back down while later chunks still fold.
                    out.data_mut()[lo..hi].copy_from_slice(&scratch);
                    self.send_bytes(prev, gather_tag, outgoing)?;
                }
                lo = hi;
            }
        }
        // Gather phase: finished chunks flow back down the chain; middle
        // ranks forward each chunk (refcounted, no copy) before
        // installing it locally.
        if me + 1 < n {
            let from = chain[me + 1];
            let mut lo = 0;
            while lo < numel {
                let hi = (lo + chunk).min(numel);
                let incoming = self.recv_bytes(from, gather_tag)?;
                if me > 0 {
                    self.send_bytes(chain[me - 1], gather_tag, incoming.clone())?;
                }
                for (dst, v) in out.data_mut()[lo..hi]
                    .iter_mut()
                    .zip(f32_from_bytes(&incoming))
                {
                    *dst = v;
                }
                lo = hi;
            }
        }
        Ok(())
    }

    /// Chunked broadcast of raw bytes from `root`: a length header, then
    /// `chunk_bytes`-sized slices of the payload (refcounted at the root
    /// — no copies), so a receiver starts consuming while later chunks
    /// are still in flight. Payload-identical to
    /// [`broadcast_bytes_among`](Comm::broadcast_bytes_among).
    pub fn broadcast_bytes_chunked_among(
        &mut self,
        participants: &[Rank],
        root: Rank,
        data: Option<Bytes>,
        chunk_bytes: usize,
    ) -> Result<Bytes, CommError> {
        let tag = self.next_coll_tag();
        let chunk = chunk_bytes.max(1);
        if self.rank == root {
            let payload = data.expect("root must supply the broadcast payload");
            let header = Bytes::copy_from_slice(&(payload.len() as u64).to_le_bytes());
            for &r in participants.iter().filter(|&&r| r != root) {
                self.send_bytes(r, tag, header.clone())?;
            }
            let mut off = 0;
            while off < payload.len() {
                let end = (off + chunk).min(payload.len());
                let piece = payload.slice(off..end);
                for &r in participants.iter().filter(|&&r| r != root) {
                    self.send_bytes(r, tag, piece.clone())?;
                }
                off = end;
            }
            Ok(payload)
        } else {
            let header = self.recv_bytes(root, tag)?;
            let total = u64::from_le_bytes(header[..8].try_into().unwrap()) as usize;
            let mut buf = Vec::with_capacity(total);
            while buf.len() < total {
                let piece = self.recv_bytes(root, tag)?;
                buf.extend_from_slice(&piece);
            }
            Ok(Bytes::from(buf))
        }
    }

    /// Chunked tensor broadcast writing straight into `dst` (which every
    /// rank pre-shapes): the root streams raw little-endian chunks of the
    /// tensor data and receivers install each chunk into `dst`'s existing
    /// storage — no wire header, no intermediate decode allocation, and a
    /// replacement rank starts deserializing while later chunks are still
    /// in flight. Values are bitwise identical to
    /// [`broadcast_tensor_among`](Comm::broadcast_tensor_among).
    pub fn broadcast_tensor_chunked_into(
        &mut self,
        participants: &[Rank],
        root: Rank,
        src: Option<&Tensor>,
        dst: &mut Tensor,
        chunk_bytes: usize,
    ) -> Result<(), CommError> {
        let tag = self.next_coll_tag();
        let chunk = (chunk_bytes / 4).max(1);
        if self.rank == root {
            let t = src.expect("root must supply the broadcast tensor");
            assert_eq!(
                t.shape().dims(),
                dst.shape().dims(),
                "destination shape must match the source"
            );
            let data = t.data();
            let mut lo = 0;
            while lo < data.len() {
                let hi = (lo + chunk).min(data.len());
                let piece = Bytes::copy_from_slice(bytemuck_f32(&data[lo..hi]));
                for &r in participants.iter().filter(|&&r| r != root) {
                    self.send_bytes(r, tag, piece.clone())?;
                }
                lo = hi;
            }
            if !std::ptr::eq(t.data().as_ptr(), dst.data().as_ptr()) {
                dst.data_mut().copy_from_slice(data);
            }
        } else {
            let numel = dst.numel();
            let mut lo = 0;
            while lo < numel {
                let hi = (lo + chunk).min(numel);
                let incoming = self.recv_bytes(root, tag)?;
                for (d, v) in dst.data_mut()[lo..hi]
                    .iter_mut()
                    .zip(f32_from_bytes(&incoming))
                {
                    *d = v;
                }
                lo = hi;
            }
        }
        Ok(())
    }

    /// Chunked tensor broadcast returning a fresh tensor (convenience
    /// wrapper over
    /// [`broadcast_tensor_chunked_into`](Comm::broadcast_tensor_chunked_into)
    /// for call sites whose receivers already know the shape from a
    /// deterministic model factory).
    pub fn broadcast_tensor_chunked_among(
        &mut self,
        participants: &[Rank],
        root: Rank,
        src: Option<&Tensor>,
        shape: &[usize],
        chunk_bytes: usize,
    ) -> Result<Tensor, CommError> {
        let mut dst = Tensor::zeros(shape.to_vec());
        self.broadcast_tensor_chunked_into(participants, root, src, &mut dst, chunk_bytes)?;
        Ok(dst)
    }

    /// Sharded multi-source state transfer: every survivor concurrently
    /// streams a disjoint contiguous shard of the encoded state to every
    /// replacement, and each replacement reassembles the shards at their
    /// flat offsets.
    ///
    /// The shard schedule is a pure function of the payload length,
    /// `shard_bytes` and the ascending-sorted survivor set: shard *i*
    /// covers bytes `[i·B, min((i+1)·B, len))` and is sent by survivor
    /// index `i mod n`. The lowest survivor prefixes its stream with an
    /// 8-byte length header. Because reassembly is a pure repartition of
    /// the payload at fixed offsets, the received bytes are **bitwise
    /// identical** to [`broadcast_bytes_chunked_among`](Comm::broadcast_bytes_chunked_among)
    /// from any single survivor, at any shard size and thread count.
    ///
    /// Contract: every survivor must supply the *same* payload bytes
    /// (the replication invariant — callers that cannot guarantee it
    /// fall back to the single-root broadcast). Every rank in
    /// `survivors ∪ replacements` must call this collectively; the two
    /// sets must be disjoint. Survivors return their own payload,
    /// replacements the reassembled bytes.
    pub fn scatter_state_sharded(
        &mut self,
        survivors: &[Rank],
        replacements: &[Rank],
        payload: Option<Bytes>,
        shard_bytes: usize,
    ) -> Result<Bytes, CommError> {
        if survivors.contains(&self.rank) {
            let own = payload
                .clone()
                .expect("every survivor must supply the state payload");
            self.scatter_state_sharded_with(
                survivors,
                replacements,
                payload,
                shard_bytes,
                |_, _, _| {},
            )?;
            Ok(own)
        } else {
            let mut buf: Vec<u8> = Vec::new();
            self.scatter_state_sharded_with(
                survivors,
                replacements,
                None,
                shard_bytes,
                |total, offset, piece: &Bytes| {
                    if buf.capacity() < total {
                        buf.reserve_exact(total - buf.len());
                    }
                    debug_assert_eq!(offset, buf.len(), "shards must land at flat offsets");
                    buf.extend_from_slice(piece);
                },
            )?;
            Ok(Bytes::from(buf))
        }
    }

    /// [`scatter_state_sharded`](Comm::scatter_state_sharded) delivering
    /// each shard to a callback as it arrives, in flat-offset order —
    /// `on_shard(total_len, offset, bytes)` — so a replacement can
    /// overlap decoding with the arrival of later shards instead of
    /// waiting for the whole payload. Survivors never invoke the
    /// callback. Returns the total payload length.
    pub fn scatter_state_sharded_with<F>(
        &mut self,
        survivors: &[Rank],
        replacements: &[Rank],
        payload: Option<Bytes>,
        shard_bytes: usize,
        mut on_shard: F,
    ) -> Result<usize, CommError>
    where
        F: FnMut(usize, usize, &Bytes),
    {
        let tag = self.next_coll_tag();
        let shard = shard_bytes.max(1);
        let mut srcs: Vec<Rank> = survivors.to_vec();
        srcs.sort_unstable();
        srcs.dedup();
        let n = srcs.len();
        assert!(n > 0, "sharded transfer needs at least one survivor");
        debug_assert!(
            replacements.iter().all(|r| !srcs.contains(r)),
            "survivor and replacement sets must be disjoint"
        );
        if let Some(pos) = srcs.iter().position(|&r| r == self.rank) {
            let payload = payload.expect("every survivor must supply the state payload");
            let total = payload.len();
            if pos == 0 {
                let header = Bytes::copy_from_slice(&(total as u64).to_le_bytes());
                for &r in replacements {
                    self.send_bytes(r, tag, header.clone())?;
                }
            }
            // This survivor's shards: indices pos, pos+n, pos+2n, …
            // Slices are refcounted views — no copies on the send side.
            let num_shards = total.div_ceil(shard);
            let mut i = pos;
            while i < num_shards {
                let lo = i * shard;
                let hi = (lo + shard).min(total);
                let piece = payload.slice(lo..hi);
                for &r in replacements {
                    self.send_bytes(r, tag, piece.clone())?;
                }
                i += n;
            }
            Ok(total)
        } else {
            debug_assert!(
                replacements.contains(&self.rank),
                "caller must be a survivor or a replacement"
            );
            let header = self.recv_bytes(srcs[0], tag)?;
            let total =
                u64::from_le_bytes(header[..8].try_into().expect("8-byte length header")) as usize;
            let num_shards = total.div_ceil(shard);
            for i in 0..num_shards {
                let piece = self.recv_bytes(srcs[i % n], tag)?;
                on_shard(total, i * shard, &piece);
            }
            Ok(total)
        }
    }

    /// Gathers one `u64` from every participant at every participant
    /// (used to reach consensus on the pre-failure iteration, §6
    /// "Update-undo" in pipeline parallelism). Returns values in
    /// ascending-rank order.
    pub fn all_gather_u64_among(
        &mut self,
        participants: &[Rank],
        value: u64,
    ) -> Result<Vec<u64>, CommError> {
        let tag = self.next_coll_tag();
        let mut sorted: Vec<Rank> = participants.to_vec();
        sorted.sort_unstable();
        let root = sorted[0];
        if self.rank == root {
            let mut vals = vec![value];
            for &r in sorted.iter().skip(1) {
                let b = self.recv_bytes(r, tag)?;
                vals.push(u64::from_le_bytes(b[..8].try_into().unwrap()));
            }
            let mut payload = Vec::with_capacity(8 * vals.len());
            for v in &vals {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            let payload = Bytes::from(payload);
            for &r in sorted.iter().skip(1) {
                self.send_bytes(r, tag, payload.clone())?;
            }
            Ok(vals)
        } else {
            self.send_bytes(root, tag, Bytes::copy_from_slice(&value.to_le_bytes()))?;
            let b = self.recv_bytes(root, tag)?;
            Ok(b.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
    }
}

/// Views an `f32` slice as its raw little-endian bytes (the collective
/// wire format on little-endian hosts — no copy, no allocation).
pub fn bytemuck_f32(v: &[f32]) -> &[u8] {
    // Safety: f32 and u8 have no invalid bit patterns; alignment of u8 is 1.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 4) }
}

/// Iterates the `f32` values of a raw little-endian payload (safe on
/// unaligned input — each value is re-assembled from its 4 bytes).
pub fn f32_from_bytes(b: &[u8]) -> impl Iterator<Item = f32> + '_ {
    b.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
}

/// The default collective chunk size in bytes: the `SWIFT_COLLECTIVE_CHUNK`
/// environment variable when set (raw byte count), else 64 KiB — small
/// enough that a chunk's fold stays cache-resident, large enough that
/// per-message overhead stays negligible. Read once and cached.
pub fn default_chunk_bytes() -> usize {
    static CHUNK: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CHUNK.get_or_init(|| {
        std::env::var("SWIFT_COLLECTIVE_CHUNK")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(64 * 1024)
    })
}

/// The default shard size in bytes for
/// [`scatter_state_sharded`](Comm::scatter_state_sharded): the
/// `SWIFT_SHARD_BYTES` environment variable when set (raw byte count),
/// else 256 KiB — large enough that per-shard overhead is negligible,
/// small enough that a multi-MiB state spreads across every survivor.
/// The received bytes are shard-size-independent (the CI determinism
/// matrix sweeps this knob); only the streaming granularity changes.
/// Read once and cached.
pub fn default_shard_bytes() -> usize {
    static SHARD: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SHARD.get_or_init(|| {
        std::env::var("SWIFT_SHARD_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(256 * 1024)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use crate::socket::SocketTransport;
    use crate::topology::Topology;

    fn tmp_dir(label: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("swift-comm-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn payload(len: usize, seed: u64) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| {
                    ((i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(seed)
                        >> 33) as u8
                })
                .collect::<Vec<u8>>(),
        )
    }

    /// The sharded transfer over the *socket* backend (real processes use
    /// this transport) must hand the replacement bytes bitwise identical
    /// to the single-root chunked broadcast, at shard counts 1, 2, 4, 8.
    #[test]
    fn sharded_scatter_matches_broadcast_over_sockets() {
        let world = 4usize; // 3 survivors + 1 replacement
        let survivors = [0usize, 1, 2];
        let replacement = 3usize;
        let len = 50_003usize;
        let shard_sizes: Vec<usize> = [1usize, 2, 4, 8].iter().map(|c| len.div_ceil(*c)).collect();
        let dir = tmp_dir("scatter");
        let fc = crate::failure::FailureController::new(Topology::uniform(world, 1));
        let kv = KvStore::new();
        let participants: Vec<Rank> = (0..world).collect();
        let mut handles = Vec::new();
        for rank in 0..world {
            let dir = dir.clone();
            let fc = fc.clone();
            let kv = kv.clone();
            let shard_sizes = shard_sizes.clone();
            let participants = participants.clone();
            handles.push(std::thread::spawn(move || {
                let connect = RetryPolicy::poll().with_deadline(Duration::from_secs(5));
                let t = SocketTransport::bind(&dir, rank, world, connect).unwrap();
                let mut comm = Comm::over_transport(rank, world, Box::new(t), fc, kv, 0);
                let mut rounds = Vec::new();
                for &shard_bytes in &shard_sizes {
                    let data = survivors.contains(&rank).then(|| payload(len, 11));
                    let sharded = comm
                        .scatter_state_sharded(&survivors, &[replacement], data, shard_bytes)
                        .unwrap();
                    let root_data = (rank == 0).then(|| payload(len, 11));
                    let broadcast = comm
                        .broadcast_bytes_chunked_among(&participants, 0, root_data, 4096)
                        .unwrap();
                    rounds.push((sharded, broadcast));
                }
                rounds
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, (sharded, broadcast)) in results[replacement].iter().enumerate() {
            assert_eq!(sharded.len(), len, "round {i}");
            assert_eq!(sharded, broadcast, "socket scatter diverged in round {i}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
