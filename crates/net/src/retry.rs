//! Bounded retry with exponential backoff.
//!
//! Every wait in the recovery path — polling a key-value rendezvous,
//! waiting for a replacement to come up, retrying an interrupted recovery
//! step — goes through one [`RetryPolicy`] instead of scattered
//! `thread::sleep(1ms)` spins and hard-coded 30-second timeouts. The
//! policy fixes four knobs: the base delay, the backoff factor, the
//! overall deadline, and the whole-attempt restart budget the recovery
//! supervisor draws on (there used to be a second, drifting config
//! struct for that — now there is one schedule).

use std::time::{Duration, Instant};

/// Exponential-backoff schedule with an overall deadline and a restart
/// budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Multiplier applied to the delay after each attempt (≥ 1.0).
    pub backoff: f64,
    /// Cap on any single delay.
    pub max_delay: Duration,
    /// Give up once this much time has elapsed in total.
    pub deadline: Duration,
    /// How many times a *whole recovery attempt* may be restarted after
    /// a cascading failure (`max_restarts + 1` attempts in total). Only
    /// the supervisor consults this; plain waits ignore it.
    pub max_restarts: u32,
}

impl RetryPolicy {
    /// Fast polling: sub-millisecond start, gentle growth, generous
    /// deadline. Replaces `loop { sleep(1ms) }` spins on shared state.
    pub const fn poll() -> Self {
        RetryPolicy {
            base_delay: Duration::from_micros(200),
            backoff: 1.5,
            max_delay: Duration::from_millis(10),
            deadline: Duration::from_secs(30),
            max_restarts: 0,
        }
    }

    /// Recovery-step retry: for re-running an idempotent recovery phase
    /// after a cascading failure. Starts slower and backs off harder so a
    /// crashed peer has time to be replaced between attempts, and grants
    /// the supervisor a small restart budget (Appendix B cascades).
    pub const fn recovery() -> Self {
        RetryPolicy {
            base_delay: Duration::from_millis(2),
            backoff: 2.0,
            max_delay: Duration::from_millis(250),
            deadline: Duration::from_secs(30),
            max_restarts: 4,
        }
    }

    /// Same schedule with a different overall deadline.
    pub const fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Same schedule with a different restart budget.
    pub const fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// The per-attempt sleep for `attempt` (0-based), capped at
    /// [`max_delay`](Self::max_delay).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let mult = self.backoff.powi(attempt.min(64) as i32);
        let d = self.base_delay.as_secs_f64() * mult;
        Duration::from_secs_f64(d.min(self.max_delay.as_secs_f64()))
    }

    /// Polls `cond` under the backoff schedule until it returns true or
    /// the deadline passes. Returns whether the condition was met.
    pub fn wait_until(&self, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            if cond() {
                return true;
            }
            if start.elapsed() >= self.deadline {
                return cond();
            }
            std::thread::sleep(self.delay_for(attempt));
            attempt += 1;
        }
    }

    /// Runs `op` until it succeeds or the deadline passes, sleeping the
    /// backoff schedule between attempts. `op` receives the attempt index.
    /// Returns the last error once the deadline is exceeded.
    pub fn retry<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if start.elapsed() >= self.deadline {
                        return Err(e);
                    }
                    std::thread::sleep(self.delay_for(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::poll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn delays_grow_and_cap() {
        let p = RetryPolicy {
            base_delay: Duration::from_millis(1),
            backoff: 2.0,
            max_delay: Duration::from_millis(4),
            deadline: Duration::from_secs(1),
            max_restarts: 0,
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(1));
        assert_eq!(p.delay_for(1), Duration::from_millis(2));
        assert_eq!(p.delay_for(2), Duration::from_millis(4));
        assert_eq!(p.delay_for(10), Duration::from_millis(4));
    }

    #[test]
    fn wait_until_observes_flip() {
        let n = AtomicU32::new(0);
        let ok = RetryPolicy::poll().wait_until(|| n.fetch_add(1, Ordering::SeqCst) >= 3);
        assert!(ok);
        assert!(n.load(Ordering::SeqCst) >= 4);
    }

    #[test]
    fn wait_until_times_out() {
        let p = RetryPolicy::poll().with_deadline(Duration::from_millis(20));
        let t0 = Instant::now();
        assert!(!p.wait_until(|| false));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn retry_returns_first_success() {
        let p = RetryPolicy::recovery();
        let out: Result<u32, &str> =
            p.retry(|attempt| if attempt < 2 { Err("no") } else { Ok(attempt) });
        assert_eq!(out, Ok(2));
    }

    #[test]
    fn retry_surfaces_last_error_after_deadline() {
        let p = RetryPolicy::recovery().with_deadline(Duration::from_millis(15));
        let out: Result<(), u32> = p.retry(Err);
        assert!(out.is_err());
    }
}
