//! The process backend: one OS process per rank, Unix-domain sockets as
//! the fabric.
//!
//! Where [`ChannelTransport`](crate::transport::ChannelTransport) models
//! a crash as a flag a thread politely honors, this backend faces the
//! real thing: a `SIGKILL`ed peer vanishes mid-write, its socket turns
//! into `ECONNREFUSED`/`EPIPE`, and its replacement re-binds the same
//! address with none of its predecessor's volatile state. The transport
//! maps those raw events onto the same observable signals the in-process
//! fabric produces — a dark link on write failure, reconnection on
//! probe — so [`Comm`](crate::comm::Comm) runs the identical detection
//! and fencing protocol over both.
//!
//! Wire format (little-endian, length-prefixed):
//!
//! ```text
//! [u32 len][u64 src][u64 tag][u64 tag_seq][u64 generation][payload]
//! ```
//!
//! `len` counts everything after itself (32-byte header + payload). Each
//! frame is read into a single buffer and the payload sliced out of it
//! zero-copy ([`Bytes::split_off`]-style via the `Buf` cursor), matching
//! the single-memcpy discipline of the tensor wire format. Frames
//! stamped with a generation below the receiver's fence floor are
//! dropped at the socket boundary, before they ever reach the stash —
//! the socket-level twin of the channel fabric's epoch fence.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Buf, Bytes};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::retry::RetryPolicy;
use crate::topology::Rank;
use crate::transport::{Frame, RecvEvent, TransmitOutcome, Transport};

/// Frame header bytes after the length prefix.
const HEADER_LEN: usize = 32;
/// Read timeout on accepted connections, so reader threads observe the
/// shutdown flag promptly instead of blocking forever.
const READER_POLL: Duration = Duration::from_millis(25);

/// The socket path rank `r` listens on under `dir`.
pub fn sock_path(dir: &Path, rank: Rank) -> PathBuf {
    dir.join(format!("rank-{rank}.sock"))
}

/// Outbound state for one peer: the (lazily connected) stream and the
/// per-generation stream counters, under one lock so sequence stamping
/// and the write happen atomically — frames hit the wire in stream
/// order.
struct PeerOut {
    stream: Option<UnixStream>,
    /// Whether a connection to this peer ever succeeded. First contact
    /// retries under the transport's startup policy (the peer may still
    /// be binding); *re*connects use a short probe window instead, so a
    /// transmit to a genuinely dead peer fails fast enough for the
    /// failure detector to act on.
    ever_connected: bool,
    /// Generation the per-tag counters belong to.
    generation: u64,
    /// Next sequence number per tag, within `generation`.
    tag_seqs: HashMap<u64, u64>,
}

struct Peer {
    out: Mutex<PeerOut>,
    /// Last observed reachability (true until a connect/write fails).
    link_ok: AtomicBool,
}

/// One rank's end of the socket fabric.
pub struct SocketTransport {
    rank: Rank,
    dir: PathBuf,
    peers: Vec<Peer>,
    inbox: Receiver<Frame>,
    /// Keeps the inbox channel alive even with no reader connected.
    _inbox_tx: Sender<Frame>,
    /// Frames below this generation are dropped by reader threads before
    /// they reach the inbox (socket-boundary epoch fence).
    fence_floor: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    /// Backoff schedule for lazy outbound connects (first contact may
    /// race the peer's bind).
    connect: RetryPolicy,
}

impl SocketTransport {
    /// Binds `rank`'s listening socket under `dir` and starts the
    /// acceptor. Outbound connections are made lazily on first transmit,
    /// retried under `connect` (peers may still be binding).
    pub fn bind(
        dir: &Path,
        rank: Rank,
        world: usize,
        connect: RetryPolicy,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = sock_path(dir, rank);
        // A stale socket file from a SIGKILLed predecessor blocks bind.
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = unbounded();
        let fence_floor = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let tx = tx.clone();
            let fence_floor = fence_floor.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name(format!("sock-accept-{rank}"))
                .spawn(move || accept_loop(listener, tx, fence_floor, shutdown))?
        };
        let peers = (0..world)
            .map(|_| Peer {
                out: Mutex::new(PeerOut {
                    stream: None,
                    ever_connected: false,
                    generation: 0,
                    tag_seqs: HashMap::new(),
                }),
                link_ok: AtomicBool::new(true),
            })
            .collect();
        Ok(SocketTransport {
            rank,
            dir: dir.to_path_buf(),
            peers,
            inbox: rx,
            _inbox_tx: tx,
            fence_floor,
            shutdown,
            acceptor: Some(acceptor),
            connect,
        })
    }

    /// Attempts to (re)connect `out` to `dst` under `policy`. Returns
    /// whether a live stream is installed afterwards.
    fn ensure_stream(&self, dst: Rank, out: &mut PeerOut, policy: &RetryPolicy) -> bool {
        if out.stream.is_some() {
            return true;
        }
        let path = sock_path(&self.dir, dst);
        match policy.retry(|_| UnixStream::connect(&path)) {
            Ok(s) => {
                out.stream = Some(s);
                out.ever_connected = true;
                self.peers[dst].link_ok.store(true, Ordering::SeqCst);
                true
            }
            Err(_) => {
                self.peers[dst].link_ok.store(false, Ordering::SeqCst);
                false
            }
        }
    }

    /// The connect policy for a transmit-time (re)connect to `out`.
    fn connect_policy(&self, out: &PeerOut) -> RetryPolicy {
        if out.ever_connected {
            RetryPolicy::poll().with_deadline(Duration::from_millis(50))
        } else {
            self.connect
        }
    }
}

impl Transport for SocketTransport {
    fn transmit(&self, dst: Rank, generation: u64, tag: u64, payload: Bytes) -> TransmitOutcome {
        if dst >= self.peers.len() || dst == self.rank {
            return TransmitOutcome::PeerGone;
        }
        let peer = &self.peers[dst];
        let mut out = peer.out.lock();
        if generation > out.generation {
            // First transmit of a new generation: the recovery fence
            // rolled both ends of every stream back to zero.
            out.generation = generation;
            out.tag_seqs.clear();
        }
        let policy = self.connect_policy(&out);
        if !self.ensure_stream(dst, &mut out, &policy) {
            return TransmitOutcome::PeerGone;
        }
        // Counters advance only after a successful write, so a failed
        // frame's slot is re-used by the retransmission instead of
        // leaving a hole the receiver would wait on forever.
        let tag_seq = out.tag_seqs.get(&tag).copied().unwrap_or(0);
        let mut buf = Vec::with_capacity(4 + HEADER_LEN + payload.len());
        buf.extend_from_slice(&((HEADER_LEN + payload.len()) as u32).to_le_bytes());
        buf.extend_from_slice(&(self.rank as u64).to_le_bytes());
        buf.extend_from_slice(&tag.to_le_bytes());
        buf.extend_from_slice(&tag_seq.to_le_bytes());
        buf.extend_from_slice(&generation.to_le_bytes());
        buf.extend_from_slice(&payload);
        let mut wrote = match out.stream.as_mut() {
            Some(s) => s.write_all(&buf).is_ok(),
            None => false,
        };
        if !wrote {
            // EPIPE/ECONNRESET. A broken *stream* is not yet evidence of
            // a dead *peer*: this may be a stale pre-failure connection
            // to a SIGKILLed predecessor whose replacement has re-bound
            // the address. Retry once on a fresh connection; only a
            // failed connect condemns the peer.
            out.stream = None;
            let quick = RetryPolicy::poll().with_deadline(Duration::from_millis(50));
            if self.ensure_stream(dst, &mut out, &quick) {
                wrote = match out.stream.as_mut() {
                    Some(s) => s.write_all(&buf).is_ok(),
                    None => false,
                };
            }
        }
        if !wrote {
            // The peer is unreachable. Sever the link; the failure
            // detector takes it from here, and any frames lost in the
            // peer's kernel buffers are resynchronized by the
            // generation fence.
            out.stream = None;
            peer.link_ok.store(false, Ordering::SeqCst);
            return TransmitOutcome::PeerGone;
        }
        *out.tag_seqs.entry(tag).or_insert(0) += 1;
        TransmitOutcome::Sent
    }

    fn recv_timeout(&mut self, timeout: Duration) -> RecvEvent {
        match self.inbox.recv_timeout(timeout) {
            Ok(f) => RecvEvent::Frame(f),
            Err(RecvTimeoutError::Timeout) => RecvEvent::Timeout,
            Err(RecvTimeoutError::Disconnected) => RecvEvent::Disconnected,
        }
    }

    fn drain(&mut self) -> Vec<Frame> {
        let mut out = Vec::new();
        while let Ok(f) = self.inbox.try_recv() {
            out.push(f);
        }
        out
    }

    fn link_up(&self, rank: Rank) -> bool {
        rank == self.rank
            || self
                .peers
                .get(rank)
                .map(|p| p.link_ok.load(Ordering::SeqCst))
                .unwrap_or(false)
    }

    fn probe_link(&self, rank: Rank) -> bool {
        if self.link_up(rank) {
            return true;
        }
        let Some(peer) = self.peers.get(rank) else {
            return false;
        };
        // One quick reconnect attempt: a replacement process that
        // re-bound the address counts as the link coming back up, so a
        // recovered rank is not re-declared dead on the next timeout.
        let mut out = peer.out.lock();
        out.stream = None;
        let quick = RetryPolicy::poll().with_deadline(Duration::from_millis(50));
        self.ensure_stream(rank, &mut out, &quick)
    }

    fn fence_generation(&self, generation: u64) {
        let rose = self.fence_floor.fetch_max(generation, Ordering::SeqCst) < generation;
        if !rose {
            return;
        }
        // A rising fence means a recovery happened: every outbound
        // stream predates it and is stale by definition. Sever them all
        // so post-fence traffic starts on fresh connections instead of
        // vanishing into a dead predecessor's kernel buffer (a write
        // there can still succeed before the OS notices the reset).
        for peer in &self.peers {
            peer.out.lock().stream = None;
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(sock_path(&self.dir, self.rank));
    }
}

/// Accepts inbound connections until shutdown, handing each to a reader
/// thread that decodes frames into the shared inbox.
fn accept_loop(
    listener: UnixListener,
    tx: Sender<Frame>,
    fence_floor: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let fence_floor = fence_floor.clone();
                let shutdown = shutdown.clone();
                let _ = std::thread::Builder::new()
                    .name("sock-reader".to_string())
                    .spawn(move || reader_loop(stream, tx, fence_floor, shutdown));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Decodes length-prefixed frames off one connection until EOF, error or
/// shutdown. A frame truncated by the sender's death (EOF mid-frame) is
/// silently dropped — the stream counters never advanced past it on the
/// sender, and recovery re-fences the link anyway.
fn reader_loop(
    mut stream: UnixStream,
    tx: Sender<Frame>,
    fence_floor: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(READER_POLL));
    let mut len_buf = [0u8; 4];
    loop {
        if !read_full(&mut stream, &mut len_buf, &shutdown) {
            return;
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len < HEADER_LEN {
            return; // Malformed stream: drop the connection.
        }
        let mut body = vec![0u8; len];
        if !read_full(&mut stream, &mut body, &shutdown) {
            return;
        }
        let mut b = Bytes::from(body);
        let src = b.get_u64_le() as Rank;
        let tag = b.get_u64_le();
        let tag_seq = b.get_u64_le();
        let generation = b.get_u64_le();
        if generation < fence_floor.load(Ordering::SeqCst) {
            // Stale-epoch traffic: rejected at the socket boundary.
            continue;
        }
        let frame = Frame {
            src,
            tag,
            tag_seq,
            generation,
            deliver_at: Instant::now(),
            payload: b,
            vc: None,
        };
        if tx.send(frame).is_err() {
            return;
        }
    }
}

/// Reads exactly `buf.len()` bytes, riding out read timeouts while the
/// transport is live. Returns false on EOF, hard error or shutdown.
fn read_full(stream: &mut UnixStream, buf: &mut [u8], shutdown: &AtomicBool) -> bool {
    let mut off = 0;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(label: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("swift-sock-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn pair(dir: &Path) -> (SocketTransport, SocketTransport) {
        let policy = RetryPolicy::poll().with_deadline(Duration::from_secs(2));
        let a = SocketTransport::bind(dir, 0, 2, policy).unwrap();
        let b = SocketTransport::bind(dir, 1, 2, policy).unwrap();
        (a, b)
    }

    fn recv_one(t: &mut SocketTransport) -> Frame {
        match t.recv_timeout(Duration::from_secs(2)) {
            RecvEvent::Frame(f) => f,
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip_with_stream_seqs() {
        let dir = tmp_dir("rt");
        let (a, mut b) = pair(&dir);
        for i in 0..3u8 {
            assert_eq!(
                a.transmit(1, 0, 7, Bytes::from(vec![i; 4])),
                TransmitOutcome::Sent
            );
        }
        for i in 0..3u64 {
            let f = recv_one(&mut b);
            assert_eq!((f.src, f.tag, f.tag_seq, f.generation), (0, 7, i, 0));
            assert_eq!(f.payload.as_ref(), &[i as u8; 4]);
        }
        drop((a, b));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn generation_bump_resets_stream_counters() {
        let dir = tmp_dir("gen");
        let (a, mut b) = pair(&dir);
        a.transmit(1, 0, 7, Bytes::from_static(b"old"));
        a.transmit(1, 1, 7, Bytes::from_static(b"new"));
        let f0 = recv_one(&mut b);
        let f1 = recv_one(&mut b);
        assert_eq!((f0.generation, f0.tag_seq), (0, 0));
        // The counters reset at the bump: generation 1 restarts at 0.
        assert_eq!((f1.generation, f1.tag_seq), (1, 0));
        drop((a, b));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fence_floor_drops_stale_generations_at_the_boundary() {
        let dir = tmp_dir("fence");
        let (a, mut b) = pair(&dir);
        b.fence_generation(1);
        // Let the fence settle before the stale frame is decoded.
        a.transmit(1, 0, 7, Bytes::from_static(b"stale"));
        a.transmit(1, 1, 7, Bytes::from_static(b"live"));
        let f = recv_one(&mut b);
        assert_eq!(f.generation, 1);
        assert_eq!(f.payload.as_ref(), b"live");
        drop((a, b));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_stream_retries_onto_a_replacement_before_condemning_the_peer() {
        let dir = tmp_dir("stale");
        let policy = RetryPolicy::poll().with_deadline(Duration::from_millis(200));
        let a = SocketTransport::bind(&dir, 0, 2, policy).unwrap();
        {
            let b = SocketTransport::bind(&dir, 1, 2, policy).unwrap();
            assert_eq!(
                a.transmit(1, 0, 7, Bytes::from_static(b"pre")),
                TransmitOutcome::Sent
            );
            drop(b); // The predecessor dies; `a` still holds the old stream.
        }
        // Let the predecessor's reader threads notice shutdown and close
        // their ends, so the stale stream actually turns into EPIPE.
        std::thread::sleep(Duration::from_millis(60));
        // A replacement re-binds the address. `a`'s next writes ride the
        // stale stream into EPIPE territory — the retry-on-fresh-
        // connection path must land them on the replacement instead of
        // reporting PeerGone (which would re-declare the rank dead).
        let mut b2 = SocketTransport::bind(&dir, 1, 2, policy).unwrap();
        for i in 0..5u8 {
            assert_eq!(
                a.transmit(1, 1, 7, Bytes::from(vec![i; 2])),
                TransmitOutcome::Sent,
                "transmit {i} must survive the stale stream"
            );
        }
        assert!(a.link_up(1), "link must stay up across the retry");
        // At least the post-EPIPE frames arrive at the replacement (the
        // OS may swallow writes buffered before it noticed the reset;
        // those are resynchronized by the generation fence in practice).
        let f = recv_one(&mut b2);
        assert_eq!((f.src, f.generation), (0, 1));
        drop((a, b2));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rising_fence_severs_stale_outbound_streams() {
        let dir = tmp_dir("sever");
        let (a, mut b) = pair(&dir);
        assert_eq!(
            a.transmit(1, 0, 7, Bytes::from_static(b"pre")),
            TransmitOutcome::Sent
        );
        assert_eq!(recv_one(&mut b).payload.as_ref(), b"pre");
        a.fence_generation(1);
        assert!(
            a.peers[1].out.lock().stream.is_none(),
            "fence must sever outbound streams"
        );
        // Traffic resumes on a fresh connection.
        assert_eq!(
            a.transmit(1, 1, 7, Bytes::from_static(b"post")),
            TransmitOutcome::Sent
        );
        assert_eq!(recv_one(&mut b).payload.as_ref(), b"post");
        drop((a, b));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn dead_peer_severs_link_and_probe_reconnects_replacement() {
        let dir = tmp_dir("dead");
        let policy = RetryPolicy::poll().with_deadline(Duration::from_millis(100));
        let a = SocketTransport::bind(&dir, 0, 2, policy).unwrap();
        {
            let b = SocketTransport::bind(&dir, 1, 2, policy).unwrap();
            assert_eq!(
                a.transmit(1, 0, 7, Bytes::from_static(b"x")),
                TransmitOutcome::Sent
            );
            drop(b); // Rank 1 "dies": its socket file disappears.
        }
        // Writes eventually fail (the OS may buffer one), severing the link.
        let deadline = Instant::now() + Duration::from_secs(2);
        while a.link_up(1) && Instant::now() < deadline {
            let _ = a.transmit(1, 0, 7, Bytes::from_static(b"y"));
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!a.link_up(1), "link should sever after peer death");
        assert!(!a.probe_link(1), "no replacement yet");
        // A replacement re-binds the same address; the probe finds it.
        let b2 = SocketTransport::bind(&dir, 1, 2, policy).unwrap();
        assert!(a.probe_link(1), "probe should reconnect to the replacement");
        assert!(a.link_up(1));
        drop((a, b2));
        let _ = std::fs::remove_dir_all(dir);
    }
}
