//! Observable failure detection: heartbeat leases and the key-value
//! failure state.
//!
//! The paper detects failures two ways (§6): communication errors
//! surfaced NCCL-style at the call site, and a failure flag in the rank-0
//! key-value store set by whoever notices first. This module is the
//! second path, generalized into an *epoch*: the KV store holds one
//! record `"epoch|r1,r2,..."` under [`STATE_KEY`] listing the declared
//! dead ranks, and the epoch bumps every time the set grows. Workers
//! stamp outgoing traffic with the epoch they have synchronized to, and
//! receivers fence anything older — so two overlapping recoveries can
//! never consume each other's traffic.
//!
//! Detection inputs are strictly *observable*: severed fabric links
//! (connection errors), channel disconnects, missing heartbeats, and
//! this KV record. Production code never reads the fault injector's
//! ground truth. A consequence is that detection can be *wrong*: a
//! stalled-but-alive rank stops heartbeating and gets declared dead
//! (false suspicion). The system survives because the suspected rank
//! fences itself — on its next communication it observes its own rank in
//! the dead set and unwinds exactly as if it had crashed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use swift_obs::{Epoch, Event};

use crate::clock;
use crate::cluster::ClusterError;
use crate::failure::FailureController;
use crate::faults::FaultInjector;
use crate::kv::KvStore;
use crate::topology::Rank;

/// KV key holding the failure record: `"<epoch>|<rank>,<rank>,..."`.
pub const STATE_KEY: &str = "failure/state";

/// KV key for a rank's heartbeat lease.
pub fn hb_key(rank: Rank) -> String {
    format!("hb/{rank}")
}

/// Heartbeat value published by a rank that left the job gracefully
/// (deregistration — not a missed lease).
const RETIRED: &str = "retired";

/// Decodes a failure record (`"<epoch>|<rank>,<rank>,..."`). Public so
/// the model checker's two-phase CAS declaration path runs against the
/// *real* wire format instead of a parallel one.
pub fn parse_state(s: &str) -> (u64, Vec<Rank>) {
    let (epoch, list) = s.split_once('|').unwrap_or(("0", ""));
    let ranks = list.split(',').filter_map(|r| r.parse().ok()).collect();
    (epoch.parse().unwrap_or(0), ranks)
}

/// Encodes a failure record; inverse of [`parse_state`].
pub fn format_state(epoch: u64, ranks: &[Rank]) -> String {
    let list: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
    format!("{epoch}|{}", list.join(","))
}

/// The current failure epoch and declared-dead ranks.
pub fn failure_state(kv: &KvStore) -> (Epoch, Vec<Rank>) {
    let (epoch, dead) = kv
        .get(STATE_KEY)
        .map(|s| parse_state(&s))
        .unwrap_or((0, Vec::new()));
    (Epoch::new(epoch), dead)
}

/// The current failure epoch ([`Epoch::default`] = no failure ever
/// declared).
pub fn failure_epoch(kv: &KvStore) -> Epoch {
    failure_state(kv).0
}

/// Declares `ranks` failed, atomically unioning them into the dead set
/// and bumping the epoch *only if the set grew*. Idempotent: concurrent
/// detectors reporting the same rank produce one epoch bump. Returns the
/// resulting epoch.
pub fn declare_failed(kv: &KvStore, ranks: &[Rank]) -> Epoch {
    let v = kv.update(STATE_KEY, |cur| {
        let (epoch, mut dead) = cur.map(parse_state).unwrap_or((0, Vec::new()));
        let mut grew = Vec::new();
        for &r in ranks {
            if !dead.contains(&r) {
                dead.push(r);
                grew.push(r);
            }
        }
        if grew.is_empty() {
            return None;
        }
        dead.sort_unstable();
        // Observability: emit while still holding the store lock, so the
        // declaration timestamp precedes every observer's first look at
        // the new state (the timeline's detect/undo boundary depends on
        // this ordering).
        swift_obs::emit(|| Event::Declared {
            epoch: Epoch::new(epoch + 1),
            ranks: grew.clone(),
        });
        Some(format_state(epoch + 1, &dead))
    });
    Epoch::new(v.map(|s| parse_state(&s).0).unwrap_or(0))
}

/// Removes `ranks` from the dead set (their replacements have rejoined).
/// The epoch is *not* rolled back — it only ever increases.
pub fn declare_recovered(kv: &KvStore, ranks: &[Rank]) {
    kv.update(STATE_KEY, |cur| {
        let (epoch, mut dead) = cur.map(parse_state).unwrap_or((0, Vec::new()));
        let before = dead.len();
        dead.retain(|r| !ranks.contains(r));
        (dead.len() != before).then(|| format_state(epoch, &dead))
    });
}

/// Lease parameters for heartbeat-based detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often a live rank publishes its beat.
    pub interval: Duration,
    /// How long without a fresh beat before the monitor declares the
    /// rank failed.
    pub timeout: Duration,
}

/// Environment override for [`HeartbeatConfig::interval`], milliseconds.
pub const HEARTBEAT_MS_ENV: &str = "SWIFT_HEARTBEAT_MS";
/// Environment override for [`HeartbeatConfig::timeout`], milliseconds.
pub const LEASE_MS_ENV: &str = "SWIFT_LEASE_MS";

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(5),
            timeout: Duration::from_millis(100),
        }
    }
}

impl HeartbeatConfig {
    /// The defaults, with `SWIFT_HEARTBEAT_MS` / `SWIFT_LEASE_MS`
    /// overriding the beat interval and lease timeout. The result is
    /// [`validate`](Self::validate)d, so a deployment cannot configure a
    /// lease the publisher is guaranteed to miss.
    pub fn from_env() -> Result<Self, ClusterError> {
        let mut cfg = HeartbeatConfig::default();
        for (var, field) in [
            (HEARTBEAT_MS_ENV, &mut cfg.interval),
            (LEASE_MS_ENV, &mut cfg.timeout),
        ] {
            if let Ok(raw) = std::env::var(var) {
                let ms: u64 = raw
                    .parse()
                    .map_err(|_| ClusterError::InvalidHeartbeatConfig {
                        detail: format!("{var}={raw:?} is not a millisecond count"),
                    })?;
                *field = Duration::from_millis(ms);
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the lease arithmetic: the interval must be non-zero and
    /// the timeout strictly longer than two beat intervals, otherwise a
    /// single delayed beat (scheduling jitter on a loaded machine)
    /// expires the lease and manufactures false suspicion.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.interval.is_zero() {
            return Err(ClusterError::InvalidHeartbeatConfig {
                detail: "heartbeat interval must be non-zero".into(),
            });
        }
        if self.timeout <= self.interval * 2 {
            return Err(ClusterError::InvalidHeartbeatConfig {
                detail: format!(
                    "lease timeout {:?} must exceed 2x the heartbeat interval {:?}",
                    self.timeout, self.interval
                ),
            });
        }
        Ok(())
    }
}

/// The pure lease-expiry core of the heartbeat monitor: feed it one
/// sweep per tick with an explicit `now`, and it reports which ranks'
/// leases just expired. No threads, no wall clock — the
/// [`HeartbeatMonitor`] thread drives it with the system clock, and the
/// model checker (`swift-mc`) drives it with a [`VirtualClock`], where
/// "lease expires" is a schedule point rather than a race.
///
/// [`VirtualClock`]: crate::clock::VirtualClock
pub struct LeaseTable {
    cfg: HeartbeatConfig,
    /// Per-rank (last value, when it last changed).
    seen: HashMap<Rank, (Option<String>, Instant)>,
}

impl LeaseTable {
    /// An empty table; the first sweep seeds every rank's lease clock.
    pub fn new(cfg: HeartbeatConfig) -> Self {
        LeaseTable {
            cfg,
            seen: HashMap::new(),
        }
    }

    /// One monitor sweep at time `now` over ranks `0..world`, returning
    /// the ranks whose lease expired this sweep. The caller declares
    /// them (all in one batch, so simultaneous failures produce a
    /// single epoch bump); each expired rank's lease clock restarts so
    /// it is reported at most once per timeout window.
    pub fn sweep(&mut self, kv: &KvStore, world: usize, now: Instant) -> Vec<Rank> {
        let (_, dead) = failure_state(kv);
        let mut expired = Vec::new();
        for rank in 0..world {
            let val = kv.get(&hb_key(rank));
            if dead.contains(&rank) || val.as_deref() == Some(RETIRED) {
                // Declared or deregistered: restart the lease clock so
                // a future replacement gets a full timeout to produce
                // its first beat.
                self.seen.insert(rank, (val, now));
                continue;
            }
            let entry = self.seen.entry(rank).or_insert_with(|| (val.clone(), now));
            if entry.0 != val {
                *entry = (val, now);
            } else if now.saturating_duration_since(entry.1) > self.cfg.timeout {
                expired.push(rank);
                entry.1 = now;
            }
        }
        expired
    }
}

/// A rank's heartbeat publisher thread.
///
/// Models the machine's NIC: it beats while the machine is up, goes
/// silent the instant the machine is killed, and pauses through injected
/// stalls (both are the *mechanism* by which a fault manifests, not a
/// detection channel — detection happens in [`HeartbeatMonitor`], which
/// sees only the lease going stale). Dropping the handle deregisters
/// gracefully when — and only when — the machine is still alive.
pub struct Heartbeat {
    rank: Rank,
    kv: KvStore,
    fc: Arc<FailureController>,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts beating for `rank` every `cfg.interval`. Panicking
    /// convenience wrapper around [`Heartbeat::try_start`].
    pub fn start(
        kv: KvStore,
        rank: Rank,
        cfg: HeartbeatConfig,
        fc: Arc<FailureController>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        match Self::try_start(kv, rank, cfg, fc, injector) {
            Ok(hb) => hb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Starts beating for `rank` every `cfg.interval`, surfacing a
    /// failed thread spawn as a typed error. Runs on the system clock;
    /// the model checker publishes beats directly instead of spawning
    /// this thread.
    pub fn try_start(
        kv: KvStore,
        rank: Rank,
        cfg: HeartbeatConfig,
        fc: Arc<FailureController>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Result<Self, ClusterError> {
        let clock = clock::system();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (kv, fc, stop) = (kv.clone(), fc.clone(), stop.clone());
            thread::Builder::new()
                .name(format!("hb-{rank}"))
                .spawn(move || {
                    let key = hb_key(rank);
                    let mut beat = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        // A killed machine's NIC falls silent immediately.
                        if fc.is_dead(rank) {
                            return;
                        }
                        // An injected stall freezes the whole machine —
                        // including its heartbeats (this is what
                        // manufactures false suspicion).
                        if let Some(end) = injector.as_ref().and_then(|i| i.stalled_until(rank)) {
                            let now = clock.now();
                            if end > now {
                                clock.sleep((end - now).min(cfg.interval));
                                continue;
                            }
                        }
                        beat += 1;
                        kv.set(&key, beat.to_string());
                        clock.sleep(cfg.interval);
                    }
                })
                .map_err(|e| ClusterError::SpawnFailed {
                    what: format!("heartbeat thread for rank {rank}"),
                    detail: e.to_string(),
                })?
        };
        Ok(Heartbeat {
            rank,
            kv,
            fc,
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // Graceful deregistration — only a live machine can say goodbye.
        if !self.fc.is_dead(self.rank) {
            self.kv.set(&hb_key(self.rank), RETIRED);
        }
    }
}

/// The cluster-side lease monitor: declares a rank failed when its
/// heartbeat goes stale for longer than [`HeartbeatConfig::timeout`].
pub struct HeartbeatMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl HeartbeatMonitor {
    /// Watches ranks `0..world`, polling at half the beat interval.
    /// Panicking convenience wrapper around
    /// [`HeartbeatMonitor::try_start`].
    pub fn start(kv: KvStore, cfg: HeartbeatConfig, world: usize) -> Self {
        match Self::try_start(kv, cfg, world) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Watches ranks `0..world`, surfacing a failed thread spawn as a
    /// typed error. The expiry logic lives in [`LeaseTable`]; this
    /// thread merely drives it on the system clock.
    pub fn try_start(
        kv: KvStore,
        cfg: HeartbeatConfig,
        world: usize,
    ) -> Result<Self, ClusterError> {
        let clock = clock::system();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = stop.clone();
            thread::Builder::new()
                .name("hb-monitor".into())
                .spawn(move || {
                    let mut leases = LeaseTable::new(cfg);
                    let tick = (cfg.interval / 2).max(Duration::from_micros(500));
                    while !stop.load(Ordering::SeqCst) {
                        let expired = leases.sweep(&kv, world, clock.now());
                        if !expired.is_empty() {
                            declare_failed(&kv, &expired);
                        }
                        clock.sleep(tick);
                    }
                })
                .map_err(|e| ClusterError::SpawnFailed {
                    what: "heartbeat monitor thread".into(),
                    detail: e.to_string(),
                })?
        };
        Ok(HeartbeatMonitor {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for HeartbeatMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::topology::Topology;

    #[test]
    fn declare_failed_is_idempotent_and_unions() {
        let kv = KvStore::new();
        assert_eq!(failure_state(&kv), (Epoch::new(0), vec![]));
        assert_eq!(declare_failed(&kv, &[2]), Epoch::new(1));
        assert_eq!(
            declare_failed(&kv, &[2]),
            Epoch::new(1),
            "re-declaring must not bump the epoch"
        );
        assert_eq!(declare_failed(&kv, &[0, 2]), Epoch::new(2));
        assert_eq!(failure_state(&kv), (Epoch::new(2), vec![0, 2]));
        declare_recovered(&kv, &[2]);
        assert_eq!(failure_state(&kv), (Epoch::new(2), vec![0]));
        declare_recovered(&kv, &[0]);
        assert_eq!(failure_state(&kv), (Epoch::new(2), vec![]));
    }

    #[test]
    fn concurrent_declarations_lose_no_ranks() {
        let kv = KvStore::new();
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let kv = kv.clone();
                thread::spawn(move || declare_failed(&kv, &[r]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (epoch, dead) = failure_state(&kv);
        assert_eq!(epoch, Epoch::new(8));
        assert_eq!(dead, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn lease_table_expiry_is_deterministic_under_virtual_time() {
        use crate::clock::{Clock, VirtualClock};
        let kv = KvStore::new();
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(5),
            timeout: Duration::from_millis(100),
        };
        let clock = VirtualClock::new();
        let mut leases = LeaseTable::new(cfg);
        kv.set(&hb_key(0), "1");
        kv.set(&hb_key(1), "1");
        // While virtual time is frozen no amount of sweeping expires a
        // lease — expiry is a function of the clock, not of sweep count.
        for _ in 0..100 {
            assert_eq!(leases.sweep(&kv, 2, clock.now()), vec![]);
        }
        // Exactly at the bound the lease still holds (strict `>`), and a
        // fresh beat restarts rank 0's window.
        clock.advance(cfg.timeout);
        kv.set(&hb_key(0), "2");
        assert_eq!(leases.sweep(&kv, 2, clock.now()), vec![]);
        // One nanosecond past the bound only the silent rank expires,
        // and expiry restarts its window so it is reported exactly once.
        clock.advance(Duration::from_nanos(1));
        assert_eq!(leases.sweep(&kv, 2, clock.now()), vec![1]);
        assert_eq!(leases.sweep(&kv, 2, clock.now()), vec![]);
    }

    #[test]
    fn monitor_declares_silent_rank_and_spares_beating_one() {
        let kv = KvStore::new();
        let fc = FailureController::new(Topology::uniform(2, 1));
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(2),
            timeout: Duration::from_millis(30),
        };
        // Rank 0 beats; rank 1 never starts.
        let hb0 = Heartbeat::start(kv.clone(), 0, cfg, fc.clone(), None);
        let _mon = HeartbeatMonitor::start(kv.clone(), cfg, 2);
        let deadline = Instant::now() + Duration::from_secs(5);
        while failure_state(&kv).1 != vec![1] {
            assert!(Instant::now() < deadline, "monitor never declared rank 1");
            thread::sleep(Duration::from_millis(2));
        }
        drop(hb0);
        // Graceful drop deregisters: rank 0 must not be declared.
        thread::sleep(Duration::from_millis(60));
        assert_eq!(failure_state(&kv).1, vec![1]);
    }

    #[test]
    fn killed_rank_goes_silent_and_is_declared() {
        let kv = KvStore::new();
        let fc = FailureController::new(Topology::uniform(2, 1));
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(2),
            timeout: Duration::from_millis(25),
        };
        let _hb = Heartbeat::start(kv.clone(), 1, cfg, fc.clone(), None);
        let _mon = HeartbeatMonitor::start(kv.clone(), cfg, 2);
        thread::sleep(Duration::from_millis(10));
        fc.kill_machine(1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !failure_state(&kv).1.contains(&1) {
            assert!(
                Instant::now() < deadline,
                "kill was never detected via lease expiry"
            );
            thread::sleep(Duration::from_millis(2));
        }
    }

    /// A KV handle for the heartbeat path under test: the store itself,
    /// or a remote client round-tripping through a [`KvServer`] the way
    /// a worker process does.
    fn kv_backend(store: &KvStore, remote: bool) -> (KvStore, Option<crate::kv_remote::KvServer>) {
        if !remote {
            return (store.clone(), None);
        }
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!("swift-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("kv-{}.sock", NEXT.fetch_add(1, Ordering::SeqCst)));
        let server = crate::kv_remote::KvServer::bind(&path, store.clone()).unwrap();
        let client = KvStore::connect(&path, &crate::retry::RetryPolicy::poll()).unwrap();
        (client, Some(server))
    }

    /// Publishes beats by hand with the given inter-beat gaps, then
    /// reports whether the monitor ever declared rank 0.
    fn run_jittered_publisher(gaps_ms: &[u64], cfg: HeartbeatConfig, remote: bool) -> bool {
        let store = KvStore::new();
        let (kv, _server) = kv_backend(&store, remote);
        let _mon = HeartbeatMonitor::start(store.clone(), cfg, 1);
        for (i, &gap) in gaps_ms.iter().enumerate() {
            kv.set(&hb_key(0), (i + 1).to_string());
            thread::sleep(Duration::from_millis(gap));
        }
        kv.set(&hb_key(0), "final");
        let declared = failure_state(&store).1.contains(&0);
        kv.set(&hb_key(0), RETIRED);
        declared
    }

    mod proptests {
        use proptest::prelude::*;

        use super::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]

            // Liveness-side safety: a publisher whose inter-beat
            // jitter stays below the lease bound is never declared
            // dead, through either KV backend.
            #[test]
            fn jitter_below_lease_bound_is_never_suspected(
                gaps in prop::collection::vec(0u64..25, 3..10),
                remote in any::<bool>(),
            ) {
                // Lease 100ms vs gaps <= 25ms: even doubled by OS
                // scheduling noise, a gap cannot plausibly exhaust the
                // lease.
                let cfg = HeartbeatConfig {
                    interval: Duration::from_millis(2),
                    timeout: Duration::from_millis(100),
                };
                prop_assert!(
                    !run_jittered_publisher(&gaps, cfg, remote),
                    "live rank declared dead under jitter {gaps:?} (remote={remote})"
                );
            }

            // Detection-side liveness: after a real kill the monitor
            // always declares, within the lease bound plus scheduling
            // slack.
            #[test]
            fn killed_rank_is_declared_within_lease_bound(
                warmup_ms in 5u64..40,
                remote in any::<bool>(),
            ) {
                let cfg = HeartbeatConfig {
                    interval: Duration::from_millis(2),
                    timeout: Duration::from_millis(40),
                };
                let store = KvStore::new();
                let (kv, _server) = kv_backend(&store, remote);
                let fc = FailureController::new(Topology::uniform(1, 1));
                let _hb = Heartbeat::start(kv, 0, cfg, fc.clone(), None);
                let _mon = HeartbeatMonitor::start(store.clone(), cfg, 1);
                thread::sleep(Duration::from_millis(warmup_ms));
                fc.kill_machine(0);
                let killed_at = Instant::now();
                // Generous slack over the lease: the bound under test is
                // "bounded detection", not a tight latency SLO (that
                // lives in cluster.rs's
                // failure_detection_latency_is_bounded).
                let bound = cfg.timeout + Duration::from_millis(200);
                while !failure_state(&store).1.contains(&0) {
                    prop_assert!(
                        killed_at.elapsed() < bound,
                        "kill not declared within {bound:?} (remote={remote})"
                    );
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    #[test]
    fn stalled_rank_draws_false_suspicion() {
        let kv = KvStore::new();
        let fc = FailureController::new(Topology::uniform(2, 1));
        let inj = FaultInjector::new(
            FaultPlan::new(9).with_stall(0, 0, Duration::from_millis(80)),
            fc.clone(),
        );
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(2),
            timeout: Duration::from_millis(25),
        };
        let _hb = Heartbeat::start(kv.clone(), 0, cfg, fc.clone(), Some(inj));
        let _mon = HeartbeatMonitor::start(kv.clone(), cfg, 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !failure_state(&kv).1.contains(&0) {
            assert!(Instant::now() < deadline, "stall never drew suspicion");
            thread::sleep(Duration::from_millis(2));
        }
        // The rank is alive the whole time — suspicion is false.
        assert!(!fc.is_dead(0));
    }
}
