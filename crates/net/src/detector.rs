//! Observable failure detection: heartbeat leases and the key-value
//! failure state.
//!
//! The paper detects failures two ways (§6): communication errors
//! surfaced NCCL-style at the call site, and a failure flag in the rank-0
//! key-value store set by whoever notices first. This module is the
//! second path, generalized into an *epoch*: the KV store holds one
//! record `"epoch|r1,r2,..."` under [`STATE_KEY`] listing the declared
//! dead ranks, and the epoch bumps every time the set grows. Workers
//! stamp outgoing traffic with the epoch they have synchronized to, and
//! receivers fence anything older — so two overlapping recoveries can
//! never consume each other's traffic.
//!
//! Detection inputs are strictly *observable*: severed fabric links
//! (connection errors), channel disconnects, missing heartbeats, and
//! this KV record. Production code never reads the fault injector's
//! ground truth. A consequence is that detection can be *wrong*: a
//! stalled-but-alive rank stops heartbeating and gets declared dead
//! (false suspicion). The system survives because the suspected rank
//! fences itself — on its next communication it observes its own rank in
//! the dead set and unwinds exactly as if it had crashed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use swift_obs::{Epoch, Event};

use crate::failure::FailureController;
use crate::faults::FaultInjector;
use crate::kv::KvStore;
use crate::topology::Rank;

/// KV key holding the failure record: `"<epoch>|<rank>,<rank>,..."`.
pub const STATE_KEY: &str = "failure/state";

/// KV key for a rank's heartbeat lease.
pub fn hb_key(rank: Rank) -> String {
    format!("hb/{rank}")
}

/// Heartbeat value published by a rank that left the job gracefully
/// (deregistration — not a missed lease).
const RETIRED: &str = "retired";

fn parse_state(s: &str) -> (u64, Vec<Rank>) {
    let (epoch, list) = s.split_once('|').unwrap_or(("0", ""));
    let ranks = list.split(',').filter_map(|r| r.parse().ok()).collect();
    (epoch.parse().unwrap_or(0), ranks)
}

fn format_state(epoch: u64, ranks: &[Rank]) -> String {
    let list: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
    format!("{epoch}|{}", list.join(","))
}

/// The current failure epoch and declared-dead ranks.
pub fn failure_state(kv: &KvStore) -> (Epoch, Vec<Rank>) {
    let (epoch, dead) = kv
        .get(STATE_KEY)
        .map(|s| parse_state(&s))
        .unwrap_or((0, Vec::new()));
    (Epoch::new(epoch), dead)
}

/// The current failure epoch ([`Epoch::default`] = no failure ever
/// declared).
pub fn failure_epoch(kv: &KvStore) -> Epoch {
    failure_state(kv).0
}

/// Declares `ranks` failed, atomically unioning them into the dead set
/// and bumping the epoch *only if the set grew*. Idempotent: concurrent
/// detectors reporting the same rank produce one epoch bump. Returns the
/// resulting epoch.
pub fn declare_failed(kv: &KvStore, ranks: &[Rank]) -> Epoch {
    let v = kv.update(STATE_KEY, |cur| {
        let (epoch, mut dead) = cur.map(parse_state).unwrap_or((0, Vec::new()));
        let mut grew = Vec::new();
        for &r in ranks {
            if !dead.contains(&r) {
                dead.push(r);
                grew.push(r);
            }
        }
        if grew.is_empty() {
            return None;
        }
        dead.sort_unstable();
        // Observability: emit while still holding the store lock, so the
        // declaration timestamp precedes every observer's first look at
        // the new state (the timeline's detect/undo boundary depends on
        // this ordering).
        swift_obs::emit(|| Event::Declared {
            epoch: Epoch::new(epoch + 1),
            ranks: grew.clone(),
        });
        Some(format_state(epoch + 1, &dead))
    });
    Epoch::new(v.map(|s| parse_state(&s).0).unwrap_or(0))
}

/// Removes `ranks` from the dead set (their replacements have rejoined).
/// The epoch is *not* rolled back — it only ever increases.
pub fn declare_recovered(kv: &KvStore, ranks: &[Rank]) {
    kv.update(STATE_KEY, |cur| {
        let (epoch, mut dead) = cur.map(parse_state).unwrap_or((0, Vec::new()));
        let before = dead.len();
        dead.retain(|r| !ranks.contains(r));
        (dead.len() != before).then(|| format_state(epoch, &dead))
    });
}

/// Lease parameters for heartbeat-based detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often a live rank publishes its beat.
    pub interval: Duration,
    /// How long without a fresh beat before the monitor declares the
    /// rank failed.
    pub timeout: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(5),
            timeout: Duration::from_millis(100),
        }
    }
}

/// A rank's heartbeat publisher thread.
///
/// Models the machine's NIC: it beats while the machine is up, goes
/// silent the instant the machine is killed, and pauses through injected
/// stalls (both are the *mechanism* by which a fault manifests, not a
/// detection channel — detection happens in [`HeartbeatMonitor`], which
/// sees only the lease going stale). Dropping the handle deregisters
/// gracefully when — and only when — the machine is still alive.
pub struct Heartbeat {
    rank: Rank,
    kv: KvStore,
    fc: Arc<FailureController>,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts beating for `rank` every `cfg.interval`.
    pub fn start(
        kv: KvStore,
        rank: Rank,
        cfg: HeartbeatConfig,
        fc: Arc<FailureController>,
        injector: Option<Arc<FaultInjector>>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (kv, fc, stop) = (kv.clone(), fc.clone(), stop.clone());
            thread::Builder::new()
                .name(format!("hb-{rank}"))
                .spawn(move || {
                    let key = hb_key(rank);
                    let mut beat = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        // A killed machine's NIC falls silent immediately.
                        if fc.is_dead(rank) {
                            return;
                        }
                        // An injected stall freezes the whole machine —
                        // including its heartbeats (this is what
                        // manufactures false suspicion).
                        if let Some(end) = injector.as_ref().and_then(|i| i.stalled_until(rank)) {
                            let now = Instant::now();
                            if end > now {
                                thread::sleep((end - now).min(cfg.interval));
                                continue;
                            }
                        }
                        beat += 1;
                        kv.set(&key, beat.to_string());
                        thread::sleep(cfg.interval);
                    }
                })
                .expect("failed to spawn heartbeat thread")
        };
        Heartbeat {
            rank,
            kv,
            fc,
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // Graceful deregistration — only a live machine can say goodbye.
        if !self.fc.is_dead(self.rank) {
            self.kv.set(&hb_key(self.rank), RETIRED);
        }
    }
}

/// The cluster-side lease monitor: declares a rank failed when its
/// heartbeat goes stale for longer than [`HeartbeatConfig::timeout`].
pub struct HeartbeatMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl HeartbeatMonitor {
    /// Watches ranks `0..world`, polling at half the beat interval.
    pub fn start(kv: KvStore, cfg: HeartbeatConfig, world: usize) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = stop.clone();
            thread::Builder::new()
                .name("hb-monitor".into())
                .spawn(move || {
                    // Per-rank (last value, when it last changed).
                    let mut seen: HashMap<Rank, (Option<String>, Instant)> = HashMap::new();
                    let tick = (cfg.interval / 2).max(Duration::from_micros(500));
                    while !stop.load(Ordering::SeqCst) {
                        let (_, dead) = failure_state(&kv);
                        let now = Instant::now();
                        // Collect every expired lease first and declare the
                        // batch in one atomic call: simultaneous failures
                        // produce a single epoch bump.
                        let mut expired = Vec::new();
                        for rank in 0..world {
                            let val = kv.get(&hb_key(rank));
                            if dead.contains(&rank) || val.as_deref() == Some(RETIRED) {
                                // Declared or deregistered: restart the
                                // lease clock so a future replacement gets
                                // a full timeout to produce its first beat.
                                seen.insert(rank, (val, now));
                                continue;
                            }
                            let entry = seen.entry(rank).or_insert_with(|| (val.clone(), now));
                            if entry.0 != val {
                                *entry = (val, now);
                            } else if now - entry.1 > cfg.timeout {
                                expired.push(rank);
                                entry.1 = now;
                            }
                        }
                        if !expired.is_empty() {
                            declare_failed(&kv, &expired);
                        }
                        thread::sleep(tick);
                    }
                })
                .expect("failed to spawn heartbeat monitor")
        };
        HeartbeatMonitor {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HeartbeatMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::topology::Topology;

    #[test]
    fn declare_failed_is_idempotent_and_unions() {
        let kv = KvStore::new();
        assert_eq!(failure_state(&kv), (Epoch::new(0), vec![]));
        assert_eq!(declare_failed(&kv, &[2]), Epoch::new(1));
        assert_eq!(
            declare_failed(&kv, &[2]),
            Epoch::new(1),
            "re-declaring must not bump the epoch"
        );
        assert_eq!(declare_failed(&kv, &[0, 2]), Epoch::new(2));
        assert_eq!(failure_state(&kv), (Epoch::new(2), vec![0, 2]));
        declare_recovered(&kv, &[2]);
        assert_eq!(failure_state(&kv), (Epoch::new(2), vec![0]));
        declare_recovered(&kv, &[0]);
        assert_eq!(failure_state(&kv), (Epoch::new(2), vec![]));
    }

    #[test]
    fn concurrent_declarations_lose_no_ranks() {
        let kv = KvStore::new();
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let kv = kv.clone();
                thread::spawn(move || declare_failed(&kv, &[r]))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (epoch, dead) = failure_state(&kv);
        assert_eq!(epoch, Epoch::new(8));
        assert_eq!(dead, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn monitor_declares_silent_rank_and_spares_beating_one() {
        let kv = KvStore::new();
        let fc = FailureController::new(Topology::uniform(2, 1));
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(2),
            timeout: Duration::from_millis(30),
        };
        // Rank 0 beats; rank 1 never starts.
        let hb0 = Heartbeat::start(kv.clone(), 0, cfg, fc.clone(), None);
        let _mon = HeartbeatMonitor::start(kv.clone(), cfg, 2);
        let deadline = Instant::now() + Duration::from_secs(5);
        while failure_state(&kv).1 != vec![1] {
            assert!(Instant::now() < deadline, "monitor never declared rank 1");
            thread::sleep(Duration::from_millis(2));
        }
        drop(hb0);
        // Graceful drop deregisters: rank 0 must not be declared.
        thread::sleep(Duration::from_millis(60));
        assert_eq!(failure_state(&kv).1, vec![1]);
    }

    #[test]
    fn killed_rank_goes_silent_and_is_declared() {
        let kv = KvStore::new();
        let fc = FailureController::new(Topology::uniform(2, 1));
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(2),
            timeout: Duration::from_millis(25),
        };
        let _hb = Heartbeat::start(kv.clone(), 1, cfg, fc.clone(), None);
        let _mon = HeartbeatMonitor::start(kv.clone(), cfg, 2);
        thread::sleep(Duration::from_millis(10));
        fc.kill_machine(1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !failure_state(&kv).1.contains(&1) {
            assert!(
                Instant::now() < deadline,
                "kill was never detected via lease expiry"
            );
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn stalled_rank_draws_false_suspicion() {
        let kv = KvStore::new();
        let fc = FailureController::new(Topology::uniform(2, 1));
        let inj = FaultInjector::new(
            FaultPlan::new(9).with_stall(0, 0, Duration::from_millis(80)),
            fc.clone(),
        );
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(2),
            timeout: Duration::from_millis(25),
        };
        let _hb = Heartbeat::start(kv.clone(), 0, cfg, fc.clone(), Some(inj));
        let _mon = HeartbeatMonitor::start(kv.clone(), cfg, 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !failure_state(&kv).1.contains(&0) {
            assert!(Instant::now() < deadline, "stall never drew suspicion");
            thread::sleep(Duration::from_millis(2));
        }
        // The rank is alive the whole time — suspicion is false.
        assert!(!fc.is_dead(0));
    }
}
