//! The cluster launcher: spawns one OS thread per worker rank and wires up
//! communicators, the failure controller, and the key-value store.

use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

use crate::comm::{build_comms, respawn_comm, Comm, CommError, Fabric};
use crate::detector::{Heartbeat, HeartbeatConfig, HeartbeatMonitor};
use crate::failure::FailureController;
use crate::faults::{FaultInjector, FaultPlan};
use crate::kv::KvStore;
use crate::topology::{Rank, Topology};
use crate::trace::Tracer;

/// A cluster-lifecycle error (misuse of the launcher API), kept separate
/// from [`CommError`] which reports *runtime* failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The context for a rank was requested twice without a respawn.
    CtxAlreadyTaken {
        /// The doubly-requested rank.
        rank: Rank,
    },
    /// A rank outside the topology was named.
    UnknownRank {
        /// The out-of-range rank.
        rank: Rank,
        /// The world size it must be below.
        world: usize,
    },
    /// An OS-level spawn (worker or detector thread) failed.
    SpawnFailed {
        /// What was being spawned.
        what: String,
        /// The OS error.
        detail: String,
    },
    /// Heartbeat lease parameters that cannot work (e.g. a lease shorter
    /// than the beat interval allows).
    InvalidHeartbeatConfig {
        /// What is wrong with them.
        detail: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::CtxAlreadyTaken { rank } => {
                write!(f, "context for rank {rank} already taken")
            }
            ClusterError::UnknownRank { rank, world } => {
                write!(f, "rank {rank} outside world of size {world}")
            }
            ClusterError::SpawnFailed { what, detail } => {
                write!(f, "failed to spawn {what}: {detail}")
            }
            ClusterError::InvalidHeartbeatConfig { detail } => {
                write!(f, "invalid heartbeat config: {detail}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Everything a worker thread needs.
pub struct WorkerCtx {
    /// This worker's communicator.
    pub comm: Comm,
    /// The shared key-value store (rank 0's in the paper).
    pub kv: KvStore,
    /// Cluster topology.
    pub topology: Topology,
    /// Heartbeat lease publisher (when the cluster enables heartbeats).
    /// Owned by the context so a crashed worker's unwinding stops its
    /// beats — which is precisely how the monitor learns of the death.
    heartbeat: Option<Heartbeat>,
}

impl WorkerCtx {
    /// Assembles a context from its parts — the process backend's
    /// constructor: a `swift-worker` process builds its communicator
    /// over a socket transport and its KV handle over the supervisor's
    /// socket, then wraps them here to run the same worker loops the
    /// in-process cluster drives.
    pub fn from_parts(
        comm: Comm,
        kv: KvStore,
        topology: Topology,
        heartbeat: Option<Heartbeat>,
    ) -> Self {
        WorkerCtx {
            comm,
            kv,
            topology,
            heartbeat,
        }
    }

    /// This worker's rank.
    pub fn rank(&self) -> Rank {
        self.comm.rank()
    }

    /// The machine hosting this worker.
    pub fn machine(&self) -> usize {
        self.topology.machine_of(self.comm.rank())
    }

    /// Whether this context is publishing heartbeats.
    pub fn heartbeating(&self) -> bool {
        self.heartbeat.is_some()
    }

    /// Reports training progress to the fault injector so `AtIteration`
    /// crash triggers can fire. Returns `Err(SelfKilled)` when the
    /// trigger just took this worker's machine down.
    pub fn note_iteration(&self, iteration: u64) -> Result<(), CommError> {
        if let Some(inj) = self.comm.injector() {
            if inj.note_iteration(self.rank(), iteration) {
                return Err(CommError::SelfKilled);
            }
        }
        Ok(())
    }
}

/// Declarative construction of a [`Cluster`]: topology plus the
/// optional fault plan, heartbeat detection and protocol tracing, in
/// one builder instead of a constructor-then-mutate dance.
///
/// ```
/// use swift_net::{Cluster, FaultPlan, Topology};
///
/// let cluster = Cluster::builder(Topology::uniform(2, 1))
///     .faults(FaultPlan::chaos(7))
///     .tracing()
///     .build();
/// assert!(cluster.injector().is_some());
/// assert!(cluster.tracer().is_some());
/// ```
#[must_use = "a ClusterBuilder does nothing until .build() is called"]
#[derive(Debug)]
pub struct ClusterBuilder {
    topology: Topology,
    plan: Option<FaultPlan>,
    heartbeats: Option<HeartbeatConfig>,
    tracing: bool,
}

impl ClusterBuilder {
    /// Starts a builder for `topology` with no faults, no heartbeats and
    /// no tracing.
    pub fn new(topology: Topology) -> Self {
        ClusterBuilder {
            topology,
            plan: None,
            heartbeats: None,
            tracing: false,
        }
    }

    /// Installs a fault plan on the fabric (retrievable afterwards via
    /// [`Cluster::injector`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Enables heartbeat-lease failure detection.
    pub fn heartbeats(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeats = Some(cfg);
        self
    }

    /// Enables heartbeat-lease failure detection with the defaults as
    /// overridden by `SWIFT_HEARTBEAT_MS` / `SWIFT_LEASE_MS` (validated:
    /// the lease must exceed twice the beat interval).
    pub fn heartbeats_from_env(self) -> Result<Self, ClusterError> {
        Ok(self.heartbeats(HeartbeatConfig::from_env()?))
    }

    /// Enables protocol tracing (retrievable afterwards via
    /// [`Cluster::tracer`]).
    pub fn tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Builds the cluster with everything installed before any worker
    /// can run, so coverage is complete from the first message.
    pub fn build(self) -> Cluster {
        let cluster = Cluster::new(self.topology);
        if let Some(plan) = self.plan {
            cluster.install_faults(plan);
        }
        if let Some(cfg) = self.heartbeats {
            cluster.enable_heartbeats(cfg);
        }
        if self.tracing {
            cluster.enable_tracing();
        }
        cluster
    }
}

/// A running in-process cluster.
///
/// Created with [`Cluster::builder`] (or [`Cluster::new`] for a plain
/// fabric); worker threads are spawned with [`Cluster::spawn`]. The
/// test/driver side keeps the handle to inject failures and spawn
/// replacement workers.
pub struct Cluster {
    topology: Topology,
    fc: Arc<FailureController>,
    kv: KvStore,
    fabric: Arc<Fabric>,
    pending: Mutex<Vec<Option<Comm>>>,
    hb_cfg: Mutex<Option<HeartbeatConfig>>,
    monitor: Mutex<Option<HeartbeatMonitor>>,
}

impl Cluster {
    /// Builds the fabric for `topology`.
    pub fn new(topology: Topology) -> Self {
        let fc = FailureController::new(topology.clone());
        let kv = KvStore::new();
        let (fabric, comms) = build_comms(topology.world_size(), fc.clone(), kv.clone());
        Cluster {
            topology,
            fc,
            kv,
            fabric,
            pending: Mutex::new(comms.into_iter().map(Some).collect()),
            hb_cfg: Mutex::new(None),
            monitor: Mutex::new(None),
        }
    }

    /// Starts a [`ClusterBuilder`] for `topology`.
    pub fn builder(topology: Topology) -> ClusterBuilder {
        ClusterBuilder::new(topology)
    }

    /// Builds a cluster with a fault plan installed on the fabric.
    #[deprecated(
        since = "0.1.0",
        note = "use Cluster::builder(topology).faults(plan).build() and Cluster::injector()"
    )]
    pub fn with_faults(topology: Topology, plan: FaultPlan) -> (Self, Arc<FaultInjector>) {
        let cluster = Cluster::new(topology);
        let inj = cluster.install_faults(plan);
        (cluster, inj)
    }

    /// The fault injector installed on the fabric, if any.
    pub fn injector(&self) -> Option<Arc<FaultInjector>> {
        self.fabric.injector()
    }

    /// The protocol tracer installed on the fabric, if any.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.fabric.tracer()
    }

    /// Installs `plan` on the fabric (call before spawning workers for
    /// full coverage). Returns the injector for stats and assertions.
    pub fn install_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let inj = FaultInjector::new(plan, self.fc.clone());
        self.fabric.install_injector(inj.clone());
        inj
    }

    /// Turns on heartbeat-lease failure detection: every context taken
    /// from now on publishes a lease, and a monitor thread declares
    /// ranks whose lease goes stale. Idempotent. Panicking convenience
    /// wrapper around [`Cluster::try_enable_heartbeats`].
    pub fn enable_heartbeats(&self, cfg: HeartbeatConfig) {
        if let Err(e) = self.try_enable_heartbeats(cfg) {
            panic!("{e}");
        }
    }

    /// Turns on heartbeat-lease failure detection, surfacing an invalid
    /// lease configuration or a failed monitor spawn as a typed error.
    pub fn try_enable_heartbeats(&self, cfg: HeartbeatConfig) -> Result<(), ClusterError> {
        cfg.validate()?;
        *self.hb_cfg.lock() = Some(cfg);
        let mut mon = self.monitor.lock();
        if mon.is_none() {
            *mon = Some(HeartbeatMonitor::try_start(
                self.kv.clone(),
                cfg,
                self.topology.world_size(),
            )?);
        }
        Ok(())
    }

    /// Stops the heartbeat monitor (graceful shutdown: a driver that is
    /// about to tear the cluster down should stop suspecting it first).
    pub fn stop_heartbeat_monitor(&self) {
        *self.hb_cfg.lock() = None;
        *self.monitor.lock() = None;
    }

    /// Turns on protocol tracing: every subsequent send, delivery, epoch
    /// bump and purge is recorded with vector clocks. Returns the tracer;
    /// snapshot it after the run and feed the trace to `swift-verify`'s
    /// race checker. Call before spawning workers for a complete trace.
    pub fn enable_tracing(&self) -> Arc<Tracer> {
        let tracer = Tracer::new(self.topology.world_size());
        self.fabric.install_tracer(tracer.clone());
        tracer
    }

    /// The shared channel fabric.
    pub fn fabric(&self) -> Arc<Fabric> {
        self.fabric.clone()
    }

    /// The failure controller (the injection mechanism; production code
    /// must not consult it for detection).
    pub fn failure_controller(&self) -> Arc<FailureController> {
        self.fc.clone()
    }

    /// The shared key-value store.
    pub fn kv(&self) -> KvStore {
        self.kv.clone()
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Takes the worker context for `rank`, reporting misuse as a typed
    /// error instead of panicking (each rank's context can be taken
    /// exactly once; use [`Cluster::respawn`] for replacements).
    pub fn try_take_ctx(&self, rank: Rank) -> Result<WorkerCtx, ClusterError> {
        let mut pending = self.pending.lock();
        let slot = pending.get_mut(rank).ok_or(ClusterError::UnknownRank {
            rank,
            world: self.topology.world_size(),
        })?;
        let comm = slot.take().ok_or(ClusterError::CtxAlreadyTaken { rank })?;
        drop(pending);
        self.try_make_ctx(comm)
    }

    /// Takes the worker context for `rank` (exactly once per rank; use
    /// [`Cluster::respawn`] for replacements). Panicking convenience
    /// wrapper around [`Cluster::try_take_ctx`] for test drivers.
    pub fn take_ctx(&self, rank: Rank) -> WorkerCtx {
        self.try_take_ctx(rank)
            .unwrap_or_else(|e| panic!("take_ctx: {e}"))
    }

    fn try_make_ctx(&self, comm: Comm) -> Result<WorkerCtx, ClusterError> {
        let heartbeat = match *self.hb_cfg.lock() {
            Some(cfg) => Some(Heartbeat::try_start(
                self.kv.clone(),
                comm.rank(),
                cfg,
                self.fc.clone(),
                self.fabric.injector(),
            )?),
            None => None,
        };
        Ok(WorkerCtx {
            comm,
            kv: self.kv.clone(),
            topology: self.topology.clone(),
            heartbeat,
        })
    }

    /// Spawns a worker thread for `rank` running `f`. Panicking
    /// convenience wrapper around [`Cluster::try_spawn`] for test
    /// drivers.
    pub fn spawn<R, F>(&self, rank: Rank, f: F) -> thread::JoinHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(WorkerCtx) -> R + Send + 'static,
    {
        match self.try_spawn(rank, f) {
            Ok(h) => h,
            Err(e) => panic!("spawn: {e}"),
        }
    }

    /// Spawns a worker thread for `rank` running `f`, surfacing a taken
    /// context or a failed OS spawn as a typed error.
    pub fn try_spawn<R, F>(&self, rank: Rank, f: F) -> Result<thread::JoinHandle<R>, ClusterError>
    where
        R: Send + 'static,
        F: FnOnce(WorkerCtx) -> R + Send + 'static,
    {
        let ctx = self.try_take_ctx(rank)?;
        thread::Builder::new()
            .name(format!("worker-{rank}"))
            .spawn(move || f(ctx))
            .map_err(|e| ClusterError::SpawnFailed {
                what: format!("worker thread for rank {rank}"),
                detail: e.to_string(),
            })
    }

    /// Creates a fresh context for a *replacement* worker under an
    /// existing rank (after [`FailureController::replace_machine`]): new
    /// inbox, stale messages discarded. Panicking convenience wrapper
    /// around [`Cluster::try_respawn`].
    pub fn respawn(&self, rank: Rank) -> WorkerCtx {
        match self.try_respawn(rank) {
            Ok(ctx) => ctx,
            Err(e) => panic!("respawn: {e}"),
        }
    }

    /// Creates a fresh context for a *replacement* worker under an
    /// existing rank, surfacing a failed heartbeat spawn as a typed
    /// error.
    pub fn try_respawn(&self, rank: Rank) -> Result<WorkerCtx, ClusterError> {
        let comm = respawn_comm(
            &self.fabric,
            rank,
            self.topology.world_size(),
            self.fc.clone(),
            self.kv.clone(),
        );
        self.try_make_ctx(comm)
    }

    /// Runs `f` on every rank and joins all threads, returning results in
    /// rank order. Panics in workers propagate.
    pub fn run_all<R, F>(topology: Topology, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(WorkerCtx) -> R + Send + Sync + 'static,
    {
        let cluster = Cluster::new(topology);
        let f = Arc::new(f);
        let handles: Vec<_> = (0..cluster.topology.world_size())
            .map(|rank| {
                let f = f.clone();
                cluster.spawn(rank, move |ctx| f(ctx))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // Re-raise the worker's own panic payload rather than
                // wrapping it (the caller sees the original message).
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::CommError;
    use swift_tensor::Tensor;

    #[test]
    fn try_take_ctx_reports_misuse_as_typed_errors() {
        let cluster = Cluster::new(Topology::uniform(1, 2));
        let _ctx0 = cluster.try_take_ctx(0).unwrap();
        assert_eq!(
            cluster.try_take_ctx(0).err(),
            Some(ClusterError::CtxAlreadyTaken { rank: 0 })
        );
        assert_eq!(
            cluster.try_take_ctx(5).err(),
            Some(ClusterError::UnknownRank { rank: 5, world: 2 })
        );
    }

    #[test]
    fn p2p_send_recv() {
        let results = Cluster::run_all(Topology::uniform(1, 2), |mut ctx| {
            if ctx.rank() == 0 {
                ctx.comm.send_tensor(1, 7, &Tensor::full([3], 5.0)).unwrap();
                0.0
            } else {
                ctx.comm.recv_tensor(0, 7).unwrap().sum()
            }
        });
        assert_eq!(results, vec![0.0, 15.0]);
    }

    #[test]
    fn out_of_order_tags() {
        let results = Cluster::run_all(Topology::uniform(1, 2), |mut ctx| {
            if ctx.rank() == 0 {
                ctx.comm.send_tensor(1, 1, &Tensor::scalar(1.0)).unwrap();
                ctx.comm.send_tensor(1, 2, &Tensor::scalar(2.0)).unwrap();
                0.0
            } else {
                // Receive tag 2 first, then tag 1 (stashed).
                let b = ctx.comm.recv_tensor(0, 2).unwrap().item();
                let a = ctx.comm.recv_tensor(0, 1).unwrap().item();
                b * 10.0 + a
            }
        });
        assert_eq!(results[1], 21.0);
    }

    #[test]
    fn allreduce_is_rank_sum_and_deterministic() {
        let run = || {
            Cluster::run_all(Topology::uniform(2, 2), |mut ctx| {
                let t = Tensor::full([4], (ctx.rank() + 1) as f32);
                ctx.comm.allreduce_sum(&t).unwrap()
            })
        };
        let a = run();
        // 1+2+3+4 = 10 per element.
        for t in &a {
            assert_eq!(t.data(), &[10.0, 10.0, 10.0, 10.0]);
        }
        let b = run();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.bit_eq(y));
        }
    }

    #[test]
    fn ring_allreduce_matches_tree() {
        let results = Cluster::run_all(Topology::uniform(1, 4), |mut ctx| {
            let t = Tensor::from_vec([10], (0..10).map(|i| (i + ctx.rank()) as f32).collect());
            let ring = ctx.comm.ring_allreduce_among(&[0, 1, 2, 3], &t).unwrap();
            let tree = ctx.comm.allreduce_sum(&t).unwrap();
            (ring, tree)
        });
        for (ring, tree) in &results {
            assert!(ring.max_abs_diff(tree) < 1e-5);
        }
        // All ranks agree.
        for (ring, _) in &results[1..] {
            assert!(ring.bit_eq(&results[0].0));
        }
    }

    #[test]
    fn broadcast_among_subgroup() {
        let results = Cluster::run_all(Topology::uniform(2, 2), |mut ctx| {
            let group = [1usize, 3];
            if group.contains(&ctx.rank()) {
                let data = (ctx.rank() == 1).then(|| Tensor::full([2], 9.0));
                ctx.comm
                    .broadcast_tensor_among(&group, 1, data.as_ref())
                    .unwrap()
                    .sum()
            } else {
                -1.0
            }
        });
        assert_eq!(results, vec![-1.0, 18.0, -1.0, 18.0]);
    }

    /// The chunked chain all-reduce must be *bitwise* equal to the
    /// monolithic gather at every chunk size — 1 KiB (many chunks),
    /// 64 KiB (the default), and whole-tensor (one chunk) — because the
    /// chain preserves the exact left-fold rounding order. Shapes are
    /// deliberately not chunk-aligned.
    #[test]
    fn chunked_allreduce_bitwise_matches_monolithic() {
        for world in [2usize, 3, 4] {
            for chunk_bytes in [1024usize, 64 * 1024, usize::MAX / 8] {
                let ranks: Vec<Rank> = (0..world).collect();
                let results = Cluster::run_all(Topology::uniform(world, 1), move |mut ctx| {
                    let n = 40_961; // prime-ish: last chunk is ragged
                    let t = Tensor::from_vec(
                        [n],
                        (0..n)
                            .map(|i| ((i * 31 + ctx.rank() * 17) % 1013) as f32 * 0.37 - 90.0)
                            .collect(),
                    );
                    let mono = ctx.comm.allreduce_sum_among(&ranks, &t).unwrap();
                    let chunked = ctx
                        .comm
                        .allreduce_sum_chunked_among(&ranks, &t, chunk_bytes)
                        .unwrap();
                    (mono, chunked)
                });
                for (mono, chunked) in &results {
                    assert!(
                        chunked.bit_eq(mono),
                        "chunked all-reduce diverged at world={world} chunk={chunk_bytes}"
                    );
                    assert!(chunked.bit_eq(&results[0].1), "ranks disagree");
                }
            }
        }
    }

    #[test]
    fn chunked_broadcast_bitwise_matches_monolithic() {
        for chunk_bytes in [1024usize, 64 * 1024, usize::MAX / 8] {
            let results = Cluster::run_all(Topology::uniform(3, 1), move |mut ctx| {
                let n = 33_333;
                let src = Tensor::from_vec([n], (0..n).map(|i| (i as f32).sin()).collect());
                let group = [0usize, 1, 2];
                // Bytes path: payload must survive chunking byte-exactly.
                let payload = (ctx.rank() == 1)
                    .then(|| bytes::Bytes::copy_from_slice(crate::bytemuck_f32(src.data())));
                let via_bytes = ctx
                    .comm
                    .broadcast_bytes_chunked_among(&group, 1, payload, chunk_bytes)
                    .unwrap();
                // Tensor path: install into pre-shaped storage.
                let mine = (ctx.rank() == 1).then(|| src.clone());
                let mut dst = Tensor::zeros([n]);
                ctx.comm
                    .broadcast_tensor_chunked_into(&group, 1, mine.as_ref(), &mut dst, chunk_bytes)
                    .unwrap();
                // Monolithic reference.
                let mono = ctx
                    .comm
                    .broadcast_tensor_among(&group, 1, mine.as_ref())
                    .unwrap();
                (via_bytes, dst, mono)
            });
            for (via_bytes, dst, mono) in &results {
                assert!(dst.bit_eq(mono), "chunked tensor broadcast diverged");
                assert_eq!(
                    &via_bytes[..],
                    crate::bytemuck_f32(mono.data()),
                    "chunked bytes broadcast diverged"
                );
            }
        }
    }

    /// Deterministic pseudo-random payload shared by the sharded-transfer
    /// tests: every survivor builds the same bytes (the replication
    /// invariant the scatter contract requires).
    fn scatter_payload(len: usize, seed: u64) -> bytes::Bytes {
        bytes::Bytes::from(
            (0..len)
                .map(|i| {
                    ((i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(seed)
                        >> 33) as u8
                })
                .collect::<Vec<u8>>(),
        )
    }

    /// One sharded-transfer round on the channel fabric: survivors stream
    /// shards to the replacement, and the replacement's bytes must be
    /// bitwise identical to the single-root chunked broadcast. Returns
    /// whether they matched.
    fn sharded_round_matches(
        len: usize,
        shard_bytes: usize,
        survivors: Vec<Rank>,
        replacement: Rank,
        seed: u64,
    ) -> bool {
        let world = survivors.len() + 1;
        let participants: Vec<Rank> = (0..world).collect();
        let survivors2 = survivors.clone();
        let results = Cluster::run_all(Topology::uniform(world, 1), move |mut ctx| {
            let me = ctx.rank();
            let payload = survivors2.contains(&me).then(|| scatter_payload(len, seed));
            let sharded = ctx
                .comm
                .scatter_state_sharded(&survivors2, &[replacement], payload, shard_bytes)
                .unwrap();
            let root = *survivors2.iter().min().unwrap();
            let root_payload = (me == root).then(|| scatter_payload(len, seed));
            let broadcast = ctx
                .comm
                .broadcast_bytes_chunked_among(&participants, root, root_payload, 4096)
                .unwrap();
            (sharded, broadcast)
        });
        let (sharded, broadcast) = &results[replacement];
        sharded == broadcast && sharded.len() == len
    }

    /// The sharded multi-source transfer must hand the replacement bytes
    /// bitwise identical to the single-root broadcast at shard counts
    /// 1, 2, 4 and 8, for 1–4 survivors, ragged and aligned alike.
    #[test]
    fn sharded_scatter_bitwise_matches_single_root_broadcast() {
        let len = 100_001usize; // ragged: the last shard is short
        for num_survivors in 1usize..=4 {
            for shard_count in [1usize, 2, 4, 8] {
                let shard_bytes = len.div_ceil(shard_count);
                let survivors: Vec<Rank> = (0..num_survivors).collect();
                assert!(
                    sharded_round_matches(len, shard_bytes, survivors, num_survivors, 7),
                    "diverged at survivors={num_survivors} shards={shard_count}"
                );
            }
        }
        // Empty payload: header-only exchange.
        assert!(sharded_round_matches(0, 1024, vec![0, 1], 2, 7));
    }

    /// Shard arrival drives the streaming callback in flat-offset order
    /// with the advertised total, so decode can overlap arrival.
    #[test]
    fn sharded_scatter_callback_sees_flat_offsets_in_order() {
        let len = 10_000usize;
        let results = Cluster::run_all(Topology::uniform(3, 1), move |mut ctx| {
            let survivors = [0usize, 1];
            let me = ctx.rank();
            if survivors.contains(&me) {
                let payload = Some(scatter_payload(len, 3));
                ctx.comm
                    .scatter_state_sharded_with(&survivors, &[2], payload, 1000, |_, _, _| {})
                    .unwrap();
                Vec::new()
            } else {
                let mut seen = Vec::new();
                let total = ctx
                    .comm
                    .scatter_state_sharded_with(&survivors, &[2], None, 1000, |total, off, b| {
                        seen.push((total, off, b.len()));
                    })
                    .unwrap();
                assert_eq!(total, len);
                seen
            }
        });
        let seen = &results[2];
        assert_eq!(seen.len(), 10, "ceil(10000/1000) shards");
        let mut expect_off = 0;
        for &(total, off, piece) in seen {
            assert_eq!(total, len);
            assert_eq!(off, expect_off, "flat-offset order");
            expect_off += piece;
        }
        assert_eq!(expect_off, len);
    }

    /// One randomized round: chunked all-reduce and chunked broadcast
    /// must be bitwise equal to the monolithic collectives. Returns
    /// whether every rank agreed.
    fn chunked_round_matches(numel: usize, chunk_bytes: usize, world: usize, seed: u64) -> bool {
        let ranks: Vec<Rank> = (0..world).collect();
        let results = Cluster::run_all(Topology::uniform(world, 1), move |mut ctx| {
            let t = Tensor::from_vec(
                [numel],
                (0..numel)
                    .map(|i| {
                        let x = (i as u64)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(seed + ctx.rank() as u64);
                        (x >> 40) as f32 * 1e-4 - 0.8
                    })
                    .collect(),
            );
            let mono = ctx.comm.allreduce_sum_among(&ranks, &t).unwrap();
            let chunked = ctx
                .comm
                .allreduce_sum_chunked_among(&ranks, &t, chunk_bytes)
                .unwrap();
            let root_val = (ctx.rank() == 0).then(|| mono.clone());
            let mut bcast = Tensor::zeros([numel]);
            ctx.comm
                .broadcast_tensor_chunked_into(
                    &ranks,
                    0,
                    root_val.as_ref(),
                    &mut bcast,
                    chunk_bytes,
                )
                .unwrap();
            (mono, chunked, bcast)
        });
        results
            .iter()
            .all(|(mono, chunked, bcast)| chunked.bit_eq(mono) && bcast.bit_eq(&results[0].0))
    }

    mod proptests {
        use proptest::prelude::*;

        proptest! {
            // Each case spawns a real thread-per-rank cluster.
            #![proptest_config(ProptestConfig::with_cases(6))]

            // Random shapes × chunk sizes × rank counts: the chunked
            // collectives stay bitwise equal to the monolithic ones.
            #[test]
            fn chunked_collectives_match_monolithic(
                numel in 1usize..5000,
                chunk_bytes in 4usize..4096,
                world in 2usize..5,
                seed in 0u64..1000,
            ) {
                prop_assert!(super::chunked_round_matches(numel, chunk_bytes, world, seed));
            }

            // Random payload sizes × shard sizes × survivor sets: the
            // sharded multi-source transfer stays bitwise equal to the
            // single-root chunked broadcast.
            #[test]
            fn sharded_scatter_matches_broadcast(
                len in 0usize..20_000,
                shard_bytes in 1usize..8192,
                num_survivors in 1usize..5,
                seed in 0u64..1000,
            ) {
                let survivors: Vec<usize> = (0..num_survivors).collect();
                prop_assert!(super::sharded_round_matches(
                    len, shard_bytes, survivors, num_survivors, seed,
                ));
            }
        }
    }

    #[test]
    fn all_gather_u64_reaches_consensus() {
        let results = Cluster::run_all(Topology::uniform(1, 3), |mut ctx| {
            ctx.comm
                .all_gather_u64_among(&[0, 1, 2], 100 + ctx.rank() as u64)
                .unwrap()
        });
        for r in &results {
            assert_eq!(r, &vec![100, 101, 102]);
        }
    }

    #[test]
    fn recv_from_killed_peer_errors() {
        let cluster = Cluster::new(Topology::uniform(2, 1));
        let fc = cluster.failure_controller();
        let h1 = cluster.spawn(1, |mut ctx| ctx.comm.recv_tensor(0, 5));
        // Rank 0 never sends; kill its machine.
        let _ctx0 = cluster.take_ctx(0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        fc.kill_machine(0);
        let r = h1.join().unwrap();
        assert_eq!(r, Err(CommError::PeerFailed { rank: 0 }));
    }

    #[test]
    fn send_to_killed_peer_errors() {
        let cluster = Cluster::new(Topology::uniform(2, 1));
        cluster.failure_controller().kill_machine(1);
        let ctx0 = cluster.take_ctx(0);
        let _ctx1 = cluster.take_ctx(1);
        assert_eq!(
            ctx0.comm.send_tensor(1, 0, &Tensor::scalar(1.0)),
            Err(CommError::PeerFailed { rank: 1 })
        );
        // And the global failure flag is visible (the paper's KV flag).
        assert!(ctx0.comm.failure_controller().failure_detected());
    }

    #[test]
    fn killed_self_unwinds() {
        let cluster = Cluster::new(Topology::uniform(2, 1));
        let fc = cluster.failure_controller();
        let h = cluster.spawn(0, |mut ctx| ctx.comm.recv_tensor(1, 0));
        let _ctx1 = cluster.take_ctx(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        fc.kill_machine(0);
        assert_eq!(h.join().unwrap(), Err(CommError::SelfKilled));
    }

    #[test]
    fn respawn_gets_fresh_inbox() {
        let cluster = Cluster::new(Topology::uniform(2, 1));
        let fc = cluster.failure_controller();
        {
            // Stale message sits in rank 1's inbox, then rank 1 dies.
            let ctx0 = cluster.take_ctx(0);
            ctx0.comm.send_tensor(1, 9, &Tensor::scalar(1.0)).unwrap();
            let _ctx1 = cluster.take_ctx(1);
            fc.kill_machine(1);
        }
        fc.replace_machine(1);
        let mut new1 = cluster.respawn(1);
        // The stale pre-failure message is gone; a fresh one arrives.
        let fabric_send_ok = new1
            .comm
            .send_bytes(1, 1, bytes::Bytes::from_static(b"x"))
            .is_ok();
        assert!(fabric_send_ok, "self-send through fabric");
        assert_eq!(new1.comm.recv_bytes(1, 1).unwrap().as_ref(), b"x");
    }

    #[test]
    fn respawn_rejoins_under_queued_traffic() {
        // Messages queued for the victim before its death must be
        // invisible to the replacement, and fresh post-respawn traffic
        // must flow in order even though the sender's link counters
        // advanced past the lost messages.
        let cluster = Cluster::new(Topology::uniform(2, 1));
        let fc = cluster.failure_controller();
        let ctx0 = cluster.take_ctx(0);
        let _ctx1 = cluster.take_ctx(1);
        for i in 0..3 {
            ctx0.comm
                .send_tensor(1, 4, &Tensor::scalar(i as f32))
                .unwrap();
        }
        fc.kill_machine(1);
        fc.replace_machine(1);
        let mut new1 = cluster.respawn(1);
        ctx0.comm.send_tensor(1, 4, &Tensor::scalar(10.0)).unwrap();
        ctx0.comm.send_tensor(1, 4, &Tensor::scalar(11.0)).unwrap();
        assert_eq!(new1.comm.recv_tensor(0, 4).unwrap().item(), 10.0);
        assert_eq!(new1.comm.recv_tensor(0, 4).unwrap().item(), 11.0);
    }

    #[test]
    fn purge_discards_stash_from_dead_rank() {
        // Out-of-order receives stash messages per (src, tag). A stash
        // entry from a rank that then dies must not satisfy post-recovery
        // receives once the survivor purges — the replacement's fresh
        // message must win.
        let cluster = Cluster::new(Topology::uniform(2, 1));
        let fc = cluster.failure_controller();
        let ctx0 = cluster.take_ctx(0);
        let mut ctx1 = cluster.take_ctx(1);
        ctx0.comm.send_tensor(1, 7, &Tensor::scalar(-1.0)).unwrap(); // goes stale
        ctx0.comm.send_tensor(1, 8, &Tensor::scalar(2.0)).unwrap();
        // Receiving tag 8 first forces the tag-7 message into the stash.
        assert_eq!(ctx1.comm.recv_tensor(0, 8).unwrap().item(), 2.0);
        fc.kill_machine(0);
        ctx1.comm.purge();
        fc.replace_machine(0);
        let new0 = cluster.respawn(0);
        new0.comm.send_tensor(1, 7, &Tensor::scalar(42.0)).unwrap();
        assert_eq!(ctx1.comm.recv_tensor(0, 7).unwrap().item(), 42.0);
    }

    #[test]
    fn stale_generation_traffic_is_fenced_on_receive() {
        // A message sent under an old failure generation must not satisfy
        // receives after the communicator has advanced generations (the
        // recovery fence's bulkhead against pre-failure stragglers).
        let cluster = Cluster::new(Topology::uniform(2, 1));
        let mut ctx0 = cluster.take_ctx(0);
        let mut ctx1 = cluster.take_ctx(1);
        ctx0.comm.send_tensor(1, 5, &Tensor::scalar(-7.0)).unwrap();
        // Both sides move to generation 1 (as the recovery fence does)
        // and the sender retransmits under the new generation.
        ctx0.comm.set_generation(swift_obs::Epoch::new(1));
        ctx1.comm.set_generation(swift_obs::Epoch::new(1));
        ctx0.comm.send_tensor(1, 5, &Tensor::scalar(8.0)).unwrap();
        assert_eq!(ctx1.comm.recv_tensor(0, 5).unwrap().item(), 8.0);
    }

    #[test]
    fn byte_counters_track_traffic() {
        let results = Cluster::run_all(Topology::uniform(1, 2), |mut ctx| {
            if ctx.rank() == 0 {
                ctx.comm.send_tensor(1, 1, &Tensor::zeros([100])).unwrap();
                (ctx.comm.bytes_sent(), ctx.comm.bytes_received())
            } else {
                let _ = ctx.comm.recv_tensor(0, 1).unwrap();
                (ctx.comm.bytes_sent(), ctx.comm.bytes_received())
            }
        });
        // 100 f32 + tensor header = 416 payload bytes.
        assert_eq!(results[0].0, results[1].1);
        assert!(results[0].0 >= 400);
        assert_eq!(results[0].1, 0);
        assert_eq!(results[1].0, 0);
    }

    #[test]
    fn failure_detection_latency_is_bounded() {
        // The paper's detector polls NCCL for async errors; ours polls the
        // failure flag each `POLL` (200 µs). A blocked receiver must
        // observe a kill within a few milliseconds.
        let cluster = Cluster::new(Topology::uniform(2, 1));
        let fc = cluster.failure_controller();
        let h = cluster.spawn(1, |mut ctx| {
            let t0 = std::time::Instant::now();
            let r = ctx.comm.recv_tensor(0, 9);
            (r, t0.elapsed())
        });
        let _ctx0 = cluster.take_ctx(0);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let kill_at = std::time::Instant::now();
        fc.kill_machine(0);
        let (r, _) = h.join().unwrap();
        let latency = kill_at.elapsed();
        assert!(r.is_err());
        assert!(
            latency < std::time::Duration::from_millis(50),
            "detection took {latency:?}"
        );
    }

    #[test]
    fn barrier_synchronizes_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let results = Cluster::run_all(Topology::uniform(1, 4), move |mut ctx| {
            c2.fetch_add(1, Ordering::SeqCst);
            ctx.comm.barrier().unwrap();
            // After the barrier, every rank must have incremented.
            c2.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
        let _ = counter;
    }
}
