//! # swift-net
//!
//! An in-process "cluster" runtime standing in for the paper's
//! multi-machine GPU cluster with PyTorch/NCCL:
//!
//! - one OS thread per worker rank, crossbeam channels as the network;
//! - [`Comm`]: point-to-point sends/receives plus deterministic
//!   collectives (tree and ring all-reduce, broadcast, barriers,
//!   `all_gather_u64` for pre-failure-iteration consensus), with
//!   sequence-numbered, generation-stamped streams that survive injected
//!   reordering, drops, duplicates and cross-recovery stragglers;
//! - [`FaultPlan`]/[`FaultInjector`]: a deterministic, seeded adversary
//!   woven into the fabric — per-link delay/jitter, reordering, transient
//!   drops with retransmission, duplicate delivery, rank stalls, and
//!   crash triggers that fire on the Nth message or Kth iteration;
//! - [`FailureController`]: the fail-stop *mechanism* (kill a machine).
//!   Detection is strictly observable: severed fabric links surface as
//!   `PeerFailed` at blocked callers, victims observe `SelfKilled` and
//!   unwind, losing their volatile state exactly as a crashed machine
//!   would;
//! - [`Heartbeat`]/[`HeartbeatMonitor`]: lease-based suspicion layered on
//!   the KV store (§6) — workers act on suspicion, and a falsely
//!   suspected rank fences itself out;
//! - [`KvStore`]: the rank-0 key-value store holding the failure state;
//! - [`RetryPolicy`]: the single bounded-backoff schedule every recovery
//!   wait goes through;
//! - [`Topology`]: the rank↔machine map that decides which traffic is
//!   *inter-machine* and therefore logged (§5.1).
//!
//! The substitution argument (see DESIGN.md): SWIFT's protocols are
//! interleaving- and failure-semantics properties, which threads +
//! channels reproduce; wall-clock performance is modeled separately in
//! `swift-sim`.

pub mod clock;
pub mod cluster;
pub mod comm;
pub mod detector;
pub mod failure;
pub mod faults;
pub mod kv;
pub mod kv_remote;
pub mod retry;
pub mod socket;
pub mod topology;
pub mod trace;
pub mod transport;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use cluster::{Cluster, ClusterBuilder, ClusterError, WorkerCtx};
pub use comm::{
    build_comms, bytemuck_f32, default_chunk_bytes, default_shard_bytes, f32_from_bytes,
    respawn_comm, Comm, CommError, Fabric, COLLECTIVE_BIT,
};
pub use detector::{
    declare_failed, declare_recovered, failure_epoch, failure_state, Heartbeat, HeartbeatConfig,
    HeartbeatMonitor, LeaseTable, HEARTBEAT_MS_ENV, LEASE_MS_ENV,
};
pub use failure::FailureController;
pub use faults::{CrashTrigger, FaultInjector, FaultPlan, FaultStatsSnapshot, SendFate, StallSpec};
pub use kv::KvStore;
pub use kv_remote::KvServer;
pub use retry::RetryPolicy;
pub use socket::SocketTransport;
pub use topology::{MachineId, Rank, Topology};
pub use trace::{vc_join, vc_le, EventKind, Trace, TraceEvent, Tracer, VectorClock};
pub use transport::{ChannelTransport, Frame, RecvEvent, TransmitOutcome, Transport};
