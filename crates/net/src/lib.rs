//! # swift-net
//!
//! An in-process "cluster" runtime standing in for the paper's
//! multi-machine GPU cluster with PyTorch/NCCL:
//!
//! - one OS thread per worker rank, crossbeam channels as the network;
//! - [`Comm`]: point-to-point sends/receives plus deterministic
//!   collectives (tree and ring all-reduce, broadcast, barriers,
//!   `all_gather_u64` for pre-failure-iteration consensus);
//! - [`FailureController`]: fail-stop injection (kill a machine) and
//!   NCCL-style asynchronous detection — blocked receivers observe
//!   `PeerFailed`, victims observe `SelfKilled` and unwind, losing their
//!   volatile state exactly as a crashed machine would;
//! - [`KvStore`]: the rank-0 key-value store holding the failure flag
//!   (§6);
//! - [`Topology`]: the rank↔machine map that decides which traffic is
//!   *inter-machine* and therefore logged (§5.1).
//!
//! The substitution argument (see DESIGN.md): SWIFT's protocols are
//! interleaving- and failure-semantics properties, which threads +
//! channels reproduce; wall-clock performance is modeled separately in
//! `swift-sim`.

pub mod cluster;
pub mod comm;
pub mod failure;
pub mod kv;
pub mod topology;

pub use cluster::{Cluster, WorkerCtx};
pub use comm::{build_comms, respawn_comm, Comm, CommError, COLLECTIVE_BIT};
pub use failure::FailureController;
pub use kv::KvStore;
pub use topology::{MachineId, Rank, Topology};
