//! Fail-stop failure injection and detection.
//!
//! The paper assumes a fail-stop model (§3): a machine crashes, its
//! workers' volatile state is lost, and survivors detect the failure via
//! communication errors (NCCL's `ncclCommGetAsyncError`) or the failure
//! flag in the rank-0 key-value store. [`FailureController`] is the
//! injector and the detector's source of truth.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::topology::{MachineId, Rank, Topology};

/// Callback invoked when ranks transition between alive and dead
/// (`alive = false` on a kill, `true` on a replacement). The fabric
/// registers one to sever/restore the victims' links, which is how a
/// crash becomes *observable* to survivors as connection errors.
type TransitionObserver = Box<dyn Fn(&[Rank], bool) + Send + Sync>;

/// Shared fail-stop state for a cluster.
///
/// This is the *injection mechanism* — the hand that pulls the plug.
/// Production code must never consult it for detection; survivors learn
/// of failures only through observable signals (severed links, channel
/// disconnects, stale heartbeat leases, the KV failure state — see
/// [`crate::detector`]). The one legitimate worker-side read is
/// [`is_dead`](Self::is_dead) *of the worker's own rank*: that is the
/// mechanism by which the killed process ceases to exist.
pub struct FailureController {
    topology: Topology,
    /// Per-rank "this rank is dead".
    dead: Vec<AtomicBool>,
    /// Global failure flag (the paper's KV-store flag at rank 0).
    failure_flag: AtomicBool,
    /// Generation counter: bumped on every injection, letting tests
    /// distinguish successive failures (cascading failures, Appendix B).
    generation: AtomicU64,
    /// Liveness-transition observers (the fabric's link state).
    observers: Mutex<Vec<TransitionObserver>>,
}

impl std::fmt::Debug for FailureController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureController")
            .field("topology", &self.topology)
            .field("dead", &self.dead)
            .field("failure_flag", &self.failure_flag)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl FailureController {
    /// Creates a controller with all ranks alive.
    pub fn new(topology: Topology) -> Arc<Self> {
        let dead = (0..topology.world_size())
            .map(|_| AtomicBool::new(false))
            .collect();
        Arc::new(FailureController {
            topology,
            dead,
            failure_flag: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            observers: Mutex::new(Vec::new()),
        })
    }

    /// Registers a liveness-transition observer.
    pub fn on_transition(&self, f: impl Fn(&[Rank], bool) + Send + Sync + 'static) {
        self.observers.lock().push(Box::new(f));
    }

    fn notify(&self, ranks: &[Rank], alive: bool) {
        for obs in self.observers.lock().iter() {
            obs(ranks, alive);
        }
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Kills every rank on `machine` (fail-stop). Survivors observe it on
    /// their next communication involving those ranks, or by polling
    /// [`failure_detected`](Self::failure_detected).
    pub fn kill_machine(&self, machine: MachineId) {
        self.kill_machines(&[machine]);
    }

    /// Kills several machines *atomically* (one failure generation) —
    /// simultaneous multi-machine failures, Appendix B.
    pub fn kill_machines(&self, machines: &[MachineId]) {
        let killed: Vec<Rank> = machines
            .iter()
            .flat_map(|&m| self.topology.ranks_of(m).iter().copied())
            .collect();
        // Observability ground truth: the kill timestamp anchors the
        // timeline's detect phase, and must precede any observable
        // effect of the crash.
        swift_obs::emit(|| swift_obs::Event::Kill {
            ranks: killed.clone(),
        });
        for &r in &killed {
            self.dead[r].store(true, Ordering::SeqCst);
        }
        self.failure_flag.store(true, Ordering::SeqCst);
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.notify(&killed, false);
    }

    /// Kills a single rank (rare in practice — the paper logs only
    /// machine-level traffic for this reason — but supported).
    pub fn kill_rank(&self, rank: Rank) {
        swift_obs::emit(|| swift_obs::Event::Kill { ranks: vec![rank] });
        self.dead[rank].store(true, Ordering::SeqCst);
        self.failure_flag.store(true, Ordering::SeqCst);
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.notify(&[rank], false);
    }

    /// Revives every rank on `machine` (the replacement machine joining,
    /// §3). Clears the global flag if no rank remains dead.
    pub fn replace_machine(&self, machine: MachineId) {
        let mut revived = Vec::new();
        for &r in self.topology.ranks_of(machine) {
            self.dead[r].store(false, Ordering::SeqCst);
            revived.push(r);
        }
        if !self.any_dead() {
            self.failure_flag.store(false, Ordering::SeqCst);
        }
        self.notify(&revived, true);
    }

    /// Whether `rank` is currently dead.
    pub fn is_dead(&self, rank: Rank) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    /// Whether any rank is dead.
    pub fn any_dead(&self) -> bool {
        self.dead.iter().any(|d| d.load(Ordering::SeqCst))
    }

    /// The global failure flag (what workers poll, §6 "Failure
    /// detection").
    pub fn failure_detected(&self) -> bool {
        self.failure_flag.load(Ordering::SeqCst)
    }

    /// Current failure generation (0 = never failed).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// The machines with at least one dead rank.
    pub fn dead_machines(&self) -> Vec<MachineId> {
        (0..self.topology.num_machines())
            .filter(|&m| self.topology.ranks_of(m).iter().any(|&r| self.is_dead(r)))
            .collect()
    }

    /// The currently dead ranks.
    pub fn dead_ranks(&self) -> Vec<Rank> {
        (0..self.topology.world_size())
            .filter(|&r| self.is_dead(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_and_replace_machine() {
        let fc = FailureController::new(Topology::uniform(2, 2));
        assert!(!fc.failure_detected());
        fc.kill_machine(1);
        assert!(fc.failure_detected());
        assert!(fc.is_dead(2) && fc.is_dead(3));
        assert!(!fc.is_dead(0));
        assert_eq!(fc.dead_machines(), vec![1]);
        assert_eq!(fc.dead_ranks(), vec![2, 3]);
        assert_eq!(fc.generation(), 1);
        fc.replace_machine(1);
        assert!(!fc.failure_detected());
        assert!(!fc.any_dead());
    }

    #[test]
    fn cascading_failures_bump_generation() {
        let fc = FailureController::new(Topology::uniform(3, 1));
        fc.kill_machine(0);
        fc.kill_machine(2);
        assert_eq!(fc.generation(), 2);
        assert_eq!(fc.dead_machines(), vec![0, 2]);
        fc.replace_machine(0);
        // Still failed: machine 2 is down.
        assert!(fc.failure_detected());
        fc.replace_machine(2);
        assert!(!fc.failure_detected());
    }

    #[test]
    fn observers_see_kill_and_replace_transitions() {
        use std::sync::Mutex as StdMutex;
        let fc = FailureController::new(Topology::uniform(2, 2));
        type EventLog = Arc<StdMutex<Vec<(Vec<Rank>, bool)>>>;
        let events: EventLog = Arc::new(StdMutex::new(Vec::new()));
        let ev = events.clone();
        fc.on_transition(move |ranks, alive| ev.lock().unwrap().push((ranks.to_vec(), alive)));
        fc.kill_machine(1);
        fc.replace_machine(1);
        let got = events.lock().unwrap().clone();
        assert_eq!(got, vec![(vec![2, 3], false), (vec![2, 3], true)]);
    }

    #[test]
    fn kill_single_rank() {
        let fc = FailureController::new(Topology::uniform(2, 2));
        fc.kill_rank(1);
        assert_eq!(fc.dead_ranks(), vec![1]);
        assert_eq!(fc.dead_machines(), vec![0]);
    }
}
