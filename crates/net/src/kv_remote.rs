//! Remote access to the [`KvStore`](crate::kv::KvStore) over Unix-domain
//! sockets.
//!
//! In-process clusters share the store by cloning an `Arc`; the process
//! backend cannot. Instead the supervisor hosts a [`KvServer`] in front
//! of its local store and each worker process connects a [`RemoteKv`]
//! client to it. The protocol is deliberately tiny — five request ops,
//! length-prefixed strings, one reply per request — because everything
//! the store is used for (failure flags, acks, barriers) is small
//! control-plane state.
//!
//! Wire format, all integers little-endian:
//!
//! ```text
//! request  := op:u8 key:str [args...]
//! str      := len:u32 bytes
//! GET    (0): key
//! SET    (1): key value:str
//! REMOVE (2): key
//! CAS    (3): key expected:opt new:str     -- compare-and-swap
//! INCR   (4): key
//! opt      := present:u8 [value:str]
//! reply    := ok:u8 value:opt
//! ```
//!
//! `CAS` succeeds (`ok = 1`) iff the current value equals `expected`
//! (`None` matching an absent key); on failure the reply carries the
//! current value so the client can re-run its read-modify-write. The
//! blocking `wait_for`/`update` APIs are built client-side from these
//! primitives (polling and CAS retry respectively), which keeps the
//! server stateless per connection.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;

use crate::kv::KvStore;
use crate::retry::RetryPolicy;

const OP_GET: u8 = 0;
const OP_SET: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_CAS: u8 = 3;
const OP_INCR: u8 = 4;

/// Upper bound on any single key or value (control-plane state only).
const MAX_STR: u32 = 1 << 20;

fn write_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn write_opt(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            buf.push(1);
            write_str(buf, s);
        }
        None => buf.push(0),
    }
}

fn read_exact_buf(stream: &mut impl Read, n: usize) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_str(stream: &mut impl Read) -> io::Result<String> {
    let len = u32::from_le_bytes(
        read_exact_buf(stream, 4)?
            .try_into()
            .unwrap_or([0, 0, 0, 0]),
    );
    if len > MAX_STR {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("kv string of {len} bytes exceeds the {MAX_STR} limit"),
        ));
    }
    String::from_utf8(read_exact_buf(stream, len as usize)?)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn read_opt(stream: &mut impl Read) -> io::Result<Option<String>> {
    let present = read_exact_buf(stream, 1)?[0];
    if present == 0 {
        Ok(None)
    } else {
        read_str(stream).map(Some)
    }
}

/// One reply from the server: `(ok, value)`.
type Reply = (bool, Option<String>);

fn write_reply(stream: &mut impl Write, ok: bool, value: Option<&str>) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 + value.map_or(0, str::len));
    buf.push(ok as u8);
    write_opt(&mut buf, value);
    stream.write_all(&buf)
}

fn read_reply(stream: &mut impl Read) -> io::Result<Reply> {
    let ok = read_exact_buf(stream, 1)?[0] != 0;
    Ok((ok, read_opt(stream)?))
}

/// The supervisor-side KV endpoint: serves a local [`KvStore`] to worker
/// processes over a Unix-domain socket. One handler thread per
/// connection; dropping the server stops the acceptor and unlinks the
/// socket (in-flight handler threads drain on their own).
pub struct KvServer {
    path: PathBuf,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl KvServer {
    /// Binds `path` and serves `store` until dropped.
    pub fn bind(path: &Path, store: KvStore) -> io::Result<Self> {
        // A stale socket file from a SIGKILLed predecessor blocks bind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shutdown = shutdown.clone();
            thread::Builder::new()
                .name("kv-server".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let store = store.clone();
                                let shutdown = shutdown.clone();
                                let _ = thread::Builder::new().name("kv-conn".into()).spawn(
                                    move || {
                                        let _ = serve_conn(stream, &store, &shutdown);
                                    },
                                );
                            }
                            // Transient errors — ECONNABORTED from a client
                            // SIGKILLed while still in the backlog, EMFILE
                            // pressure — must not kill the accept plane:
                            // every worker's control traffic dies with it.
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => thread::sleep(Duration::from_millis(2)),
                        }
                    }
                })?
        };
        Ok(KvServer {
            path: path.to_path_buf(),
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The socket path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn serve_conn(mut stream: UnixStream, store: &KvStore, shutdown: &AtomicBool) -> io::Result<()> {
    // The read timeout doubles as the shutdown poll interval.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut op = [0u8; 1];
        match stream.read_exact(&mut op) {
            Ok(()) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            // Client hung up (worker exit or SIGKILL): normal teardown.
            Err(_) => return Ok(()),
        }
        // The op byte arrived; the rest of the frame is guaranteed to be
        // in flight. Read it without the shutdown-poll timeout — closing
        // the connection on a mid-frame stall would reset a healthy
        // client.
        stream.set_read_timeout(None)?;
        let result = serve_one(&mut stream, store, op[0]);
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        result?;
    }
}

fn serve_one(stream: &mut UnixStream, store: &KvStore, op: u8) -> io::Result<()> {
    let key = read_str(stream)?;
    match op {
        OP_GET => {
            let v = store.get(&key);
            write_reply(stream, v.is_some(), v.as_deref())
        }
        OP_SET => {
            let value = read_str(stream)?;
            store.set(&key, value);
            write_reply(stream, true, None)
        }
        OP_REMOVE => {
            let v = store.remove(&key);
            write_reply(stream, v.is_some(), v.as_deref())
        }
        OP_CAS => {
            let expected = read_opt(stream)?;
            let new = read_str(stream)?;
            let (ok, current) = store.cas(&key, expected.as_deref(), new);
            write_reply(stream, ok, current.as_deref())
        }
        OP_INCR => {
            let v = store.incr(&key).to_string();
            write_reply(stream, true, Some(&v))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown kv op {other}"),
        )),
    }
}

/// Client half: a connection to a [`KvServer`], shared by every clone of
/// the owning [`KvStore`]. Requests are serialized under a mutex (the
/// store carries tiny control-plane values; contention is not a
/// concern), and a broken connection is re-dialed with the recovery
/// retry schedule before an operation is failed.
pub struct RemoteKv {
    path: PathBuf,
    conn: Mutex<Option<UnixStream>>,
}

impl std::fmt::Debug for RemoteKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteKv")
            .field("path", &self.path)
            .finish()
    }
}

impl RemoteKv {
    /// Dials the server at `path`, retrying on `connect` until the
    /// policy's deadline (the supervisor may still be binding).
    pub fn connect(path: &Path, retry: &RetryPolicy) -> io::Result<Self> {
        let stream = dial(path, retry)?;
        Ok(RemoteKv {
            path: path.to_path_buf(),
            conn: Mutex::new(Some(stream)),
        })
    }

    /// One request/reply round-trip. The store API has no error channel
    /// (the local backend cannot fail), so a server that stays
    /// unreachable is treated as fatal: under the fail-stop model a
    /// worker whose supervisor died is an orphan, and aborting *is* the
    /// machine death the model prescribes.
    pub fn roundtrip(&self, frame: &[u8]) -> Reply {
        match self.request(frame) {
            Ok(reply) => reply,
            // A roundtrip issued from a Drop while this thread is already
            // unwinding (a dying worker tearing down its heartbeat, say)
            // must not double-panic into an abort — the first panic is
            // the fail-stop.
            Err(_) if std::thread::panicking() => (false, None),
            Err(e) => panic!(
                "kv server at {} unreachable ({e}); orphaned worker fail-stops",
                self.path.display()
            ),
        }
    }

    /// One request/reply round-trip, re-dialing on a broken connection.
    /// A reset stream is not a dead server — the handler thread may have
    /// been torn down mid-frame — so a fresh connection gets a few tries
    /// before the server is declared unreachable.
    fn request(&self, frame: &[u8]) -> io::Result<Reply> {
        const ATTEMPTS: usize = 3;
        let mut guard = self.conn.lock();
        let mut last = None;
        for attempt in 0..ATTEMPTS {
            if attempt > 0 {
                thread::sleep(Duration::from_millis(10 << attempt));
            }
            if guard.is_none() {
                match dial(&self.path, &RetryPolicy::poll()) {
                    Ok(s) => *guard = Some(s),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            let Some(stream) = guard.as_mut() else {
                unreachable!("connection populated above")
            };
            let r = stream.write_all(frame).and_then(|()| read_reply(stream));
            match r {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    *guard = None;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("kv request failed")))
    }
}

fn dial(path: &Path, retry: &RetryPolicy) -> io::Result<UnixStream> {
    let mut conn = None;
    retry.wait_until(|| match UnixStream::connect(path) {
        Ok(s) => {
            conn = Some(s);
            true
        }
        Err(_) => false,
    });
    match conn {
        Some(s) => {
            // Replies arrive promptly once the request is written; a
            // bounded read timeout keeps an orphaned worker from hanging
            // forever on a dead supervisor.
            s.set_read_timeout(Some(Duration::from_secs(10)))?;
            Ok(s)
        }
        None => UnixStream::connect(path),
    }
}

/// Encodes each request op; the reply is always [`Reply`].
pub(crate) fn encode_get(key: &str) -> Vec<u8> {
    let mut buf = vec![OP_GET];
    write_str(&mut buf, key);
    buf
}

pub(crate) fn encode_set(key: &str, value: &str) -> Vec<u8> {
    let mut buf = vec![OP_SET];
    write_str(&mut buf, key);
    write_str(&mut buf, value);
    buf
}

pub(crate) fn encode_remove(key: &str) -> Vec<u8> {
    let mut buf = vec![OP_REMOVE];
    write_str(&mut buf, key);
    buf
}

pub(crate) fn encode_cas(key: &str, expected: Option<&str>, new: &str) -> Vec<u8> {
    let mut buf = vec![OP_CAS];
    write_str(&mut buf, key);
    write_opt(&mut buf, expected);
    write_str(&mut buf, new);
    buf
}

pub(crate) fn encode_incr(key: &str) -> Vec<u8> {
    let mut buf = vec![OP_INCR];
    write_str(&mut buf, key);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvStore;

    fn sock(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swift-kv-{}-{name}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join("kv.sock")
    }

    #[test]
    fn remote_round_trip_and_cas() {
        let path = sock("rt");
        let store = KvStore::new();
        let _server = KvServer::bind(&path, store.clone()).unwrap();
        let remote = KvStore::connect(&path, &RetryPolicy::poll()).unwrap();

        assert!(remote.get("a").is_none());
        remote.set("a", "1");
        assert_eq!(store.get("a").as_deref(), Some("1"));
        assert_eq!(remote.get("a").as_deref(), Some("1"));
        assert_eq!(remote.incr("n"), 1);
        assert_eq!(remote.incr("n"), 2);
        assert_eq!(remote.remove("a").as_deref(), Some("1"));
        assert!(store.get("a").is_none());

        // update() runs as a client-side CAS loop.
        let v = remote.update("list", |cur| {
            Some(match cur {
                Some(s) => format!("{s},x"),
                None => "x".to_string(),
            })
        });
        assert_eq!(v.as_deref(), Some("x"));
        let v = remote.update("list", |cur| cur.map(|s| format!("{s},y")));
        assert_eq!(v.as_deref(), Some("x,y"));
        // A None-returning closure leaves the key unchanged.
        let v = remote.update("list", |_| None);
        assert_eq!(v.as_deref(), Some("x,y"));
    }

    #[test]
    fn remote_wait_for_sees_local_set() {
        let path = sock("wait");
        let store = KvStore::new();
        let _server = KvServer::bind(&path, store.clone()).unwrap();
        let remote = KvStore::connect(&path, &RetryPolicy::poll()).unwrap();
        let h = std::thread::spawn(move || remote.wait_for("flag", Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        store.set("flag", "up");
        assert_eq!(h.join().unwrap().as_deref(), Some("up"));
    }

    #[test]
    fn concurrent_remote_updates_lose_no_entries() {
        let path = sock("cc");
        let store = KvStore::new();
        let _server = KvServer::bind(&path, store.clone()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let remote = KvStore::connect(&path, &RetryPolicy::poll()).unwrap();
                    for j in 0..25 {
                        remote.update("set", |cur| {
                            let item = format!("{i}:{j}");
                            Some(match cur {
                                Some(s) => format!("{s},{item}"),
                                None => item,
                            })
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let merged = store.get("set").unwrap();
        assert_eq!(merged.split(',').count(), 100, "lost CAS updates");
    }

    #[test]
    fn connect_to_missing_server_times_out() {
        let path = sock("none");
        let err = KvStore::connect(
            &path,
            &RetryPolicy::poll().with_deadline(Duration::from_millis(50)),
        );
        assert!(err.is_err());
    }

    /// A deliberately unreliable [`KvServer`] twin: the acceptor consults
    /// a drop schedule and slams some fresh connections shut before
    /// reading a single byte, and even served connections are closed
    /// after `serve_limit` replies (simulating a handler thread torn down
    /// between requests). Both failure points sit strictly *outside* the
    /// read-apply-reply critical section, which is the property that
    /// makes the client's blind 3-attempt re-send safe.
    struct FlakyServer {
        shutdown: Arc<AtomicBool>,
        acceptor: Option<thread::JoinHandle<()>>,
    }

    impl FlakyServer {
        fn bind(path: &Path, store: KvStore, drops: Vec<bool>, serve_limit: usize) -> Self {
            let listener = UnixListener::bind(path).unwrap();
            listener.set_nonblocking(true).unwrap();
            let shutdown = Arc::new(AtomicBool::new(false));
            let acceptor = {
                let shutdown = shutdown.clone();
                thread::spawn(move || {
                    let mut schedule = drops.into_iter();
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if schedule.next().unwrap_or(false) {
                                    drop(stream); // pre-read drop: nothing applied
                                    continue;
                                }
                                let store = store.clone();
                                thread::spawn(move || {
                                    flaky_serve(stream, &store, serve_limit);
                                });
                            }
                            Err(_) => thread::sleep(Duration::from_millis(1)),
                        }
                    }
                })
            };
            FlakyServer {
                shutdown,
                acceptor: Some(acceptor),
            }
        }
    }

    impl Drop for FlakyServer {
        fn drop(&mut self) {
            self.shutdown.store(true, Ordering::SeqCst);
            if let Some(h) = self.acceptor.take() {
                let _ = h.join();
            }
        }
    }

    /// Serves at most `limit` requests, then hangs up mid-session. Every
    /// reply it does send was fully applied first.
    fn flaky_serve(mut stream: UnixStream, store: &KvStore, limit: usize) {
        for _ in 0..limit {
            let mut op = [0u8; 1];
            if stream.read_exact(&mut op).is_err() {
                return;
            }
            if serve_one(&mut stream, store, op[0]).is_err() {
                return;
            }
        }
    }

    /// The client retries a request at most 3 times, and a serve-limit
    /// hang-up already burns the first attempt — so two consecutive
    /// pre-read drops behind it would (correctly) fail-stop the worker.
    /// This property is about *surviving* flakiness, so adjacent drops
    /// are spread out.
    fn cap_consecutive_drops(drops: &mut [bool]) {
        let mut prev = false;
        for d in drops.iter_mut() {
            if *d && prev {
                *d = false;
            }
            prev = *d;
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        // The remote client's bounded re-dial loop (`RemoteKv::request`,
        // 3 attempts) blindly re-sends the same frame after a connection
        // error. That is only sound because the server never fails
        // between applying an op and replying: a dropped connection means
        // the op was *not* applied. Against an acceptor that drops fresh
        // connections and hangs up between requests, every logical put
        // must land exactly once — no loss, and no double-apply from a
        // re-sent frame.
        #[test]
        fn flaky_acceptor_never_double_applies_puts(
            mut drops in prop::collection::vec(any::<bool>(), 1..12),
            serve_limit in 1usize..4,
            puts in 1usize..8,
        ) {
            use std::sync::atomic::AtomicUsize;
            static CASE: AtomicUsize = AtomicUsize::new(0);
            cap_consecutive_drops(&mut drops);
            let path = sock(&format!("flaky{}", CASE.fetch_add(1, Ordering::Relaxed)));
            let _ = std::fs::remove_file(&path);

            let store = KvStore::new();
            let _server = FlakyServer::bind(&path, store.clone(), drops.clone(), serve_limit);
            let remote = KvStore::connect(&path, &RetryPolicy::poll()).unwrap();

            for i in 0..puts {
                // A read-modify-write put: append a unique token. A
                // double-applied frame would duplicate the token; a
                // swallowed one would lose it.
                remote.update("log", |cur| {
                    let token = format!("p{i}");
                    Some(match cur {
                        Some(s) => format!("{s},{token}"),
                        None => token,
                    })
                });
            }

            let log = store.get("log").unwrap_or_default();
            let tokens: Vec<&str> = log.split(',').collect();
            let want: Vec<String> = (0..puts).map(|i| format!("p{i}")).collect();
            prop_assert_eq!(
                tokens, want,
                "puts lost or double-applied under drops {:?} / limit {}",
                drops, serve_limit
            );
        }
    }
}
