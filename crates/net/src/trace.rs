//! Deterministic event tracing with vector clocks for the recovery
//! protocol's happens-before analysis.
//!
//! When a [`Tracer`] is installed on the fabric, every protocol-relevant
//! action — message send, in-order delivery, failure-epoch bump, queue
//! purge, and explicit protocol marks (fence enter/exit) — is recorded as
//! a [`TraceEvent`] stamped with the acting rank's vector clock. Sends
//! also stamp the clock *onto the message*, and deliveries join it into
//! the receiver's clock, so the trace carries the full happens-before
//! partial order of the execution.
//!
//! The tracer, not the per-rank communicator, owns the clocks: a
//! replacement worker respawned under a failed rank transparently
//! *continues* that rank's clock, keeping per-rank event sequences
//! monotone across respawns.
//!
//! Traces are consumed by `swift-verify`'s race/fence checker, which
//! replays them and flags generation-fencing violations (§5): stale-epoch
//! deliveries, receives concurrent with an epoch bump, and fence exits
//! that do not happen-after every participant's purge.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::topology::Rank;

/// A vector clock over `world` ranks.
pub type VectorClock = Vec<u64>;

/// Joins `other` into `clock` (element-wise max).
pub fn vc_join(clock: &mut VectorClock, other: &[u64]) {
    for (c, o) in clock.iter_mut().zip(other.iter()) {
        *c = (*c).max(*o);
    }
}

/// Whether `a` happened-before-or-equals `b` (`a ≤ b` component-wise).
pub fn vc_le(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A message was pushed onto the fabric.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Stream tag.
        tag: u64,
        /// Position in the `(src, dst, tag)` stream.
        tag_seq: u64,
        /// Sender's failure generation stamped on the message.
        gen: u64,
    },
    /// A message was matched and consumed by a receive.
    Deliver {
        /// Source rank.
        src: Rank,
        /// Stream tag.
        tag: u64,
        /// Stream position consumed.
        tag_seq: u64,
        /// Generation stamped on the message at send time.
        msg_gen: u64,
        /// The receiver's generation at delivery time.
        recv_gen: u64,
        /// The sender's vector clock at send time (empty if the message
        /// was sent before tracing was enabled).
        send_vc: VectorClock,
    },
    /// The rank synchronized its failure generation (recovery fence).
    EpochBump {
        /// Previous generation.
        from: u64,
        /// New generation.
        to: u64,
    },
    /// The rank discarded all buffered inbound traffic.
    Purge {
        /// Generation at purge time.
        gen: u64,
    },
    /// A protocol milestone (e.g. `fence-enter` / `fence-exit`).
    Mark {
        /// Milestone label.
        label: String,
        /// Generation at mark time.
        gen: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Acting rank.
    pub rank: Rank,
    /// The rank's local event sequence (its own clock component after
    /// this event) — totally orders each rank's events.
    pub lseq: u64,
    /// The rank's vector clock after this event.
    pub vc: VectorClock,
    /// What happened.
    pub kind: EventKind,
}

/// A complete recorded execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// World size (vector-clock width).
    pub world: usize,
    /// Events in recording order. Per-rank order is deterministic
    /// (`lseq`); cross-rank order is only the happens-before partial
    /// order carried by the clocks.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events of one rank, in local order.
    pub fn rank_events(&self, rank: Rank) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }
}

struct Inner {
    clocks: Vec<VectorClock>,
    events: Vec<TraceEvent>,
}

/// Collects [`TraceEvent`]s and owns the per-rank vector clocks.
pub struct Tracer {
    world: usize,
    inner: Mutex<Inner>,
}

impl Tracer {
    /// A tracer for a `world`-rank job.
    pub fn new(world: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            world,
            inner: Mutex::new(Inner {
                clocks: vec![vec![0; world]; world],
                events: Vec::new(),
            }),
        })
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.world
    }

    fn record(inner: &mut Inner, rank: Rank, kind: EventKind) {
        inner.clocks[rank][rank] += 1;
        let vc = inner.clocks[rank].clone();
        let lseq = vc[rank];
        inner.events.push(TraceEvent {
            rank,
            lseq,
            vc,
            kind,
        });
    }

    /// Records a send and returns the clock to stamp on the message.
    pub fn on_send(&self, src: Rank, dst: Rank, tag: u64, tag_seq: u64, gen: u64) -> VectorClock {
        let mut inner = self.inner.lock();
        Self::record(
            &mut inner,
            src,
            EventKind::Send {
                dst,
                tag,
                tag_seq,
                gen,
            },
        );
        inner.clocks[src].clone()
    }

    /// Records an in-order delivery, joining the message's send-time
    /// clock into the receiver's.
    #[allow(clippy::too_many_arguments)]
    pub fn on_deliver(
        &self,
        dst: Rank,
        src: Rank,
        tag: u64,
        tag_seq: u64,
        msg_gen: u64,
        recv_gen: u64,
        send_vc: &[u64],
    ) {
        let mut inner = self.inner.lock();
        vc_join(&mut inner.clocks[dst], send_vc);
        Self::record(
            &mut inner,
            dst,
            EventKind::Deliver {
                src,
                tag,
                tag_seq,
                msg_gen,
                recv_gen,
                send_vc: send_vc.to_vec(),
            },
        );
    }

    /// Records a failure-generation bump.
    pub fn on_epoch_bump(&self, rank: Rank, from: u64, to: u64) {
        let mut inner = self.inner.lock();
        Self::record(&mut inner, rank, EventKind::EpochBump { from, to });
    }

    /// Records an inbound-queue purge.
    pub fn on_purge(&self, rank: Rank, gen: u64) {
        let mut inner = self.inner.lock();
        Self::record(&mut inner, rank, EventKind::Purge { gen });
    }

    /// Records a protocol milestone.
    pub fn mark(&self, rank: Rank, label: &str, gen: u64) {
        let mut inner = self.inner.lock();
        Self::record(
            &mut inner,
            rank,
            EventKind::Mark {
                label: label.to_string(),
                gen,
            },
        );
    }

    /// Snapshots the trace recorded so far.
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock();
        Trace {
            world: self.world,
            events: inner.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_tick_and_join() {
        let t = Tracer::new(2);
        let vc = t.on_send(0, 1, 7, 0, 0);
        assert_eq!(vc, vec![1, 0]);
        t.on_deliver(1, 0, 7, 0, 0, 0, &vc);
        let trace = t.snapshot();
        assert_eq!(trace.events.len(), 2);
        // Receiver's clock joined the sender's then ticked its own slot.
        assert_eq!(trace.events[1].vc, vec![1, 1]);
        assert!(vc_le(&trace.events[0].vc, &trace.events[1].vc));
    }

    #[test]
    fn respawn_continues_rank_clock() {
        let t = Tracer::new(2);
        t.on_send(0, 1, 1, 0, 0);
        t.on_send(0, 1, 1, 1, 0);
        // A replacement comm for rank 0 keeps ticking the same clock.
        let vc = t.on_send(0, 1, 1, 2, 1);
        assert_eq!(vc[0], 3);
        let lseqs: Vec<u64> = t.snapshot().rank_events(0).map(|e| e.lseq).collect();
        assert_eq!(lseqs, vec![1, 2, 3]);
    }
}
