//! The undo-invertibility checker: certifies, per optimizer
//! configuration, that `undo ∘ apply = id` is derivable from the symbolic
//! update chain (paper §4, Table 1) — and that the non-invertible
//! configurations are *rejected* rather than silently accepted.
//!
//! For each [`OptimizerKind`] the checker:
//!
//! 1. **derives the undo symbolically** — every op in the chain must have
//!    an inverse under its hyperparameter constraints
//!    ([`UpdateChain::derive_undo`]);
//! 2. **cross-checks Table 1** — the chain's primitive-operator set must
//!    equal the set the optimizer implementation declares
//!    ([`Optimizer::operators`]), so the symbolic model cannot drift from
//!    the real arithmetic unnoticed;
//! 3. **validates the round trip numerically** — applies the chain to a
//!    deterministic pseudo-random state, unapplies it, and requires the
//!    parameters and slots to come back within tolerance.
//!
//! [`Optimizer::operators`]: swift_optim::Optimizer::operators

use swift_optim::{chain_for, ChainState, OptimizerKind, UpdateChain};

use crate::Violation;

fn v(detail: String) -> Violation {
    Violation::new("invert", detail)
}

/// A tiny deterministic LCG so the numeric round-trip needs no RNG crate
/// and reproduces bit-identically across runs.
struct Lcg(u64);

impl Lcg {
    fn next_f32(&mut self) -> f32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Top 24 bits → [-1, 1).
        ((self.0 >> 40) as f32 / (1u64 << 23) as f32) - 1.0
    }

    fn vec(&mut self, n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|_| self.next_f32() * scale).collect()
    }
}

/// Checks one optimizer configuration that is *expected to be
/// invertible*. Returns violations for: failed undo derivation, operator
/// sets diverging from the optimizer's declared Table-1 set, or a numeric
/// round trip that does not restore the state.
pub fn check_invertible(kind: &OptimizerKind) -> Vec<Violation> {
    let chain = chain_for(kind);
    let mut out = Vec::new();
    if let Err(e) = chain.derive_undo() {
        out.push(v(format!(
            "{}: undo ∘ apply = id is not derivable: {e}",
            chain.optimizer
        )));
        return out; // round trip would panic in a non-invertible op
    }
    check_table1_consistency(&chain, kind, &mut out);
    check_roundtrip(&chain, &mut out);
    out
}

/// Checks one configuration that is *expected to be rejected* (AMSGrad,
/// AdamW with `η·λ ≥ 1`, …). The violation here is the checker *not*
/// rejecting it.
pub fn check_rejected(kind: &OptimizerKind) -> Vec<Violation> {
    let chain = chain_for(kind);
    match chain.derive_undo() {
        Err(_) => Vec::new(),
        Ok(_) => vec![v(format!(
            "{}: expected the undo derivation to fail for this configuration, \
             but it produced an undo chain — a non-invertible update would be \
             silently accepted",
            chain.optimizer
        ))],
    }
}

/// The symbolic chain's primitive-operator set must equal the set the
/// optimizer implementation declares (both in Table-1 terms).
fn check_table1_consistency(chain: &UpdateChain, kind: &OptimizerKind, out: &mut Vec<Violation>) {
    let mut declared: Vec<_> = kind.build().operators().to_vec();
    declared.sort_by_key(|k| *k as u8);
    declared.dedup();
    let derived = chain.op_kinds();
    if derived != declared {
        out.push(v(format!(
            "{}: symbolic chain uses operators {derived:?} but the optimizer \
             declares {declared:?} (Table 1 drift)",
            chain.optimizer
        )));
    }
}

/// `unapply(apply(state))` must restore parameters and slots.
fn check_roundtrip(chain: &UpdateChain, out: &mut Vec<Violation>) {
    const N: usize = 32;
    const TOL: f32 = 1e-3;
    let mut rng = Lcg(0x5357_4946_5400_0001); // "SWIFT"-flavored fixed seed
    for step in 1..=3u64 {
        let mut state = ChainState::new(rng.vec(N, 1.0), rng.vec(N, 0.1));
        state.t = step;
        // Warm the slots so the round trip exercises non-zero moments.
        for s in state.slots.values_mut() {
            *s = (0..N).map(|_| rng.next_f32().abs() * 0.01).collect();
        }
        let before = state.clone();
        chain.apply(&mut state);
        chain.unapply(&mut state);
        let param_err = max_abs_diff(&before.param, &state.param);
        if param_err > TOL {
            out.push(v(format!(
                "{}: numeric round trip failed at t={step}: max parameter \
                 error {param_err:e} exceeds {TOL:e}",
                chain.optimizer
            )));
        }
        for (name, slot) in &before.slots {
            let e = max_abs_diff(slot, &state.slots[name]);
            if e > TOL {
                out.push(v(format!(
                    "{}: numeric round trip failed at t={step}: slot `{name}` \
                     error {e:e} exceeds {TOL:e}",
                    chain.optimizer
                )));
            }
        }
    }
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// The default certification sweep: every invertible optimizer family at
/// representative hyperparameters must pass, and the known-bad
/// configurations must be rejected.
pub fn check_all() -> Vec<Violation> {
    let invertible = [
        OptimizerKind::Sgd {
            lr: 0.05,
            weight_decay: 0.01,
        },
        OptimizerKind::SgdMomentum {
            lr: 0.05,
            weight_decay: 0.01,
            momentum: 0.9,
            dampening: 0.1,
        },
        OptimizerKind::Adam {
            lr: 1e-3,
            weight_decay: 0.01,
        },
        OptimizerKind::AdamW {
            lr: 1e-3,
            weight_decay: 0.01,
        },
        OptimizerKind::Lamb {
            lr: 1e-3,
            weight_decay: 0.01,
        },
    ];
    let rejected = [
        OptimizerKind::AmsGrad {
            lr: 1e-3,
            weight_decay: 0.0,
        },
        // η·λ ≥ 1 flips the sign of the coupled-decay scale.
        OptimizerKind::Sgd {
            lr: 2.0,
            weight_decay: 0.6,
        },
        OptimizerKind::AdamW {
            lr: 2.0,
            weight_decay: 0.6,
        },
    ];
    let mut out = Vec::new();
    for k in &invertible {
        out.extend(check_invertible(k));
    }
    for k in &rejected {
        out.extend(check_rejected(k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_optim::ChainError;

    #[test]
    fn full_sweep_is_clean() {
        let vs = check_all();
        assert!(vs.is_empty(), "{vs:?}");
    }

    /// Seeded violation: AMSGrad treated as invertible must be caught.
    #[test]
    fn amsgrad_fails_invertibility() {
        let vs = check_invertible(&OptimizerKind::AmsGrad {
            lr: 1e-3,
            weight_decay: 0.0,
        });
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].detail.contains("not derivable"), "{}", vs[0]);
        assert!(vs[0].detail.contains("EW-max"), "{}", vs[0]);
    }

    #[test]
    fn amsgrad_rejection_is_the_chain_error() {
        let err = chain_for(&OptimizerKind::AmsGrad {
            lr: 1e-3,
            weight_decay: 0.0,
        })
        .derive_undo()
        .unwrap_err();
        assert!(matches!(err, ChainError::NonInvertibleOp { .. }));
    }

    /// Seeded violation: AdamW at η·λ ≥ 1 accepted as invertible.
    #[test]
    fn adamw_eta_lambda_ge_one_fails_invertibility() {
        let vs = check_invertible(&OptimizerKind::AdamW {
            lr: 2.0,
            weight_decay: 0.6,
        });
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].detail.contains("η·λ"), "{}", vs[0]);
    }

    /// Seeded violation on the expectation side: a perfectly invertible
    /// SGD must NOT pass `check_rejected`.
    #[test]
    fn check_rejected_flags_invertible_configs() {
        let vs = check_rejected(&OptimizerKind::Sgd {
            lr: 0.05,
            weight_decay: 0.0,
        });
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].detail.contains("silently accepted"), "{}", vs[0]);
    }
}
