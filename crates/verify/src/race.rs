//! The happens-before race/fence checker: replays a recorded
//! [`Trace`] and flags violations of the generation-fencing protocol
//! (paper §5).
//!
//! The fabric's fencing discipline promises three things, and the checker
//! verifies each directly against the event log:
//!
//! 1. **No stale-epoch acceptance.** A delivered message's stamped
//!    generation must never be *older* than the receiver's generation at
//!    delivery time — older-generation traffic is exactly what the fence's
//!    purge + generation check exists to discard.
//! 2. **No receive concurrent with an epoch bump.** A delivered message
//!    must not carry a generation *newer* than the receiver's: that means
//!    the receive raced the receiver's own epoch bump (the message was
//!    sent from the post-recovery world before this rank finished
//!    fencing into it). Per-rank bumps must also be monotone.
//! 3. **Fence exits happen-after all purges.** A `fence-exit:<ranks>`
//!    mark at generation `G` must causally follow (vector-clock ≤) a
//!    purge at `G` by *every* listed participant — otherwise a fast rank
//!    could resume sending into a queue a slow rank is about to purge.
//!    This includes purges by ranks declared dead and respawned: the
//!    replacement runs the purge under the same rank id.

use swift_net::{vc_le, EventKind, Trace};

use crate::Violation;

fn v(detail: String) -> Violation {
    Violation::new("race", detail)
}

/// Replays `trace` and returns every fencing violation found.
pub fn check_trace(trace: &Trace) -> Vec<Violation> {
    let mut out = Vec::new();
    check_deliveries(trace, &mut out);
    check_epoch_monotonicity(trace, &mut out);
    check_fence_exits(trace, &mut out);
    out
}

/// Invariants 1 and 2: every delivery's message generation equals the
/// receiver's generation at delivery time.
fn check_deliveries(trace: &Trace, out: &mut Vec<Violation>) {
    for e in &trace.events {
        if let EventKind::Deliver {
            src,
            tag,
            tag_seq,
            msg_gen,
            recv_gen,
            ..
        } = &e.kind
        {
            if msg_gen < recv_gen {
                out.push(v(format!(
                    "stale-epoch message accepted: rank {} delivered (src={src}, tag={tag}, \
                     seq={tag_seq}) stamped gen {msg_gen} while already at gen {recv_gen} — \
                     pre-failure traffic leaked past the fence purge",
                    e.rank
                )));
            } else if msg_gen > recv_gen {
                out.push(v(format!(
                    "receive concurrent with epoch bump: rank {} delivered (src={src}, \
                     tag={tag}, seq={tag_seq}) stamped gen {msg_gen} while still at gen \
                     {recv_gen} — the receive raced this rank's own generation sync",
                    e.rank
                )));
            }
        }
    }
}

/// Invariant 2b: per-rank epoch bumps strictly increase.
fn check_epoch_monotonicity(trace: &Trace, out: &mut Vec<Violation>) {
    for rank in 0..trace.world {
        let mut last_to: Option<u64> = None;
        for e in trace.rank_events(rank) {
            if let EventKind::EpochBump { from, to } = e.kind {
                if to <= from {
                    out.push(v(format!(
                        "epoch bump not monotone on rank {rank}: {from} -> {to}"
                    )));
                }
                if let Some(prev) = last_to {
                    if to <= prev {
                        out.push(v(format!(
                            "epoch regressed on rank {rank}: bumped to {to} after \
                             already reaching {prev}"
                        )));
                    }
                }
                last_to = Some(to);
            }
        }
    }
}

/// Invariant 3: every `fence-exit:<ranks>` mark at generation `G` must
/// happen-after a `Purge {{ gen: G }}` by each listed participant.
fn check_fence_exits(trace: &Trace, out: &mut Vec<Violation>) {
    for e in &trace.events {
        let EventKind::Mark { label, gen } = &e.kind else {
            continue;
        };
        let Some(plist) = label.strip_prefix("fence-exit:") else {
            continue;
        };
        for p in plist.split(',').filter(|p| !p.is_empty()) {
            let Ok(rank) = p.parse::<usize>() else {
                out.push(v(format!(
                    "malformed fence-exit participant list {label:?} on rank {}",
                    e.rank
                )));
                continue;
            };
            let purged_before_exit = trace.rank_events(rank).any(|pe| {
                matches!(&pe.kind, EventKind::Purge { gen: pg } if pg == gen)
                    && vc_le(&pe.vc, &e.vc)
            });
            if !purged_before_exit {
                out.push(v(format!(
                    "fence exit before declared-dead purge: rank {} exited the gen-{gen} \
                     fence without happening-after participant {rank}'s purge at gen {gen}",
                    e.rank
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_net::Tracer;

    /// A clean two-rank exchange: same generation end to end.
    #[test]
    fn clean_exchange_has_no_violations() {
        let t = Tracer::new(2);
        let vc = t.on_send(0, 1, 7, 0, 0);
        t.on_deliver(1, 0, 7, 0, 0, 0, &vc);
        assert!(check_trace(&t.snapshot()).is_empty());
    }

    /// Seeded violation: a pre-failure (gen 0) message is delivered to a
    /// rank that already fenced into gen 1.
    #[test]
    fn flags_stale_epoch_delivery() {
        let t = Tracer::new(2);
        let vc = t.on_send(0, 1, 7, 0, 0);
        t.on_epoch_bump(1, 0, 1);
        t.on_deliver(1, 0, 7, 0, /* msg_gen */ 0, /* recv_gen */ 1, &vc);
        let vs = check_trace(&t.snapshot());
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].detail.contains("stale-epoch"), "{}", vs[0]);
    }

    /// Seeded violation: a post-recovery (gen 1) message lands on a rank
    /// that has not bumped yet — the receive raced the epoch bump.
    #[test]
    fn flags_receive_concurrent_with_bump() {
        let t = Tracer::new(2);
        t.on_epoch_bump(0, 0, 1);
        let vc = t.on_send(0, 1, 7, 0, 1);
        t.on_deliver(1, 0, 7, 0, /* msg_gen */ 1, /* recv_gen */ 0, &vc);
        let vs = check_trace(&t.snapshot());
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(
            vs[0].detail.contains("concurrent with epoch bump"),
            "{}",
            vs[0]
        );
    }

    #[test]
    fn flags_epoch_regression() {
        let t = Tracer::new(1);
        t.on_epoch_bump(0, 0, 2);
        t.on_epoch_bump(0, 2, 1);
        let vs = check_trace(&t.snapshot());
        assert!(!vs.is_empty());
        assert!(vs.iter().all(|v| v.detail.contains("rank 0")), "{vs:?}");
    }

    /// Seeded violation: rank 0 exits the fence before rank 1 has purged
    /// (no happens-before edge from 1's purge to 0's exit mark).
    #[test]
    fn flags_fence_exit_before_all_purges() {
        let t = Tracer::new(2);
        t.on_purge(0, 1);
        // Rank 0 exits "after" only its own purge; rank 1's purge is
        // recorded later and causally unrelated.
        t.mark(0, "fence-exit:0,1", 1);
        t.on_purge(1, 1);
        let vs = check_trace(&t.snapshot());
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].detail.contains("participant 1's purge"), "{}", vs[0]);
    }

    /// The correct fence shape: both purges happen-before the exit via a
    /// message edge (standing in for the post-purge barrier).
    #[test]
    fn fence_exit_after_all_purges_is_clean() {
        let t = Tracer::new(2);
        t.on_purge(0, 1);
        t.on_purge(1, 1);
        let vc = t.on_send(1, 0, 0, 0, 1); // barrier leg carries 1's clock
        t.on_deliver(0, 1, 0, 0, 1, 1, &vc);
        t.mark(0, "fence-exit:0,1", 1);
        assert!(check_trace(&t.snapshot()).is_empty());
    }
}
