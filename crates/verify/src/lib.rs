//! `swift-verify`: static and trace-replay analyzers for SWIFT's recovery
//! protocol.
//!
//! Three analyzers, each checking an invariant the paper's correctness
//! argument leans on:
//!
//! - [`race`] — replays [`swift_net::Trace`] event logs (vector-clocked
//!   sends, deliveries, epoch bumps, purges, fence marks) and flags
//!   generation-fencing violations (§5): a stale-epoch message accepted,
//!   a receive concurrent with an epoch bump on the same rank, or a fence
//!   exit that does not happen-after every participant's purge.
//! - [`fsm`] — analyzes the declarative recovery transition table
//!   ([`swift_core::recovery_fsm`]): reachability, terminal states with no
//!   exits, a failure edge from every non-terminal phase back to the
//!   restart state, and no cycles outside backoff-bounded restart edges.
//! - [`invert`] — checks every optimizer's symbolic update chain
//!   ([`swift_optim::chain_for`]): the undo must be derivable
//!   (`undo ∘ apply = id`), its primitive-operator set must agree with the
//!   optimizer's declared Table-1 set, and the numeric round-trip must
//!   restore the state. AMSGrad and AdamW with `η·λ ≥ 1` must be
//!   *rejected*.
//!
//! The `swift-verify` binary (driven by `cargo xtask verify` and CI) runs
//! all three against live traced executions and the real tables/chains,
//! exiting nonzero on any violation.

pub mod fsm;
pub mod invert;
pub mod race;

/// One analyzer finding. An analyzer returning no violations certifies
/// the artifact it examined, not the whole system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which analyzer found it (`"race"`, `"fsm"`, `"invert"`).
    pub analyzer: &'static str,
    /// What invariant broke, with concrete evidence.
    pub detail: String,
}

impl Violation {
    pub(crate) fn new(analyzer: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            analyzer,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.analyzer, self.detail)
    }
}
