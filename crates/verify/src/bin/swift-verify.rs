//! The `swift-verify` driver: runs all three analyzers against the real
//! codebase and exits nonzero on any violation.
//!
//! - **race** — executes live, traced recovery scenarios on the in-process
//!   fabric (a skewed-sequence fence, a kill + respawn + epoch-bumped
//!   fence, re-entrant fences with stale traffic) and replays each trace
//!   through the happens-before checker.
//! - **fsm** — analyzes the declarative recovery transition table.
//! - **invert** — certifies every optimizer family's undo derivation and
//!   numeric round trip, and that the known-non-invertible configurations
//!   are rejected.
//!
//! Run via `cargo xtask verify` (which also applies the source lints) or
//! directly with `cargo run -p swift-verify`.

use bytes::Bytes;
use swift_core::{recovery_fence, recovery_fsm};
use swift_net::{
    declare_failed, failure_epoch, Cluster, Rank, RetryPolicy, Topology, Trace, WorkerCtx,
};
use swift_obs::{Epoch, Generation};
use swift_verify::{fsm, invert, race, Violation};

fn main() {
    let mut all: Vec<Violation> = Vec::new();
    let mut sections = 0usize;

    for (name, trace) in [
        ("skewed-sequence fence", traced_skewed_fence()),
        (
            "kill + respawn + epoch-bumped fence",
            traced_kill_respawn_fence(),
        ),
        (
            "re-entrant fences with stale traffic",
            traced_reentrant_fences(),
        ),
    ] {
        let vs = race::check_trace(&trace);
        report(
            &format!("race: {name} ({} events)", trace.events.len()),
            &vs,
        );
        all.extend(vs);
        sections += 1;
    }

    let table = recovery_fsm();
    let vs = fsm::analyze(&table);
    report(
        &format!(
            "fsm: {} ({} states, {} transitions)",
            table.name,
            table.states.len(),
            table.transitions.len()
        ),
        &vs,
    );
    all.extend(vs);
    sections += 1;

    let vs = invert::check_all();
    report("invert: optimizer undo-derivation sweep", &vs);
    all.extend(vs);
    sections += 1;

    if all.is_empty() {
        println!("swift-verify: {sections} sections clean");
    } else {
        eprintln!("swift-verify: {} violation(s)", all.len());
        std::process::exit(1);
    }
}

fn report(section: &str, vs: &[Violation]) {
    if vs.is_empty() {
        println!("  ok   {section}");
    } else {
        println!("  FAIL {section}");
        for v in vs {
            eprintln!("       {v}");
        }
    }
}

/// Rank `r` runs `r` solo collectives before fencing, so the fence must
/// realign genuinely skewed sequence numbers.
fn traced_skewed_fence() -> Trace {
    let cluster = Cluster::new(Topology::uniform(3, 1));
    let tracer = cluster.enable_tracing();
    let handles: Vec<_> = (0..3)
        .map(|rank| {
            cluster.spawn(rank, move |mut ctx| {
                for _ in 0..ctx.rank() {
                    let me = [ctx.rank()];
                    ctx.comm.barrier_among(&me).expect("solo barrier");
                }
                recovery_fence(&mut ctx, Generation::new(1), &[0, 1, 2]).expect("fence");
                ring_exchange(&mut ctx, &[0, 1, 2], 11);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    tracer.snapshot()
}

/// Rank 1's machine is killed mid-job; the survivors fence under the
/// bumped epoch together with a respawned replacement, then resume
/// traffic. The trace must show every purge happening-before every
/// fence exit and no cross-generation deliveries.
fn traced_kill_respawn_fence() -> Trace {
    let world: Vec<Rank> = vec![0, 1, 2, 3];
    let cluster = Cluster::new(Topology::uniform(4, 1));
    let tracer = cluster.enable_tracing();
    let fc = cluster.failure_controller();
    let kv = cluster.kv();

    let post_failure = |ctx: &mut WorkerCtx, participants: &[Rank]| {
        let epoch = failure_epoch(&ctx.kv);
        recovery_fence(ctx, epoch.generation(), participants).expect("fence");
        ring_exchange(ctx, participants, 6);
    };

    let mut handles = Vec::new();
    for rank in [0, 2, 3] {
        let world = world.clone();
        handles.push(cluster.spawn(rank, move |mut ctx| {
            ring_exchange(&mut ctx, &world, 5);
            ctx.kv.set(&format!("ring-done/{}", ctx.rank()), "1");
            // Wait for the failure declaration, then recover.
            RetryPolicy::poll().wait_until(|| failure_epoch(&ctx.kv) >= Epoch::new(1));
            post_failure(&mut ctx, &world);
        }));
    }
    let victim = {
        let world = world.clone();
        cluster.spawn(1, move |mut ctx| {
            ring_exchange(&mut ctx, &world, 5);
            ctx.kv.set("ring-done/1", "1");
            // Die only once every rank has drained its ring traffic, so
            // the scenario's only anomaly is the failure itself.
            RetryPolicy::poll()
                .wait_until(|| (0..4).all(|r| ctx.kv.get(&format!("ring-done/{r}")).is_some()));
            let machine = ctx.machine();
            ctx.comm.failure_controller().kill_machine(machine);
        })
    };
    victim.join().expect("victim panicked");
    declare_failed(&kv, &[1]);

    // Driver: bring up the replacement under the failed rank.
    fc.replace_machine(1);
    let mut rctx = cluster.respawn(1);
    handles.push(std::thread::spawn(move || post_failure(&mut rctx, &world)));
    for h in handles {
        h.join().expect("worker panicked");
    }
    tracer.snapshot()
}

/// Two back-to-back fences; a stale pre-fence message must be purged
/// rather than delivered to the post-fence receive.
fn traced_reentrant_fences() -> Trace {
    let cluster = Cluster::new(Topology::uniform(2, 1));
    let tracer = cluster.enable_tracing();
    let handles: Vec<_> = (0..2)
        .map(|rank| {
            cluster.spawn(rank, move |mut ctx| {
                if ctx.rank() == 0 {
                    // Stale traffic that must never satisfy a post-fence
                    // receive.
                    ctx.comm
                        .send_bytes(1, 99, Bytes::from_static(b"stale"))
                        .expect("send");
                }
                recovery_fence(&mut ctx, Generation::new(1), &[0, 1]).expect("fence 1");
                recovery_fence(&mut ctx, Generation::new(2), &[0, 1]).expect("fence 2");
                if ctx.rank() == 0 {
                    ctx.comm
                        .send_bytes(1, 99, Bytes::from_static(b"fresh"))
                        .expect("send");
                } else {
                    let got = ctx.comm.recv_bytes(0, 99).expect("recv");
                    assert_eq!(&got[..], b"fresh", "stale message leaked past the fence");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    tracer.snapshot()
}

/// Every participant sends to its ring successor and receives from its
/// predecessor — deterministic point-to-point traffic on `tag`.
fn ring_exchange(ctx: &mut WorkerCtx, participants: &[Rank], tag: u64) {
    let me = ctx.rank();
    let idx = participants
        .iter()
        .position(|&r| r == me)
        .expect("participant");
    let next = participants[(idx + 1) % participants.len()];
    let prev = participants[(idx + participants.len() - 1) % participants.len()];
    ctx.comm
        .send_bytes(next, tag, Bytes::from(vec![me as u8]))
        .expect("ring send");
    let got = ctx.comm.recv_bytes(prev, tag).expect("ring recv");
    assert_eq!(got[0], prev as u8);
}
