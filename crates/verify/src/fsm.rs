//! The recovery-FSM static analyzer: proves structural properties of a
//! declarative [`TransitionTable`] without executing any recovery.
//!
//! Checked properties, mirroring the supervisor's convergence argument
//! (paper Appendix B):
//!
//! - **Reachability** — every declared state is reachable from the start
//!   state; an unreachable phase is dead code the runtime tracker would
//!   never license.
//! - **Terminal states have no exits** — `Done`/`Aborted` are absorbing;
//!   an edge out of a terminal state means "recovery completed" is not
//!   actually final.
//! - **Failure edges to restart** — every non-terminal phase must have a
//!   failure edge leading back to the restart state, so a cascading
//!   failure observed in *any* phase has somewhere to go (no dead-end
//!   phase that deadlocks on a mid-phase death).
//! - **Cycles only through backoff** — deleting the backoff-marked
//!   failure edges must leave the graph acyclic. Then every infinite
//!   execution takes backoff edges infinitely often, and those are
//!   rate-limited and budget-bounded by the supervisor — the
//!   bounded-restart argument made structural.

use std::collections::{HashMap, HashSet};

use swift_core::{EdgeKind, FsmState, TransitionTable};

use crate::Violation;

fn v(detail: String) -> Violation {
    Violation::new("fsm", detail)
}

/// Analyzes `table` and returns every structural violation found.
pub fn analyze(table: &TransitionTable) -> Vec<Violation> {
    let mut out = Vec::new();
    check_edges_are_declared(table, &mut out);
    check_reachability(table, &mut out);
    check_terminals(table, &mut out);
    check_failure_edges(table, &mut out);
    check_cycles_through_backoff_only(table, &mut out);
    out
}

/// Sanity: transitions only mention declared states.
fn check_edges_are_declared(table: &TransitionTable, out: &mut Vec<Violation>) {
    let declared: HashSet<FsmState> = table.states.iter().copied().collect();
    for t in &table.transitions {
        for s in [t.from, t.to] {
            if !declared.contains(&s) {
                out.push(v(format!(
                    "{}: transition {} -> {} mentions undeclared state {s}",
                    table.name, t.from, t.to
                )));
            }
        }
    }
    if !declared.contains(&table.start) {
        out.push(v(format!(
            "{}: start state {} is not declared",
            table.name, table.start
        )));
    }
}

/// Every declared state is reachable from the start state.
fn check_reachability(table: &TransitionTable, out: &mut Vec<Violation>) {
    let mut seen: HashSet<FsmState> = HashSet::new();
    let mut stack = vec![table.start];
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        for t in table.outgoing(s) {
            stack.push(t.to);
        }
    }
    for &s in &table.states {
        if !seen.contains(&s) {
            out.push(v(format!(
                "{}: state {s} is unreachable from start state {}",
                table.name, table.start
            )));
        }
    }
}

/// Terminal states are absorbing.
fn check_terminals(table: &TransitionTable, out: &mut Vec<Violation>) {
    for &s in &table.states {
        if table.is_terminal(s) {
            for t in table.outgoing(s) {
                out.push(v(format!(
                    "{}: terminal state {s} has an outgoing transition to {}",
                    table.name, t.to
                )));
            }
        }
    }
}

/// Every non-terminal state has a failure edge back to the restart state.
fn check_failure_edges(table: &TransitionTable, out: &mut Vec<Violation>) {
    for &s in &table.states {
        if table.is_terminal(s) {
            continue;
        }
        let has_restart_edge = table
            .outgoing(s)
            .any(|t| matches!(t.kind, EdgeKind::Failure { .. }) && t.to == table.restart);
        if !has_restart_edge {
            out.push(v(format!(
                "{}: phase {s} has no failure edge back to restart state {} — a \
                 cascading failure observed there would dead-end",
                table.name, table.restart
            )));
        }
    }
}

/// Removing backoff-marked failure edges leaves the graph acyclic.
fn check_cycles_through_backoff_only(table: &TransitionTable, out: &mut Vec<Violation>) {
    // Kahn's algorithm over the non-backoff subgraph; leftover nodes with
    // in-degree > 0 form (or feed) a cycle.
    let keep = |k: EdgeKind| !matches!(k, EdgeKind::Failure { backoff: true });
    let mut indeg: HashMap<FsmState, usize> = table.states.iter().map(|&s| (s, 0)).collect();
    for t in table.transitions.iter().filter(|t| keep(t.kind)) {
        *indeg.entry(t.to).or_insert(0) += 1;
    }
    let mut queue: Vec<FsmState> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&s, _)| s)
        .collect();
    let mut removed = 0usize;
    while let Some(s) = queue.pop() {
        removed += 1;
        for t in table.outgoing(s).filter(|t| keep(t.kind)) {
            let d = indeg.get_mut(&t.to).expect("declared state");
            *d -= 1;
            if *d == 0 {
                queue.push(t.to);
            }
        }
    }
    if removed < indeg.len() {
        let cyclic: Vec<String> = indeg
            .iter()
            .filter(|(_, &d)| d > 0)
            .map(|(s, _)| s.to_string())
            .collect();
        out.push(v(format!(
            "{}: cycle not gated by a backoff edge through {{{}}} — unbounded \
             retry without the supervisor's restart budget",
            table.name,
            cyclic.join(", ")
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_core::{recovery_fsm, RecoveryPhase, Transition};

    #[test]
    fn real_recovery_fsm_is_clean() {
        let vs = analyze(&recovery_fsm());
        assert!(vs.is_empty(), "{vs:?}");
    }

    /// Seeded violation: strip Synchronize's failure edge, creating a
    /// dead-end phase where a cascading failure has nowhere to go.
    #[test]
    fn flags_dead_end_phase() {
        let mut t = recovery_fsm();
        t.transitions.retain(|tr| {
            !(tr.from == FsmState::Phase(RecoveryPhase::Synchronize)
                && matches!(tr.kind, EdgeKind::Failure { .. }))
        });
        let vs = analyze(&t);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].detail.contains("no failure edge"), "{}", vs[0]);
        assert!(vs[0].detail.contains("synchronize"), "{}", vs[0]);
    }

    /// Seeded violation: an unreachable extra state.
    #[test]
    fn flags_unreachable_state() {
        let mut t = recovery_fsm();
        // Disconnect Rejoin: drop every edge into it. Rejoin becomes
        // unreachable (and Done with it, via the lost Complete edge... no:
        // Done is only reachable through Rejoin, so both are flagged).
        t.transitions
            .retain(|tr| tr.to != FsmState::Phase(RecoveryPhase::Rejoin));
        let vs = analyze(&t);
        assert!(
            vs.iter().any(|v| v.detail.contains("unreachable")),
            "{vs:?}"
        );
    }

    /// Seeded violation: a transition out of a terminal state.
    #[test]
    fn flags_exit_from_terminal() {
        let mut t = recovery_fsm();
        t.transitions.push(Transition {
            from: FsmState::Done,
            to: FsmState::Phase(RecoveryPhase::RepairConsistency),
            kind: EdgeKind::Advance,
        });
        let vs = analyze(&t);
        assert!(
            vs.iter().any(|v| v.detail.contains("terminal state done")),
            "{vs:?}"
        );
    }

    /// Seeded violation: a retry loop not marked as backoff-gated.
    #[test]
    fn flags_unbounded_cycle() {
        let mut t = recovery_fsm();
        t.transitions.push(Transition {
            from: FsmState::Phase(RecoveryPhase::Fence),
            to: FsmState::Phase(RecoveryPhase::RepairConsistency),
            kind: EdgeKind::Failure { backoff: false },
        });
        let vs = analyze(&t);
        assert!(
            vs.iter().any(|v| v.detail.contains("cycle not gated")),
            "{vs:?}"
        );
    }
}
