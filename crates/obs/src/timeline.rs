//! Recovery-timeline reconstruction: raw event stream → per-incident
//! paper-style breakdown (§6).
//!
//! One *incident* is one declared failure epoch. The reconstructor
//! slices each incident into the canonical phase order
//!
//! ```text
//! detect → undo → fence → (broadcast | replay) → resume
//! ```
//!
//! and asserts the invariants the recovery protocols promise:
//!
//! - **presence**: every incident has an undo, a fence, exactly one of
//!   broadcast/replay, and a resume;
//! - **completeness**: every rank that begins a phase ends it (an
//!   unbalanced span means an attempt was abandoned mid-phase);
//! - **per-rank ordering**: each rank's spans are sequential
//!   (begin/end properly paired) and follow the canonical phase order —
//!   a rank fencing before it finished undo is a protocol bug;
//! - **causality**: the declaration never precedes the kill that caused
//!   it (the detector emits its declaration *before* publishing the new
//!   state, so observers' phase timestamps follow it).
//!
//! Aggregated across ranks, phases naturally overlap (rank A may enter
//! the fence while rank B is still undoing — that is the protocol
//! working, not a bug). The *breakdown* therefore reports contiguous
//! segments between monotone phase boundaries: boundary *i* is the
//! latest completion of phase *i* across ranks, clamped to never move
//! backwards. Segments are complete and non-overlapping by
//! construction; genuine ordering violations are caught by the per-rank
//! checks above.

use std::collections::BTreeMap;

use crate::ids::{Epoch, Rank};
use crate::recorder::{Event, Phase, Stamped};

/// One contiguous slice of an incident's recovery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub phase: Phase,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl Segment {
    /// The segment's width.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One failure incident: a declared epoch and its phase breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// The failure epoch this recovery ran under.
    pub epoch: Epoch,
    /// Ranks declared dead at this epoch.
    pub failed: Vec<Rank>,
    /// Contiguous, non-overlapping segments in canonical phase order
    /// (detect first; only phases that occurred appear).
    pub segments: Vec<Segment>,
    /// True when this epoch's recovery attempt was abandoned because a
    /// cascading failure bumped the epoch mid-recovery; its phases are
    /// whatever ran before the supervisor restarted, and the presence
    /// invariants apply to the superseding epoch instead.
    pub aborted: bool,
}

impl Incident {
    /// Failure occurrence → training resumed.
    pub fn total_ns(&self) -> u64 {
        match (self.segments.first(), self.segments.last()) {
            (Some(a), Some(b)) => b.end_ns - a.start_ns,
            _ => 0,
        }
    }

    /// The segment for `phase`, if that phase occurred.
    pub fn segment(&self, phase: Phase) -> Option<&Segment> {
        self.segments.iter().find(|s| s.phase == phase)
    }
}

/// A reconstructed set of incidents, ordered by epoch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Timeline {
    pub incidents: Vec<Incident>,
}

/// Why reconstruction rejected an event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// A required phase never ran for this incident.
    MissingPhase { epoch: Epoch, phase: Phase },
    /// Both broadcast and replay ran under one epoch — a recovery must
    /// synchronize one way or the other.
    AmbiguousSync { epoch: Epoch },
    /// A rank began a phase it never ended (abandoned attempt), ended a
    /// phase it never began, or nested spans.
    UnbalancedSpan {
        epoch: Epoch,
        rank: Rank,
        phase: Phase,
    },
    /// A rank's spans violate the canonical phase order.
    OutOfOrder {
        epoch: Epoch,
        rank: Rank,
        prev: Phase,
        next: Phase,
    },
    /// The declaration for this epoch carries a timestamp earlier than
    /// the kill that produced it.
    DeclarationBeforeKill { epoch: Epoch },
    /// Recovery phases were recorded under an epoch that was never
    /// declared.
    UndeclaredEpoch { epoch: Epoch },
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::MissingPhase { epoch, phase } => {
                write!(f, "epoch {epoch}: required phase `{phase}` never ran")
            }
            TimelineError::AmbiguousSync { epoch } => {
                write!(f, "epoch {epoch}: both broadcast and replay ran")
            }
            TimelineError::UnbalancedSpan { epoch, rank, phase } => write!(
                f,
                "epoch {epoch}: rank {rank} has unbalanced `{phase}` span"
            ),
            TimelineError::OutOfOrder {
                epoch,
                rank,
                prev,
                next,
            } => write!(
                f,
                "epoch {epoch}: rank {rank} entered `{next}` after `{prev}`"
            ),
            TimelineError::DeclarationBeforeKill { epoch } => {
                write!(f, "epoch {epoch}: declaration precedes the kill")
            }
            TimelineError::UndeclaredEpoch { epoch } => {
                write!(f, "epoch {epoch}: recovery phases without a declaration")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

const fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Detect => 0,
        Phase::Undo => 1,
        Phase::Fence => 2,
        Phase::Broadcast => 3,
        Phase::Replay => 3, // broadcast and replay are alternatives
        Phase::Resume => 4,
    }
}

#[derive(Default)]
struct PhaseAgg {
    min_begin: u64,
    max_end: u64,
    begins: u64,
    ends: u64,
}

/// Groups `events` into per-epoch incidents and validates them (see the
/// module docs for the invariants). An empty stream yields an empty
/// timeline.
pub fn reconstruct(events: &[Stamped]) -> Result<Timeline, TimelineError> {
    // Kill ground truth: (timestamp, ranks).
    let mut kills: Vec<(u64, &[Rank])> = Vec::new();
    // First declaration timestamp + union of declared ranks, per epoch.
    let mut declared: BTreeMap<Epoch, (u64, Vec<Rank>)> = BTreeMap::new();
    // Aggregate span extents per (epoch, phase).
    let mut agg: BTreeMap<(Epoch, Phase), PhaseAgg> = BTreeMap::new();
    // Per-rank span stream per epoch, in record order (= program order
    // for the rank's thread): (rank, phase, is_begin).
    let mut per_rank: BTreeMap<(Epoch, Rank), Vec<(Phase, bool)>> = BTreeMap::new();

    for s in events {
        match &s.event {
            Event::Kill { ranks } => kills.push((s.at_ns, ranks)),
            Event::Declared { epoch, ranks } => {
                let e = declared.entry(*epoch).or_insert((s.at_ns, Vec::new()));
                e.0 = e.0.min(s.at_ns);
                for &r in ranks {
                    if !e.1.contains(&r) {
                        e.1.push(r);
                    }
                }
            }
            Event::PhaseBegin { rank, epoch, phase } => {
                let a = agg.entry((*epoch, *phase)).or_insert(PhaseAgg {
                    min_begin: u64::MAX,
                    ..PhaseAgg::default()
                });
                a.min_begin = a.min_begin.min(s.at_ns);
                a.begins += 1;
                per_rank
                    .entry((*epoch, *rank))
                    .or_default()
                    .push((*phase, true));
            }
            Event::PhaseEnd { rank, epoch, phase } => {
                let a = agg.entry((*epoch, *phase)).or_insert(PhaseAgg {
                    min_begin: u64::MAX,
                    ..PhaseAgg::default()
                });
                a.max_end = a.max_end.max(s.at_ns);
                a.ends += 1;
                per_rank
                    .entry((*epoch, *rank))
                    .or_default()
                    .push((*phase, false));
            }
            // Process lifecycle markers: context for humans reading the
            // raw event stream, not part of the phase accounting.
            Event::Spawn { .. } | Event::Respawn { .. } => {}
        }
    }

    // Per-rank pairing and ordering.
    for (&(epoch, rank), spans) in &per_rank {
        let mut open: Option<Phase> = None;
        let mut last_closed: Option<Phase> = None;
        for &(phase, is_begin) in spans {
            if is_begin {
                if let Some(p) = open {
                    // Nested/overlapping spans on one rank: repeated
                    // begins of the same phase are tolerated (a fence
                    // helper inside a tracked fence phase), anything
                    // else is a protocol bug.
                    if p != phase {
                        return Err(TimelineError::UnbalancedSpan {
                            epoch,
                            rank,
                            phase: p,
                        });
                    }
                    continue;
                }
                if let Some(prev) = last_closed {
                    if phase_index(phase) < phase_index(prev) {
                        return Err(TimelineError::OutOfOrder {
                            epoch,
                            rank,
                            prev,
                            next: phase,
                        });
                    }
                }
                open = Some(phase);
            } else {
                match open {
                    Some(p) if p == phase => {
                        open = None;
                        last_closed = Some(phase);
                    }
                    // An end for an already-closed same phase (nested
                    // repeat closed above) is tolerated symmetrically.
                    _ if last_closed == Some(phase) => {}
                    _ => return Err(TimelineError::UnbalancedSpan { epoch, rank, phase }),
                }
            }
        }
        if let Some(p) = open {
            return Err(TimelineError::UnbalancedSpan {
                epoch,
                rank,
                phase: p,
            });
        }
    }

    // Any phase activity under an undeclared epoch is a protocol bug.
    for &(epoch, _) in agg.keys() {
        if !declared.contains_key(&epoch) {
            return Err(TimelineError::UndeclaredEpoch { epoch });
        }
    }

    let max_epoch = declared.keys().max().copied();
    let mut incidents = Vec::new();
    for (&epoch, &(declared_ns, ref failed)) in &declared {
        let has = |phase: Phase| agg.contains_key(&(epoch, phase));
        if !has(Phase::Undo) && !has(Phase::Fence) && !has(Phase::Resume) {
            // A declaration with no recovery activity (e.g. the epoch
            // bump from a rank re-declared during rejoin bookkeeping)
            // is not an incident.
            continue;
        }

        // Balanced span counts per phase (cheap aggregate re-check).
        for (&(e, phase), a) in &agg {
            if e == epoch && a.begins != a.ends {
                return Err(TimelineError::UnbalancedSpan {
                    epoch,
                    rank: usize::MAX,
                    phase,
                });
            }
        }

        // A cascading failure abandons the in-flight attempt: its epoch
        // is superseded by a later declaration and its phase set stops
        // wherever the supervisor restarted. Such incidents are reported
        // as aborted instead of failing the presence invariants — those
        // apply to the epoch the final attempt ran under.
        let superseded = max_epoch.is_some_and(|m| epoch < m);
        let complete = has(Phase::Undo)
            && has(Phase::Fence)
            && has(Phase::Resume)
            && (has(Phase::Broadcast) ^ has(Phase::Replay));
        let aborted = superseded && !complete;

        let phase_chain: Vec<Phase> = if aborted {
            [
                Phase::Undo,
                Phase::Fence,
                Phase::Broadcast,
                Phase::Replay,
                Phase::Resume,
            ]
            .into_iter()
            .filter(|&p| has(p))
            .collect()
        } else {
            let sync = match (has(Phase::Broadcast), has(Phase::Replay)) {
                (true, true) => return Err(TimelineError::AmbiguousSync { epoch }),
                (true, false) => Phase::Broadcast,
                (false, true) => Phase::Replay,
                (false, false) => {
                    return Err(TimelineError::MissingPhase {
                        epoch,
                        phase: Phase::Broadcast,
                    })
                }
            };
            for required in [Phase::Undo, Phase::Fence, Phase::Resume] {
                if !has(required) {
                    return Err(TimelineError::MissingPhase {
                        epoch,
                        phase: required,
                    });
                }
            }
            vec![Phase::Undo, Phase::Fence, sync, Phase::Resume]
        };

        // Detect: the latest kill at or before the declaration whose
        // victims intersect the declared set. A declaration without a
        // matching kill (false suspicion) yields a zero-width detect
        // segment starting at the declaration.
        let kill_ns = kills
            .iter()
            .filter(|(ts, ranks)| *ts <= declared_ns && ranks.iter().any(|r| failed.contains(r)))
            .map(|(ts, _)| *ts)
            .max();
        if kill_ns.is_none()
            && kills
                .iter()
                .any(|(_, ranks)| ranks.iter().any(|r| failed.contains(r)))
        {
            return Err(TimelineError::DeclarationBeforeKill { epoch });
        }
        let detect_start = kill_ns.unwrap_or(declared_ns);

        // Monotone phase boundaries (see module docs): segments are
        // contiguous and non-overlapping by construction.
        let mut segments = vec![Segment {
            phase: Phase::Detect,
            start_ns: detect_start,
            end_ns: declared_ns,
        }];
        let mut boundary = declared_ns;
        for phase in phase_chain {
            let a = &agg[&(epoch, phase)];
            let end = boundary.max(a.max_end);
            segments.push(Segment {
                phase,
                start_ns: boundary,
                end_ns: end,
            });
            boundary = end;
        }

        incidents.push(Incident {
            epoch,
            failed: failed.clone(),
            segments,
            aborted,
        });
    }

    Ok(Timeline { incidents })
}

impl Timeline {
    /// Human-readable per-incident breakdown.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.incidents.is_empty() {
            out.push_str("no incidents\n");
            return out;
        }
        for inc in &self.incidents {
            let failed = inc
                .failed
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                "incident epoch={} failed=[{}] total={:.3}ms{}",
                inc.epoch,
                failed,
                inc.total_ns() as f64 / 1e6,
                if inc.aborted {
                    "  (aborted by cascade)"
                } else {
                    ""
                }
            );
            for seg in &inc.segments {
                let pct = if inc.total_ns() > 0 {
                    seg.duration_ns() as f64 * 100.0 / inc.total_ns() as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:<9} {:>10.3}ms  {:>5.1}%",
                    seg.phase.name(),
                    seg.duration_ns() as f64 / 1e6,
                    pct
                );
            }
        }
        out
    }

    /// Line-per-incident JSON (same hand-rolled style as the bench
    /// output — the format is under our control and carries no
    /// dependency).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("[\n");
        for (i, inc) in self.incidents.iter().enumerate() {
            let failed = inc
                .failed
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let phases = inc
                .segments
                .iter()
                .map(|s| {
                    format!(
                        "{{\"phase\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"duration_ns\":{}}}",
                        s.phase.name(),
                        s.start_ns,
                        s.end_ns,
                        s.duration_ns()
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                "{{\"epoch\":{},\"failed\":[{}],\"aborted\":{},\"total_ns\":{},\"phases\":[{}]}}",
                inc.epoch,
                failed,
                inc.aborted,
                inc.total_ns(),
                phases
            );
            out.push_str(if i + 1 < self.incidents.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, event: Event) -> Stamped {
        Stamped { at_ns, event }
    }

    fn begin(at: u64, rank: Rank, phase: Phase) -> Stamped {
        ev(
            at,
            Event::PhaseBegin {
                rank,
                epoch: Epoch::new(1),
                phase,
            },
        )
    }

    fn end(at: u64, rank: Rank, phase: Phase) -> Stamped {
        ev(
            at,
            Event::PhaseEnd {
                rank,
                epoch: Epoch::new(1),
                phase,
            },
        )
    }

    fn healthy_stream() -> Vec<Stamped> {
        vec![
            ev(10, Event::Kill { ranks: vec![2] }),
            ev(
                30,
                Event::Declared {
                    epoch: Epoch::new(1),
                    ranks: vec![2],
                },
            ),
            begin(40, 0, Phase::Undo),
            begin(42, 1, Phase::Undo),
            end(50, 0, Phase::Undo),
            // Rank 0 fences while rank 1 still undoes: legal overlap.
            begin(52, 0, Phase::Fence),
            end(55, 1, Phase::Undo),
            begin(56, 1, Phase::Fence),
            end(70, 0, Phase::Fence),
            end(72, 1, Phase::Fence),
            begin(73, 0, Phase::Broadcast),
            begin(74, 1, Phase::Broadcast),
            end(90, 0, Phase::Broadcast),
            end(91, 1, Phase::Broadcast),
            begin(92, 0, Phase::Resume),
            begin(93, 1, Phase::Resume),
            end(100, 0, Phase::Resume),
            end(104, 1, Phase::Resume),
        ]
    }

    #[test]
    fn healthy_stream_reconstructs_contiguous_breakdown() {
        let tl = reconstruct(&healthy_stream()).unwrap();
        assert_eq!(tl.incidents.len(), 1);
        let inc = &tl.incidents[0];
        assert_eq!(inc.epoch, Epoch::new(1));
        assert_eq!(inc.failed, vec![2]);
        let phases: Vec<Phase> = inc.segments.iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Detect,
                Phase::Undo,
                Phase::Fence,
                Phase::Broadcast,
                Phase::Resume
            ]
        );
        // Contiguous + non-overlapping: each segment starts where the
        // previous ended.
        for w in inc.segments.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
        assert_eq!(inc.segments[0].start_ns, 10);
        assert_eq!(inc.segments[0].end_ns, 30);
        assert_eq!(inc.segment(Phase::Undo).unwrap().end_ns, 55);
        assert_eq!(inc.segment(Phase::Fence).unwrap().end_ns, 72);
        assert_eq!(inc.total_ns(), 104 - 10);
    }

    #[test]
    fn empty_stream_is_an_empty_timeline() {
        assert_eq!(reconstruct(&[]).unwrap(), Timeline::default());
    }

    #[test]
    fn missing_sync_phase_is_rejected() {
        let events: Vec<Stamped> = healthy_stream()
            .into_iter()
            .filter(|s| {
                !matches!(
                    s.event,
                    Event::PhaseBegin {
                        phase: Phase::Broadcast,
                        ..
                    } | Event::PhaseEnd {
                        phase: Phase::Broadcast,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(
            reconstruct(&events),
            Err(TimelineError::MissingPhase {
                epoch: Epoch::new(1),
                phase: Phase::Broadcast
            })
        );
    }

    #[test]
    fn both_sync_phases_are_rejected() {
        let mut events = healthy_stream();
        events.push(begin(75, 3, Phase::Replay));
        events.push(end(80, 3, Phase::Replay));
        assert_eq!(
            reconstruct(&events),
            Err(TimelineError::AmbiguousSync {
                epoch: Epoch::new(1)
            })
        );
    }

    #[test]
    fn unbalanced_span_is_rejected() {
        let mut events = healthy_stream();
        // Rank 1 begins a resume it never ends... by removing its end.
        events.retain(|s| {
            !matches!(
                s.event,
                Event::PhaseEnd {
                    rank: 1,
                    phase: Phase::Resume,
                    ..
                }
            )
        });
        assert_eq!(
            reconstruct(&events),
            Err(TimelineError::UnbalancedSpan {
                epoch: Epoch::new(1),
                rank: 1,
                phase: Phase::Resume
            })
        );
    }

    #[test]
    fn per_rank_order_violation_is_rejected() {
        let events = vec![
            ev(
                5,
                Event::Declared {
                    epoch: Epoch::new(1),
                    ranks: vec![2],
                },
            ),
            begin(10, 0, Phase::Fence),
            end(20, 0, Phase::Fence),
            begin(21, 0, Phase::Undo), // undo after fence: protocol bug
            end(22, 0, Phase::Undo),
        ];
        assert_eq!(
            reconstruct(&events),
            Err(TimelineError::OutOfOrder {
                epoch: Epoch::new(1),
                rank: 0,
                prev: Phase::Fence,
                next: Phase::Undo
            })
        );
    }

    #[test]
    fn phases_under_undeclared_epoch_are_rejected() {
        let events = vec![begin(10, 0, Phase::Undo), end(20, 0, Phase::Undo)];
        assert_eq!(
            reconstruct(&events),
            Err(TimelineError::UndeclaredEpoch {
                epoch: Epoch::new(1)
            })
        );
    }

    #[test]
    fn declaration_without_recovery_activity_is_not_an_incident() {
        let events = vec![ev(
            5,
            Event::Declared {
                epoch: Epoch::new(3),
                ranks: vec![0],
            },
        )];
        assert_eq!(reconstruct(&events).unwrap().incidents.len(), 0);
    }

    #[test]
    fn json_and_text_render() {
        let tl = reconstruct(&healthy_stream()).unwrap();
        let json = tl.to_json();
        assert!(json.contains("\"epoch\":1"));
        assert!(json.contains("\"phase\":\"detect\""));
        assert!(json.contains("\"duration_ns\":20"));
        let text = tl.render_text();
        assert!(text.contains("incident epoch=1 failed=[2]"));
        assert!(text.contains("broadcast"));
    }

    #[test]
    fn cascade_abandons_first_epoch_as_aborted_incident() {
        // Epoch 1's attempt gets through undo, then rank 3 dies too: the
        // supervisor closes the open span and restarts under epoch 2,
        // which runs to completion.
        let e = |n| Epoch::new(n);
        let events = vec![
            ev(0, Event::Kill { ranks: vec![2] }),
            ev(
                5,
                Event::Declared {
                    epoch: e(1),
                    ranks: vec![2],
                },
            ),
            ev(
                10,
                Event::PhaseBegin {
                    rank: 0,
                    epoch: e(1),
                    phase: Phase::Undo,
                },
            ),
            ev(
                15,
                Event::PhaseEnd {
                    rank: 0,
                    epoch: e(1),
                    phase: Phase::Undo,
                },
            ),
            ev(16, Event::Kill { ranks: vec![3] }),
            ev(
                20,
                Event::Declared {
                    epoch: e(2),
                    ranks: vec![3],
                },
            ),
            ev(
                25,
                Event::PhaseBegin {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Undo,
                },
            ),
            ev(
                30,
                Event::PhaseEnd {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Undo,
                },
            ),
            ev(
                31,
                Event::PhaseBegin {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Fence,
                },
            ),
            ev(
                35,
                Event::PhaseEnd {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Fence,
                },
            ),
            ev(
                36,
                Event::PhaseBegin {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Broadcast,
                },
            ),
            ev(
                40,
                Event::PhaseEnd {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Broadcast,
                },
            ),
            ev(
                41,
                Event::PhaseBegin {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Resume,
                },
            ),
            ev(
                45,
                Event::PhaseEnd {
                    rank: 0,
                    epoch: e(2),
                    phase: Phase::Resume,
                },
            ),
        ];
        let tl = reconstruct(&events).unwrap();
        assert_eq!(tl.incidents.len(), 2);
        assert!(tl.incidents[0].aborted);
        assert_eq!(
            tl.incidents[0]
                .segments
                .iter()
                .map(|s| s.phase)
                .collect::<Vec<_>>(),
            vec![Phase::Detect, Phase::Undo]
        );
        assert!(!tl.incidents[1].aborted);
        assert_eq!(tl.incidents[1].segments.len(), 5);
        assert!(tl.to_json().contains("\"aborted\":true"));
    }

    #[test]
    fn repeated_same_phase_begin_on_one_rank_is_tolerated() {
        // A tracked fence phase that internally runs the fence helper
        // (which emits its own fence span) produces nested same-phase
        // begins; these must aggregate, not error.
        let mut events = vec![
            ev(0, Event::Kill { ranks: vec![1] }),
            ev(
                1,
                Event::Declared {
                    epoch: Epoch::new(1),
                    ranks: vec![1],
                },
            ),
            begin(2, 0, Phase::Undo),
            end(3, 0, Phase::Undo),
            begin(4, 0, Phase::Fence),
            begin(5, 0, Phase::Fence),
            end(6, 0, Phase::Fence),
            end(7, 0, Phase::Fence),
        ];
        events.extend([
            begin(8, 0, Phase::Replay),
            end(9, 0, Phase::Replay),
            begin(10, 0, Phase::Resume),
            end(11, 0, Phase::Resume),
        ]);
        let tl = reconstruct(&events).unwrap();
        assert_eq!(tl.incidents[0].segment(Phase::Fence).unwrap().end_ns, 7);
    }
}
