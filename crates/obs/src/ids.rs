//! Typed identifiers shared across every crate boundary.
//!
//! The failure-recovery protocols juggle four different `u64`-shaped
//! counters — the declared *failure epoch*, the communicator *generation*
//! a fence synchronizes to, the training *iteration*, and the pipeline
//! *microbatch index* — plus `usize` worker ranks. Passing the wrong one
//! used to type-check; with these newtypes it does not.
//!
//! [`Rank`] stays a plain `usize` alias: ranks index vectors and slices
//! on nearly every line of the runtime, and wrapping them would trade a
//! class of bugs the topology layer already prevents for pervasive
//! `.get()` noise. The *counter-shaped* identifiers are where the
//! confusion lived, and those are real newtypes.

/// A worker rank: `0..world`. Index-shaped on purpose (see module docs).
pub type Rank = usize;

macro_rules! counter_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw counter value.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw counter value.
            pub const fn get(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

counter_id!(
    /// A declared *failure epoch*: the monotone counter the detector bumps
    /// each time the dead set grows ([`declare_failed`]). Epoch `0` is the
    /// failure-free initial state. Recovery attempts, fences and
    /// rendezvous keys are all namespaced by the epoch they run under.
    ///
    /// [`declare_failed`]: ../../swift_net/fn.declare_failed.html
    Epoch
);

counter_id!(
    /// A communicator *generation* / fence namespace. Every recovery fence
    /// runs under a generation so that keys from different fences (and
    /// from repeated fences within one recovery, e.g. the replay-group
    /// fence and the resume fence) never collide. Generations are derived
    /// from the failure epoch via [`Epoch::generation`] /
    /// [`Epoch::fence_channel`], never invented ad hoc.
    Generation
);

counter_id!(
    /// A training iteration (the paper's global step counter). WAL
    /// records, checkpoints and replay ranges are keyed by it.
    IterationId
);

counter_id!(
    /// A microbatch index within one pipeline iteration (`0..m`). Logged
    /// boundary activations/gradients are keyed by `(iteration,
    /// microbatch)`.
    MicrobatchId
);

impl Epoch {
    /// The primary fence generation for this epoch (channel 0): used when
    /// a recovery performs a single fence.
    pub const fn generation(self) -> Generation {
        self.fence_channel(0)
    }

    /// A per-epoch fence *channel*: one recovery may fence more than once
    /// (replay-group fence, then resume fence), and each fence needs its
    /// own key namespace. All participants derive the namespace from the
    /// same epoch and channel, so the scheme can change in exactly one
    /// place.
    pub const fn fence_channel(self, channel: u64) -> Generation {
        Generation(self.0.wrapping_mul(10).wrapping_add(channel))
    }
}

impl IterationId {
    /// The following iteration.
    pub const fn next(self) -> Self {
        IterationId(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_channels_are_disjoint_across_epochs() {
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..100u64 {
            for ch in 0..10u64 {
                assert!(
                    seen.insert(Epoch::new(epoch).fence_channel(ch)),
                    "collision at epoch {epoch} channel {ch}"
                );
            }
        }
    }

    #[test]
    fn ids_round_trip_and_order() {
        let e: Epoch = 7u64.into();
        assert_eq!(e.get(), 7);
        assert_eq!(e.to_string(), "7");
        assert!(Epoch::new(1) < Epoch::new(2));
        assert_eq!(IterationId::new(3).next(), IterationId::new(4));
        assert_eq!(Epoch::default(), Epoch::new(0));
    }
}
