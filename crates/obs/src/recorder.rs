//! The process-global event/counter sink.
//!
//! Instrumented code calls [`emit`] and [`add`]; both are a single
//! relaxed atomic load plus a predicted-not-taken branch when no recorder
//! is installed — the *zero-cost-when-disabled* contract that lets the
//! fault fabric, the WAL writer and the supervisor stay instrumented in
//! release builds (`cargo xtask bench --quick` keeps this honest with a
//! dedicated microbench). Event construction is deferred behind a
//! closure so disabled call sites do not even allocate.
//!
//! Timestamps come from whichever clock was active at [`install`] time:
//!
//! - **wall**: nanoseconds since installation, from a monotonic
//!   [`Instant`] — the default outside the simulator;
//! - **logical** ([`install_logical`]): a deterministic counter that
//!   ticks once per recorded event, for simulator-driven runs where wall
//!   time is meaningless and reproducibility is the point.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::ids::{Epoch, Rank};

/// The paper-phase vocabulary of the recovery breakdown (§6). Order is
/// the canonical per-incident order the timeline reconstructor asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Failure occurrence → declaration in the KV store.
    Detect,
    /// Crash-consistency repair: undoing partially applied updates (§4).
    Undo,
    /// The recovery fence: sequence realignment, purge, generation sync.
    Fence,
    /// State synchronization by replica broadcast (§3).
    Broadcast,
    /// State synchronization by logged-microbatch replay (§5).
    Replay,
    /// Resume fence + final bookkeeping before training continues.
    Resume,
}

impl Phase {
    /// All phases in canonical order.
    pub const ALL: [Phase; 6] = [
        Phase::Detect,
        Phase::Undo,
        Phase::Fence,
        Phase::Broadcast,
        Phase::Replay,
        Phase::Resume,
    ];

    /// Stable lower-case name (used in text and JSON renderings).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::Undo => "undo",
            Phase::Fence => "fence",
            Phase::Broadcast => "broadcast",
            Phase::Replay => "replay",
            Phase::Resume => "resume",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Monotonic counters the runtime accounts recovery cost with. Each
/// `add` also feeds a power-of-two histogram of the deltas, so skew
/// (one huge flush vs many small ones) stays visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Bytes of boundary tensors appended to the WAL (§5.1).
    BytesLogged,
    /// Bytes whose upload was absorbed by pipeline bubbles (§5.4) —
    /// logging cost hidden inside idle time rather than added to the
    /// critical path.
    BubbleBytes,
    /// Messages retransmitted after an injected transient drop.
    Retransmits,
    /// Supervisor restarts forced by cascading failures (Appendix B).
    Restarts,
    /// Optimizer updates undone during consistency repair (§4).
    UndoneUpdates,
    /// Bytes written by global checkpoints (the backstop, §2).
    CheckpointBytes,
    /// Bytes the bubble budget rejected: staged logging debt exceeded
    /// what bubbles could hide, so the record was written synchronously
    /// on the critical path (§5.4 spill rule).
    SpilledBytes,
    /// WAL records found truncated mid-record (a torn write from a
    /// crash during flush) and skipped-and-reported by replay.
    TornWalRecords,
    /// Tensor-buffer pool requests served from the freelist (PR 8
    /// steady-state allocation contract).
    PoolHits,
    /// Tensor-buffer pool requests that fell through to the system
    /// allocator (warmup, or a size class that was drained).
    PoolMisses,
    /// Bytes of buffer capacity returned to the pool for reuse.
    BytesPooled,
    /// Bytes written by *delta* (incremental) checkpoint saves — only the
    /// tensors that changed since the base checkpoint (PR 10).
    DeltaCheckpointBytes,
}

impl Counter {
    /// All counters, index-aligned with the recorder's storage.
    pub const ALL: [Counter; 12] = [
        Counter::BytesLogged,
        Counter::BubbleBytes,
        Counter::Retransmits,
        Counter::Restarts,
        Counter::UndoneUpdates,
        Counter::CheckpointBytes,
        Counter::SpilledBytes,
        Counter::TornWalRecords,
        Counter::PoolHits,
        Counter::PoolMisses,
        Counter::BytesPooled,
        Counter::DeltaCheckpointBytes,
    ];

    /// Stable snake_case name (used in JSON renderings).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::BytesLogged => "bytes_logged",
            Counter::BubbleBytes => "bubble_bytes",
            Counter::Retransmits => "retransmits",
            Counter::Restarts => "restarts",
            Counter::UndoneUpdates => "undone_updates",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::SpilledBytes => "spilled_bytes",
            Counter::TornWalRecords => "torn_wal_records",
            Counter::PoolHits => "pool_hits",
            Counter::PoolMisses => "pool_misses",
            Counter::BytesPooled => "bytes_pooled",
            Counter::DeltaCheckpointBytes => "delta_checkpoint_bytes",
        }
    }

    const fn index(self) -> usize {
        match self {
            Counter::BytesLogged => 0,
            Counter::BubbleBytes => 1,
            Counter::Retransmits => 2,
            Counter::Restarts => 3,
            Counter::UndoneUpdates => 4,
            Counter::CheckpointBytes => 5,
            Counter::SpilledBytes => 6,
            Counter::TornWalRecords => 7,
            Counter::PoolHits => 8,
            Counter::PoolMisses => 9,
            Counter::BytesPooled => 10,
            Counter::DeltaCheckpointBytes => 11,
        }
    }
}

/// One observability event. Kill/Declared mark incident boundaries;
/// Phase spans carry the per-rank recovery work between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The fault fabric killed these ranks' machine (ground truth for
    /// detection latency — production code never reads this, only the
    /// timeline does).
    Kill { ranks: Vec<Rank> },
    /// The detector declared `ranks` dead, bumping the failure epoch to
    /// `epoch`.
    Declared { epoch: Epoch, ranks: Vec<Rank> },
    /// `rank` entered `phase` of the recovery running under `epoch`.
    PhaseBegin {
        rank: Rank,
        epoch: Epoch,
        phase: Phase,
    },
    /// `rank` finished `phase` of the recovery running under `epoch`.
    PhaseEnd {
        rank: Rank,
        epoch: Epoch,
        phase: Phase,
    },
    /// The process supervisor launched a fresh OS process for `rank`
    /// (`attempt` 0 is the initial spawn).
    Spawn { rank: Rank, attempt: u64 },
    /// The supervisor replaced a dead `rank` process while recovery
    /// epoch `epoch` was in flight.
    Respawn { rank: Rank, epoch: Epoch },
}

/// An [`Event`] with its recorded timestamp (nanoseconds on the wall
/// clock, ticks on the logical clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped {
    pub at_ns: u64,
    pub event: Event,
}

/// Where emitted events and counter bumps land. Implementations must be
/// cheap and lock-light: emitters sit on recovery and logging hot paths.
pub trait Recorder: Send + Sync {
    /// Records a timestamped event.
    fn record(&self, at_ns: u64, event: Event);
    /// Adds `delta` to `counter`.
    fn add(&self, counter: Counter, delta: u64);
}

/// Discards everything. Useful as an explicit stand-in where a recorder
/// value is required but observation is not wanted.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _at_ns: u64, _event: Event) {}
    fn add(&self, _counter: Counter, _delta: u64) {}
}

const HISTO_BUCKETS: usize = 64;

/// Counts and power-of-two delta histogram for one [`Counter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sum of all deltas.
    pub total: u64,
    /// Number of `add` calls.
    pub samples: u64,
    /// `buckets[i]` counts deltas with `floor(log2(delta)) == i`
    /// (`delta == 0` lands in bucket 0).
    pub buckets: Vec<(u32, u64)>,
}

struct CounterCell {
    total: AtomicU64,
    samples: AtomicU64,
    buckets: [AtomicU64; HISTO_BUCKETS],
}

impl CounterCell {
    fn new() -> Self {
        CounterCell {
            total: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn add(&self, delta: u64) {
        self.total.fetch_add(delta, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
        let bucket = if delta == 0 {
            0
        } else {
            63 - delta.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            total: self.total.load(Ordering::Relaxed),
            samples: self.samples.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// In-memory recorder: keeps every event and aggregates counters.
/// The sink behind `cargo xtask timeline` and the timeline tests.
pub struct MemoryRecorder {
    events: Mutex<Vec<Stamped>>,
    counters: [CounterCell; Counter::ALL.len()],
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        MemoryRecorder {
            events: Mutex::new(Vec::new()),
            counters: std::array::from_fn(|_| CounterCell::new()),
        }
    }
}

impl MemoryRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of all recorded events, in record order.
    pub fn events(&self) -> Vec<Stamped> {
        self.events.lock().expect("recorder events lock").clone()
    }

    /// The running total for `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].total.load(Ordering::Relaxed)
    }

    /// Total + sample count + log2 delta histogram for `counter`.
    pub fn histogram(&self, counter: Counter) -> HistogramSnapshot {
        self.counters[counter.index()].snapshot()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, at_ns: u64, event: Event) {
        self.events
            .lock()
            .expect("recorder events lock")
            .push(Stamped { at_ns, event });
    }

    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter.index()].add(delta);
    }
}

enum Clock {
    /// Nanoseconds since installation (monotonic).
    Wall(Instant),
    /// Deterministic tick-per-event counter.
    Logical,
}

struct Installed {
    recorder: Arc<dyn Recorder>,
    clock: Clock,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static LOGICAL_NOW: AtomicU64 = AtomicU64::new(0);
static GLOBAL: RwLock<Option<Installed>> = RwLock::new(None);

/// Installs `recorder` as the process-global sink, stamping events with
/// monotonic wall time (nanoseconds since this call). Replaces any
/// previously installed recorder.
pub fn install(recorder: Arc<dyn Recorder>) {
    install_with(recorder, Clock::Wall(Instant::now()));
}

/// Installs `recorder` with the deterministic logical clock: each
/// recorded event gets the next tick. For simulator-driven runs.
pub fn install_logical(recorder: Arc<dyn Recorder>) {
    LOGICAL_NOW.store(0, Ordering::SeqCst);
    install_with(recorder, Clock::Logical);
}

fn install_with(recorder: Arc<dyn Recorder>, clock: Clock) {
    let mut slot = GLOBAL.write().expect("recorder slot lock");
    *slot = Some(Installed { recorder, clock });
    ENABLED.store(true, Ordering::Release);
}

/// Removes the global recorder; [`emit`]/[`add`] return to the disabled
/// fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    let mut slot = GLOBAL.write().expect("recorder slot lock");
    *slot = None;
}

/// Whether a recorder is installed. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emits an event if a recorder is installed. The closure only runs when
/// enabled, so call sites pay one load + branch when disabled.
#[inline]
pub fn emit(make: impl FnOnce() -> Event) {
    if enabled() {
        emit_slow(make());
    }
}

#[cold]
fn emit_slow(event: Event) {
    let slot = GLOBAL.read().expect("recorder slot lock");
    if let Some(installed) = slot.as_ref() {
        let at_ns = match &installed.clock {
            Clock::Wall(base) => base.elapsed().as_nanos() as u64,
            Clock::Logical => LOGICAL_NOW.fetch_add(1, Ordering::SeqCst),
        };
        installed.recorder.record(at_ns, event);
    }
}

/// Adds `delta` to `counter` if a recorder is installed.
#[inline]
pub fn add(counter: Counter, delta: u64) {
    if enabled() {
        add_slow(counter, delta);
    }
}

#[cold]
fn add_slow(counter: Counter, delta: u64) {
    let slot = GLOBAL.read().expect("recorder slot lock");
    if let Some(installed) = slot.as_ref() {
        installed.recorder.add(counter, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide; tests touching it run under
    // one lock so parallel test threads don't fight over it.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_emit_never_builds_the_event() {
        let _g = TEST_GUARD.lock().unwrap();
        uninstall();
        let mut built = false;
        emit(|| {
            built = true;
            Event::Kill { ranks: vec![0] }
        });
        assert!(!built, "disabled emit must not construct the event");
    }

    #[test]
    fn install_emit_uninstall_round_trip() {
        let _g = TEST_GUARD.lock().unwrap();
        let rec = Arc::new(MemoryRecorder::new());
        install(rec.clone());
        assert!(enabled());
        emit(|| Event::Kill { ranks: vec![2] });
        add(Counter::BytesLogged, 1024);
        add(Counter::BytesLogged, 3);
        uninstall();
        emit(|| Event::Kill { ranks: vec![9] });
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, Event::Kill { ranks: vec![2] });
        assert_eq!(rec.counter(Counter::BytesLogged), 1027);
        let h = rec.histogram(Counter::BytesLogged);
        assert_eq!(h.samples, 2);
        assert_eq!(h.buckets, vec![(1, 1), (10, 1)]);
    }

    #[test]
    fn logical_clock_ticks_deterministically() {
        let _g = TEST_GUARD.lock().unwrap();
        let rec = Arc::new(MemoryRecorder::new());
        install_logical(rec.clone());
        for _ in 0..3 {
            emit(|| Event::Kill { ranks: vec![] });
        }
        uninstall();
        let ts: Vec<u64> = rec.events().iter().map(|s| s.at_ns).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let _g = TEST_GUARD.lock().unwrap();
        let rec = Arc::new(MemoryRecorder::new());
        install(rec.clone());
        for _ in 0..10 {
            emit(|| Event::Kill { ranks: vec![] });
        }
        uninstall();
        let ts: Vec<u64> = rec.events().iter().map(|s| s.at_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
