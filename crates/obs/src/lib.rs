//! # swift-obs
//!
//! The observability layer under every other swift crate, answering the
//! question the paper's §6 evaluation stands on: *where does recovery
//! time go?*
//!
//! Three pieces:
//!
//! - [`ids`]: the shared typed-identifier vocabulary ([`Rank`],
//!   [`Epoch`], [`Generation`], [`IterationId`], [`MicrobatchId`]) used
//!   at every public crate-boundary signature, so mixing a rank with an
//!   epoch is a compile error instead of a silent off-by-one-world bug;
//! - [`recorder`]: a process-global span/event/counter sink behind a
//!   zero-cost-when-disabled gate (one relaxed atomic load on the hot
//!   path when no recorder is installed). Production code emits
//!   [`Event`]s — kills, failure declarations, recovery-phase spans —
//!   and bumps [`Counter`]s (bytes logged, bubble-flushed bytes per
//!   §5.4, retransmits, restarts, undone updates) without knowing or
//!   caring whether anything is listening. Timestamps come from a
//!   monotonic wall clock by default, or a deterministic logical clock
//!   when the simulator drives time;
//! - [`timeline`]: the recovery-timeline reconstructor. It groups the
//!   raw event stream into per-failure *incidents* and slices each into
//!   the paper's phases — detect → undo → fence → (broadcast | replay)
//!   → resume — asserting the phase-ordering invariants and producing
//!   non-overlapping segments by construction. `cargo xtask timeline`
//!   renders the result.
//!
//! This crate sits at the bottom of the dependency graph (it depends on
//! nothing in the workspace) precisely so that `net`, `optim`, `wal`,
//! `ckpt` and `core` can all emit into it.

pub mod ids;
pub mod recorder;
pub mod timeline;

pub use ids::{Epoch, Generation, IterationId, MicrobatchId, Rank};
pub use recorder::{
    add, emit, enabled, install, install_logical, uninstall, Counter, Event, HistogramSnapshot,
    MemoryRecorder, NullRecorder, Phase, Recorder, Stamped,
};
pub use timeline::{reconstruct, Incident, Segment, Timeline, TimelineError};
