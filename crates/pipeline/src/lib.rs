//! # swift-pipeline
//!
//! Pipeline parallelism for the SWIFT reproduction (paper §2.1):
//!
//! - [`schedule`]: 1F1B (PipeDream-Flush) and GPipe schedules, the
//!   closed-form bubble ratio `(p−1)/(m+p−1)`, an event-driven timeline
//!   simulator, and ASCII rendering of the paper's Fig. 1a;
//! - [`executor`]: runs one stage's schedule over a pluggable
//!   [`Transport`] — live communication during training, log replay during
//!   recovery — with [`PipelineObserver`] hooks at exactly the points
//!   SWIFT's logging needs (after sends, and at bubble onsets).

pub mod executor;
pub mod schedule;

pub use executor::{
    run_iteration, run_ops, tags, CommTransport, MsgKind, NullObserver, PipelineObserver,
    StagePlacement, Transport,
};
pub use schedule::{
    bubble_ratio, gpipe, one_f_one_b, render_ascii, simulate, stage_bubble_time, Op, ScheduleKind,
    Slot,
};
