//! The pipeline-parallel executor: runs one stage's schedule for one
//! training iteration, moving activations/gradients through a pluggable
//! [`Transport`].
//!
//! The transport abstraction is what makes logging-based recovery a
//! *re-execution* of the normal code path (§5.1): normal training uses
//! [`CommTransport`] (real point-to-point sends, with an observer hook for
//! the logger); recovery runs the *same* executor over a log-backed
//! transport that feeds recorded tensors instead of live receives.

use swift_dnn::{Mode, Sequential, StepCtx};
use swift_net::{Comm, CommError, Rank};
use swift_tensor::Tensor;

use crate::schedule::{schedule, Op, ScheduleKind};

/// What kind of tensor crosses a stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Forward-pass intermediate activation.
    Activation,
    /// Backward-pass gradient.
    Gradient,
}

/// Wire tags for pipeline traffic. Iteration is taken modulo 2²⁰ — tags
/// only need short-range uniqueness (a handful of in-flight iterations).
pub mod tags {
    use super::MsgKind;

    /// Tag for a pipeline message.
    pub fn tag(kind: MsgKind, iteration: u64, mb: usize) -> u64 {
        let k = match kind {
            MsgKind::Activation => 1u64,
            MsgKind::Gradient => 2u64,
        };
        (k << 40) | ((iteration & 0xF_FFFF) << 20) | (mb as u64 & 0xF_FFFF)
    }
}

/// Observer hooks on a running pipeline stage — the seam where SWIFT's
/// logging attaches (§5.1).
pub trait PipelineObserver {
    /// Called right after an outbound tensor is handed to the network.
    fn on_send(&mut self, _dst: Rank, _ctx: StepCtx, _kind: MsgKind, _t: &Tensor) {}

    /// Called when the stage is about to block waiting for input — i.e.
    /// bubble time, the window where asynchronous logging drains its
    /// queue off the critical path.
    fn on_idle(&mut self, _ctx: StepCtx) {}

    /// Called after each schedule op completes.
    fn on_op(&mut self, _op: Op, _iteration: u64) {}
}

/// A no-op observer.
pub struct NullObserver;

impl PipelineObserver for NullObserver {}

/// How a stage exchanges boundary tensors.
pub trait Transport {
    /// Sends this stage's output activation for `ctx` downstream.
    fn send_activation(&mut self, ctx: StepCtx, t: &Tensor) -> Result<(), CommError>;

    /// Receives the upstream activation for `ctx`.
    fn recv_activation(&mut self, ctx: StepCtx) -> Result<Tensor, CommError>;

    /// Sends this stage's input gradient for `ctx` upstream.
    fn send_gradient(&mut self, ctx: StepCtx, t: &Tensor) -> Result<(), CommError>;

    /// Receives the downstream gradient for `ctx`.
    fn recv_gradient(&mut self, ctx: StepCtx) -> Result<Tensor, CommError>;

    /// Flush-point bubble: called once the stage's op schedule is done,
    /// right before the (local, comm-free) optimizer update — idle time a
    /// background logger can drain into. Default: nothing.
    fn flush_hint(&mut self, _iteration: u64) {}
}

/// The normal-training transport: real sends/receives over a [`Comm`],
/// with observer callbacks for logging and bubble detection.
pub struct CommTransport<'a, O: PipelineObserver> {
    /// The communicator of this stage's worker.
    pub comm: &'a mut Comm,
    /// Upstream rank (None for the first stage).
    pub prev: Option<Rank>,
    /// Downstream rank (None for the last stage).
    pub next: Option<Rank>,
    /// Logging/bubble observer.
    pub observer: &'a mut O,
}

impl<O: PipelineObserver> Transport for CommTransport<'_, O> {
    fn send_activation(&mut self, ctx: StepCtx, t: &Tensor) -> Result<(), CommError> {
        let dst = self.next.expect("last stage has no downstream");
        self.comm.send_tensor(
            dst,
            tags::tag(MsgKind::Activation, ctx.iteration, ctx.microbatch as usize),
            t,
        )?;
        self.observer.on_send(dst, ctx, MsgKind::Activation, t);
        Ok(())
    }

    fn recv_activation(&mut self, ctx: StepCtx) -> Result<Tensor, CommError> {
        let src = self.prev.expect("first stage has no upstream");
        self.observer.on_idle(ctx);
        self.comm.recv_tensor(
            src,
            tags::tag(MsgKind::Activation, ctx.iteration, ctx.microbatch as usize),
        )
    }

    fn send_gradient(&mut self, ctx: StepCtx, t: &Tensor) -> Result<(), CommError> {
        let dst = self.prev.expect("first stage has no upstream");
        self.comm.send_tensor(
            dst,
            tags::tag(MsgKind::Gradient, ctx.iteration, ctx.microbatch as usize),
            t,
        )?;
        self.observer.on_send(dst, ctx, MsgKind::Gradient, t);
        Ok(())
    }

    fn recv_gradient(&mut self, ctx: StepCtx) -> Result<Tensor, CommError> {
        let src = self.next.expect("last stage has no downstream");
        self.observer.on_idle(ctx);
        self.comm.recv_tensor(
            src,
            tags::tag(MsgKind::Gradient, ctx.iteration, ctx.microbatch as usize),
        )
    }

    fn flush_hint(&mut self, iteration: u64) {
        self.observer.on_idle(StepCtx::new(iteration, 0));
    }
}

/// Static description of this worker's place in the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct StagePlacement {
    /// This worker's stage index.
    pub stage: usize,
    /// Total stages `p`.
    pub num_stages: usize,
    /// Micro-batches per iteration `m`.
    pub microbatches: usize,
    /// Schedule flavor.
    pub kind: ScheduleKind,
}

impl StagePlacement {
    /// Whether this is the first stage.
    pub fn is_first(&self) -> bool {
        self.stage == 0
    }

    /// Whether this is the last stage.
    pub fn is_last(&self) -> bool {
        self.stage + 1 == self.num_stages
    }
}

/// Runs one training iteration of this stage: executes the schedule,
/// accumulating parameter gradients in `model`. Returns the summed
/// micro-batch losses (0 on non-last stages).
///
/// `input` supplies micro-batch inputs on the first stage; `loss` maps the
/// last stage's output to `(loss, output-gradient)`. The caller performs
/// the optimizer update after the pipeline flush (synchronous training).
pub fn run_iteration<T: Transport>(
    model: &mut Sequential,
    placement: StagePlacement,
    iteration: u64,
    transport: &mut T,
    input: &mut dyn FnMut(usize) -> Tensor,
    loss: &mut dyn FnMut(usize, &Tensor) -> (f32, Tensor),
    observer_ops: &mut dyn FnMut(Op),
) -> Result<f32, CommError> {
    let ops = schedule(
        placement.kind,
        placement.num_stages,
        placement.stage,
        placement.microbatches,
    );
    run_ops(
        model,
        &ops,
        placement.is_first(),
        placement.is_last(),
        iteration,
        transport,
        input,
        loss,
        observer_ops,
    )
}

/// Runs an explicit op list for one stage — the primitive behind
/// [`run_iteration`], exposed so recovery can replay a *subset* of
/// micro-batches (parallel recovery, §5.2) through the identical code
/// path.
#[allow(clippy::too_many_arguments)]
pub fn run_ops<T: Transport>(
    model: &mut Sequential,
    ops: &[Op],
    is_first: bool,
    is_last: bool,
    iteration: u64,
    transport: &mut T,
    input: &mut dyn FnMut(usize) -> Tensor,
    loss: &mut dyn FnMut(usize, &Tensor) -> (f32, Tensor),
    observer_ops: &mut dyn FnMut(Op),
) -> Result<f32, CommError> {
    let mut pending_grads: std::collections::HashMap<usize, Tensor> = Default::default();
    let mut loss_sum = 0.0f32;
    for &op in ops {
        match op {
            Op::Forward { mb } => {
                let ctx = StepCtx::new(iteration, mb as u64);
                let x = if is_first {
                    input(mb)
                } else {
                    transport.recv_activation(ctx)?
                };
                let y = model.forward(ctx, &x, Mode::Train);
                if is_last {
                    let (l, g) = loss(mb, &y);
                    loss_sum += l;
                    pending_grads.insert(mb, g);
                } else {
                    transport.send_activation(ctx, &y)?;
                }
            }
            Op::Backward { mb } => {
                let ctx = StepCtx::new(iteration, mb as u64);
                let g = if is_last {
                    pending_grads.remove(&mb).expect("backward before forward")
                } else {
                    transport.recv_gradient(ctx)?
                };
                let dx = model.backward(ctx, &g);
                if !is_first {
                    transport.send_gradient(ctx, &dx)?;
                }
            }
        }
        observer_ops(op);
    }
    transport.flush_hint(iteration);
    Ok(loss_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_data::{split_microbatches, BlobsDataset, Dataset};
    use swift_dnn::models::{mlp, split_stages};
    use swift_dnn::{softmax_cross_entropy, softmax_cross_entropy_scaled};
    use swift_net::{Cluster, Topology};
    use swift_optim::OptimizerKind;

    /// Runs a 1F1B 2-stage pipeline for some iterations and returns the
    /// final stage-0 parameters; used to check distributed == monolithic.
    fn run_pipeline(iters: u64, m: usize) -> (Vec<Tensor>, Vec<f32>) {
        let results = Cluster::run_all(Topology::uniform(2, 1), move |mut ctx| {
            let ds = BlobsDataset::new(3, 6, 3, 0.3);
            let stages = split_stages(mlp("m", &[6, 16, 16, 3], 11), 2);
            let stage_idx = ctx.rank();
            let mut model = stages.into_iter().nth(stage_idx).unwrap();
            let mut opt = OptimizerKind::SgdMomentum {
                lr: 0.05,
                weight_decay: 0.0,
                momentum: 0.9,
                dampening: 0.0,
            }
            .build();
            let placement = StagePlacement {
                stage: stage_idx,
                num_stages: 2,
                microbatches: m,
                kind: ScheduleKind::OneFOneB,
            };
            let batch_size = 8usize;
            let mut losses = Vec::new();
            for it in 0..iters {
                let batch = ds.batch(it, batch_size);
                let mbs = split_microbatches(&batch, m);
                let mut obs = NullObserver;
                let mut transport = CommTransport {
                    comm: &mut ctx.comm,
                    prev: (stage_idx > 0).then(|| stage_idx - 1),
                    next: (stage_idx < 1).then(|| stage_idx + 1),
                    observer: &mut obs,
                };
                let mbs_in = mbs.clone();
                let mut input = move |mb: usize| mbs_in[mb].batch.x.clone();
                let mbs_loss = mbs.clone();
                let mut loss = move |mb: usize, y: &Tensor| {
                    softmax_cross_entropy_scaled(y, &mbs_loss[mb].batch.y, 1.0 / batch_size as f32)
                };
                let l = run_iteration(
                    &mut model,
                    placement,
                    it,
                    &mut transport,
                    &mut input,
                    &mut loss,
                    &mut |_| {},
                )
                .unwrap();
                losses.push(l);
                model.optimizer_step(opt.as_mut());
                model.zero_grads();
            }
            (model.params_snapshot(), losses)
        });
        let (p0, _) = results[0].clone();
        let (_, l1) = results[1].clone();
        (p0, l1)
    }

    #[test]
    fn pipeline_matches_monolithic_training() {
        let iters = 5u64;
        let m = 4usize;
        let (stage0_params, pipe_losses) = run_pipeline(iters, m);

        // Monolithic reference: same model, same data, full batches.
        let ds = BlobsDataset::new(3, 6, 3, 0.3);
        let mut model = mlp("m", &[6, 16, 16, 3], 11);
        let mut opt = OptimizerKind::SgdMomentum {
            lr: 0.05,
            weight_decay: 0.0,
            momentum: 0.9,
            dampening: 0.0,
        }
        .build();
        let mut mono_losses = Vec::new();
        for it in 0..iters {
            let batch = ds.batch(it, 8);
            let ctx = StepCtx::new(it, 0);
            let y = model.forward(ctx, &batch.x, Mode::Train);
            let (l, g) = softmax_cross_entropy(&y, &batch.y);
            model.backward(ctx, &g);
            model.optimizer_step(opt.as_mut());
            model.zero_grads();
            mono_losses.push(l);
        }
        // Micro-batched losses sum to ~the full-batch mean loss.
        for (a, b) in pipe_losses.iter().zip(mono_losses.iter()) {
            assert!((a - b).abs() < 1e-4, "loss mismatch {a} vs {b}");
        }
        // Stage-0 parameters match the monolithic front layers closely.
        let mono_params = model.params_snapshot();
        for (i, sp) in stage0_params.iter().enumerate() {
            assert!(
                sp.max_abs_diff(&mono_params[i]) < 1e-4,
                "param {i} drifted: {}",
                sp.max_abs_diff(&mono_params[i])
            );
        }
    }

    #[test]
    fn pipeline_runs_are_bitwise_deterministic() {
        let (a, la) = run_pipeline(3, 4);
        let (b, lb) = run_pipeline(3, 4);
        assert_eq!(la.len(), lb.len());
        for (x, y) in la.iter().zip(lb.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "losses must be bit-identical");
        }
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.bit_eq(y), "params must be bit-identical");
        }
    }

    #[test]
    fn gpipe_schedule_also_trains() {
        let results = Cluster::run_all(Topology::uniform(2, 1), |mut ctx| {
            let ds = BlobsDataset::new(5, 4, 2, 0.2);
            let stages = split_stages(mlp("m", &[4, 8, 2], 7), 2);
            let stage_idx = ctx.rank();
            let mut model = stages.into_iter().nth(stage_idx).unwrap();
            let placement = StagePlacement {
                stage: stage_idx,
                num_stages: 2,
                microbatches: 2,
                kind: ScheduleKind::GPipe,
            };
            let batch = ds.batch(0, 4);
            let mbs = split_microbatches(&batch, 2);
            let mut obs = NullObserver;
            let mut transport = CommTransport {
                comm: &mut ctx.comm,
                prev: (stage_idx > 0).then(|| stage_idx - 1),
                next: (stage_idx < 1).then(|| stage_idx + 1),
                observer: &mut obs,
            };
            let mbs_in = mbs.clone();
            let mut input = move |mb: usize| mbs_in[mb].batch.x.clone();
            let mut loss = move |mb: usize, y: &Tensor| {
                softmax_cross_entropy_scaled(y, &mbs[mb].batch.y, 0.25)
            };
            run_iteration(
                &mut model,
                placement,
                0,
                &mut transport,
                &mut input,
                &mut loss,
                &mut |_| {},
            )
            .unwrap()
        });
        assert!(results[1] > 0.0, "last stage observed a positive loss");
        assert_eq!(results[0], 0.0, "first stage reports no loss");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use swift_data::{split_microbatches, BlobsDataset, Dataset};
    use swift_dnn::models::{mlp, split_stages};
    use swift_dnn::softmax_cross_entropy_scaled;
    use swift_net::{Cluster, Topology};

    /// Staged pipeline forward+backward gradients equal the monolithic
    /// model's within float-reassociation noise, for random (p, m, kind).
    fn staged_matches_monolithic(p: usize, m: usize, kind: ScheduleKind, seed: u64) {
        let dims = vec![6, 16, 16, 16, 3];
        let batch_size = 8usize;
        let grads_staged = Cluster::run_all(Topology::uniform(p, 1), move |mut ctx| {
            let ds = BlobsDataset::new(seed, 6, 3, 0.4);
            let stages = split_stages(mlp("pp", &dims, seed), p);
            let stage_idx = ctx.rank();
            let mut model = stages.into_iter().nth(stage_idx).unwrap();
            let placement = StagePlacement {
                stage: stage_idx,
                num_stages: p,
                microbatches: m,
                kind,
            };
            let batch = ds.batch(0, batch_size);
            let mbs = split_microbatches(&batch, m);
            let mut obs = NullObserver;
            let mut transport = CommTransport {
                comm: &mut ctx.comm,
                prev: (stage_idx > 0).then(|| stage_idx - 1),
                next: (stage_idx + 1 < p).then(|| stage_idx + 1),
                observer: &mut obs,
            };
            let mbs_in = mbs.clone();
            let mut input = move |mb: usize| mbs_in[mb].batch.x.clone();
            let mut loss = move |mb: usize, y: &Tensor| {
                softmax_cross_entropy_scaled(y, &mbs[mb].batch.y, 1.0 / batch_size as f32)
            };
            run_iteration(
                &mut model,
                placement,
                0,
                &mut transport,
                &mut input,
                &mut loss,
                &mut |_| {},
            )
            .unwrap();
            model.grads_snapshot()
        });

        let ds = BlobsDataset::new(seed, 6, 3, 0.4);
        let mut mono = mlp("pp", &[6, 16, 16, 16, 3], seed);
        let batch = ds.batch(0, batch_size);
        let ctx = swift_dnn::StepCtx::new(0, 0);
        let y = mono.forward(ctx, &batch.x, swift_dnn::Mode::Train);
        let (_, g) = softmax_cross_entropy_scaled(&y, &batch.y, 1.0 / batch_size as f32);
        mono.backward(ctx, &g);
        let grads_mono = mono.grads_snapshot();

        let flat: Vec<Tensor> = grads_staged.into_iter().flatten().collect();
        assert_eq!(flat.len(), grads_mono.len(), "p={p} m={m} {kind:?}");
        for (i, (a, b)) in flat.iter().zip(grads_mono.iter()).enumerate() {
            let err = a.max_abs_diff(b);
            assert!(err < 2e-4, "p={p} m={m} {kind:?} grad {i}: err {err}");
        }
    }

    #[test]
    fn staged_equals_monolithic_across_configs() {
        // Sweep the (p, m, schedule) space — every configuration must
        // produce the monolithic gradients.
        for (p, m) in [(2usize, 1usize), (2, 4), (3, 2), (4, 4), (4, 8), (2, 8)] {
            for kind in [ScheduleKind::OneFOneB, ScheduleKind::GPipe] {
                staged_matches_monolithic(p, m, kind, 100 + (p * 10 + m) as u64);
            }
        }
    }
}
