//! Synchronous pipeline schedules: 1F1B (PipeDream-Flush) and GPipe,
//! with bubble-time analysis (paper §2.1, Fig. 1a).

/// One unit of work in a stage's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Forward pass of micro-batch `mb`.
    Forward {
        /// Micro-batch index.
        mb: usize,
    },
    /// Backward pass of micro-batch `mb`.
    Backward {
        /// Micro-batch index.
        mb: usize,
    },
}

/// Which synchronous schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// One-forward-one-backward (PipeDream-Flush). Same bubble ratio as
    /// GPipe, lower peak memory — the paper's default (§2.1).
    OneFOneB,
    /// GPipe: all forwards, then all backwards.
    GPipe,
}

/// The in-order op list for `stage` of a `p`-stage pipeline running `m`
/// micro-batches under 1F1B.
///
/// Warmup: `min(p−1−stage, m)` forwards; steady state: alternating F/B;
/// cooldown: the remaining backwards.
pub fn one_f_one_b(p: usize, stage: usize, m: usize) -> Vec<Op> {
    assert!(stage < p && m >= 1);
    let warmup = (p - 1 - stage).min(m);
    let mut ops = Vec::with_capacity(2 * m);
    for mb in 0..warmup {
        ops.push(Op::Forward { mb });
    }
    for i in 0..m - warmup {
        ops.push(Op::Forward { mb: warmup + i });
        ops.push(Op::Backward { mb: i });
    }
    for mb in m - warmup..m {
        ops.push(Op::Backward { mb });
    }
    ops
}

/// The GPipe schedule for any stage: all forwards then all backwards.
pub fn gpipe(m: usize) -> Vec<Op> {
    assert!(m >= 1);
    (0..m)
        .map(|mb| Op::Forward { mb })
        .chain((0..m).map(|mb| Op::Backward { mb }))
        .collect()
}

/// The schedule for a stage under the chosen kind.
pub fn schedule(kind: ScheduleKind, p: usize, stage: usize, m: usize) -> Vec<Op> {
    match kind {
        ScheduleKind::OneFOneB => one_f_one_b(p, stage, m),
        ScheduleKind::GPipe => gpipe(m),
    }
}

/// Closed-form bubble ratio `(p−1)/(m+p−1)` (paper §2.1), identical for
/// GPipe and 1F1B.
pub fn bubble_ratio(p: usize, m: usize) -> f64 {
    (p as f64 - 1.0) / (m as f64 + p as f64 - 1.0)
}

/// A simulated execution slot on a stage's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// The op that ran.
    pub op: Op,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Event-driven simulation of a pipeline schedule with per-op durations
/// `t_f` / `t_b`: returns each stage's executed slots plus the makespan.
///
/// Dependencies: `F(s, mb)` needs `F(s−1, mb)`; `B(s, mb)` needs
/// `B(s+1, mb)`; ops on a stage run in schedule order. Gaps between slots
/// are the *bubbles* the logging subsystem exploits (§5.1).
pub fn simulate(
    kind: ScheduleKind,
    p: usize,
    m: usize,
    t_f: f64,
    t_b: f64,
) -> (Vec<Vec<Slot>>, f64) {
    let schedules: Vec<Vec<Op>> = (0..p).map(|s| schedule(kind, p, s, m)).collect();
    let mut done: std::collections::HashMap<(usize, Op), f64> = std::collections::HashMap::new();
    let mut next_idx = vec![0usize; p];
    let mut stage_free = vec![0f64; p];
    let mut slots: Vec<Vec<Slot>> = vec![Vec::new(); p];
    let total_ops: usize = schedules.iter().map(|s| s.len()).sum();
    let mut executed = 0usize;
    while executed < total_ops {
        let mut progressed = false;
        for s in 0..p {
            while next_idx[s] < schedules[s].len() {
                let op = schedules[s][next_idx[s]];
                let dep_end = match op {
                    Op::Forward { mb } if s > 0 => done.get(&(s - 1, Op::Forward { mb })).copied(),
                    Op::Backward { mb } if s + 1 < p => {
                        done.get(&(s + 1, Op::Backward { mb })).copied()
                    }
                    _ => Some(0.0),
                };
                let Some(dep_end) = dep_end else { break };
                let start = stage_free[s].max(dep_end);
                let dur = match op {
                    Op::Forward { .. } => t_f,
                    Op::Backward { .. } => t_b,
                };
                let end = start + dur;
                slots[s].push(Slot { op, start, end });
                done.insert((s, op), end);
                stage_free[s] = end;
                next_idx[s] += 1;
                executed += 1;
                progressed = true;
            }
        }
        assert!(progressed, "schedule deadlocked — dependency cycle");
    }
    let makespan = stage_free.iter().copied().fold(0.0, f64::max);
    (slots, makespan)
}

/// Total idle (bubble) time of `stage` within `[0, makespan]` of a
/// simulated timeline.
pub fn stage_bubble_time(slots: &[Slot], makespan: f64) -> f64 {
    let busy: f64 = slots.iter().map(|s| s.end - s.start).sum();
    makespan - busy
}

/// Renders a simulated timeline as ASCII art (one row per stage), the
/// shape of the paper's Fig. 1a.
pub fn render_ascii(slots: &[Vec<Slot>], makespan: f64, cols: usize) -> String {
    let scale = cols as f64 / makespan;
    let mut out = String::new();
    for (s, stage_slots) in slots.iter().enumerate() {
        let mut row = vec![' '; cols];
        for slot in stage_slots {
            let a = (slot.start * scale).round() as usize;
            let b = ((slot.end * scale).round() as usize).min(cols);
            let ch = match slot.op {
                Op::Forward { mb } => char::from_digit(mb as u32 % 10, 10).unwrap(),
                Op::Backward { .. } => 'b',
            };
            for c in row.iter_mut().take(b).skip(a) {
                *c = ch;
            }
        }
        out.push_str(&format!("P{s} |{}|\n", row.iter().collect::<String>()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_f_one_b_counts() {
        for p in 1..6 {
            for stage in 0..p {
                for m in 1..8 {
                    let ops = one_f_one_b(p, stage, m);
                    let f = ops
                        .iter()
                        .filter(|o| matches!(o, Op::Forward { .. }))
                        .count();
                    let b = ops
                        .iter()
                        .filter(|o| matches!(o, Op::Backward { .. }))
                        .count();
                    assert_eq!((f, b), (m, m), "p={p} stage={stage} m={m}");
                }
            }
        }
    }

    #[test]
    fn one_f_one_b_last_stage_alternates() {
        // Last stage has no warmup: F0 B0 F1 B1 …
        let ops = one_f_one_b(4, 3, 3);
        assert_eq!(
            ops,
            vec![
                Op::Forward { mb: 0 },
                Op::Backward { mb: 0 },
                Op::Forward { mb: 1 },
                Op::Backward { mb: 1 },
                Op::Forward { mb: 2 },
                Op::Backward { mb: 2 },
            ]
        );
    }

    #[test]
    fn one_f_one_b_first_stage_warmup() {
        let ops = one_f_one_b(4, 0, 4);
        // Warmup of 3 forwards before the first backward.
        assert_eq!(
            &ops[0..3],
            &[
                Op::Forward { mb: 0 },
                Op::Forward { mb: 1 },
                Op::Forward { mb: 2 },
            ]
        );
        assert_eq!(ops[3], Op::Forward { mb: 3 });
        assert_eq!(ops[4], Op::Backward { mb: 0 });
    }

    #[test]
    fn backward_order_is_fifo() {
        for p in 1..5 {
            for stage in 0..p {
                let ops = one_f_one_b(p, stage, 6);
                let bw: Vec<usize> = ops
                    .iter()
                    .filter_map(|o| match o {
                        Op::Backward { mb } => Some(*mb),
                        _ => None,
                    })
                    .collect();
                assert_eq!(bw, (0..6).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn bubble_ratio_fig1a() {
        // Paper Fig. 1a: p = 4, m = 4 → ratio 3/7.
        assert!((bubble_ratio(4, 4) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(bubble_ratio(1, 8), 0.0);
    }

    #[test]
    fn simulation_matches_closed_form() {
        // With t_f = t_b, makespan = (m + p − 1)(t_f + t_b) and the average
        // bubble fraction equals (p−1)/(m+p−1).
        for (p, m) in [(4usize, 4usize), (2, 8), (8, 2), (3, 5)] {
            let (slots, makespan) = simulate(ScheduleKind::OneFOneB, p, m, 1.0, 1.0);
            assert!(
                (makespan - (m + p - 1) as f64 * 2.0).abs() < 1e-9,
                "p={p} m={m} makespan {makespan}"
            );
            let total_bubble: f64 = slots.iter().map(|s| stage_bubble_time(s, makespan)).sum();
            let ratio = total_bubble / (makespan * p as f64);
            assert!(
                (ratio - bubble_ratio(p, m)).abs() < 1e-9,
                "p={p} m={m} ratio {ratio}"
            );
        }
    }

    #[test]
    fn gpipe_same_bubble_ratio_as_1f1b() {
        let (s1, mk1) = simulate(ScheduleKind::OneFOneB, 4, 4, 1.0, 1.0);
        let (s2, mk2) = simulate(ScheduleKind::GPipe, 4, 4, 1.0, 1.0);
        assert!((mk1 - mk2).abs() < 1e-9);
        let b1: f64 = s1.iter().map(|s| stage_bubble_time(s, mk1)).sum();
        let b2: f64 = s2.iter().map(|s| stage_bubble_time(s, mk2)).sum();
        assert!((b1 - b2).abs() < 1e-9);
    }

    #[test]
    fn one_f_one_b_peak_in_flight_lower_than_gpipe() {
        // 1F1B's advantage (§2.1): fewer concurrent live activations.
        fn peak_in_flight(ops: &[Op]) -> usize {
            let mut live = 0usize;
            let mut peak = 0;
            for op in ops {
                match op {
                    Op::Forward { .. } => {
                        live += 1;
                        peak = peak.max(live);
                    }
                    Op::Backward { .. } => live -= 1,
                }
            }
            peak
        }
        let p = 8;
        let m = 8;
        let f1b = peak_in_flight(&one_f_one_b(p, 0, m));
        let gp = peak_in_flight(&gpipe(m));
        assert!(f1b <= gp);
        // Last stage in 1F1B keeps only 1 in flight.
        assert_eq!(peak_in_flight(&one_f_one_b(p, p - 1, m)), 1);
    }

    #[test]
    fn simulation_respects_dependencies() {
        let (slots, _) = simulate(ScheduleKind::OneFOneB, 4, 4, 1.0, 2.0);
        let find = |s: usize, op: Op| slots[s].iter().find(|x| x.op == op).copied().unwrap();
        for mb in 0..4usize {
            for s in 1..4usize {
                assert!(
                    find(s, Op::Forward { mb }).start
                        >= find(s - 1, Op::Forward { mb }).end - 1e-12
                );
            }
            for s in 0..3usize {
                assert!(
                    find(s, Op::Backward { mb }).start
                        >= find(s + 1, Op::Backward { mb }).end - 1e-12
                );
            }
        }
    }

    #[test]
    fn ascii_render_has_one_row_per_stage() {
        let (slots, mk) = simulate(ScheduleKind::OneFOneB, 4, 4, 1.0, 1.0);
        let art = render_ascii(&slots, mk, 56);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('b'));
    }
}
