//! The §5.4 use-case test: is logging worth doing for a given model?
//!
//! Two criteria, straight from the paper:
//!
//! 1. **Storage** — "it would be better to checkpoint a model when the
//!    logging size far exceeds the model size": logs accumulate for a full
//!    checkpoint interval before GC, so the per-machine volume
//!    `log_bytes/iter × T` must fit the local disk. CNN activations blow
//!    this budget by an order of magnitude.
//! 2. **Bubble budget** — the per-iteration logging volume must cross
//!    PCIe *within the pipeline bubble time*, or logging intrudes on the
//!    critical path.

use swift_dnn::profile::{PaperModel, RecoveryFamily, Testbed};

/// Outcome of the use-case analysis for one model.
#[derive(Debug, Clone)]
pub struct UseCaseReport {
    /// Model name.
    pub model: &'static str,
    /// Bytes a single (interior) machine logs per iteration: its outgoing
    /// forward boundary plus its outgoing backward boundary.
    pub per_machine_log_bytes: f64,
    /// Time to push that volume over PCIe, seconds.
    pub pcie_time_s: f64,
    /// Bubble time available per iteration, seconds.
    pub bubble_time_s: f64,
    /// Per-machine log accumulation over one checkpoint interval, bytes.
    pub per_machine_interval_bytes: f64,
    /// Criterion 2: PCIe transfer fits in the bubble.
    pub fits_bubble: bool,
    /// Criterion 1: the accumulated logs fit the local disk.
    pub fits_storage: bool,
    /// The verdict.
    pub worth_logging: bool,
}

/// Evaluates the §5.4 decision rule for a model profile on a testbed.
pub fn evaluate(model: &PaperModel, testbed: &Testbed) -> UseCaseReport {
    // An interior machine logs one direction of each of its two adjacent
    // boundaries: activations rightward, gradients leftward — together one
    // boundary's worth of traffic per iteration.
    let per_machine = model.boundary_bytes_per_iteration();
    let pcie_time = per_machine / testbed.pcie_bps;
    let bubble = model.bubble_ratio() * model.iter_time_s;
    let interval_bytes = per_machine * model.ckpt_interval as f64;
    let fits_bubble = pcie_time <= bubble;
    let fits_storage = interval_bytes <= testbed.disk_capacity_bytes;
    UseCaseReport {
        model: model.name,
        per_machine_log_bytes: per_machine,
        pcie_time_s: pcie_time,
        bubble_time_s: bubble,
        per_machine_interval_bytes: interval_bytes,
        fits_bubble,
        fits_storage,
        worth_logging: model.family == RecoveryFamily::Logging && fits_bubble && fits_storage,
    }
}

/// A hypothetical Wide-ResNet-50 pipelined across machines, used to
/// exhibit the negative case (§5.4: CNN activations are "massive and
/// unsuitable for logging"): wide 56×56 feature maps with 1280 channels
/// make the boundary tensors ~20× a transformer's.
pub fn cnn_pipeline_profile() -> PaperModel {
    let mut m = swift_dnn::profile::wide_resnet_50();
    m.machines = 2;
    m.stages_per_machine = 4;
    m.microbatches = 4; // CNN memory limits micro-batching
    m.seq_len = 56 * 56; // spatial positions at the stage boundary
    m.hidden = 1280; // wide-resnet channel width at that depth
    m.family = RecoveryFamily::Logging; // hypothetically
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dnn::profile::{bert_128, vit_128_32, wide_resnet_50, TESTBED};

    #[test]
    fn transformers_are_worth_logging() {
        for m in [vit_128_32(), bert_128()] {
            let r = evaluate(&m, &TESTBED);
            assert!(
                r.worth_logging,
                "{}: pcie {:.3}s vs bubble {:.3}s, interval {:.0} GB",
                r.model,
                r.pcie_time_s,
                r.bubble_time_s,
                r.per_machine_interval_bytes / 1e9
            );
            assert!(r.fits_bubble && r.fits_storage);
        }
    }

    #[test]
    fn replication_model_not_in_logging_family() {
        let r = evaluate(&wide_resnet_50(), &TESTBED);
        assert!(!r.worth_logging);
    }

    #[test]
    fn cnn_pipeline_fails_the_storage_test() {
        // WRN-50's boundary tensors are ~1 GB per micro-batch; over a
        // 5004-iteration checkpoint interval that's tens of TB per machine
        // — an order of magnitude over the 3.6 TB NVMe. Exactly §5.4's
        // "logging size far exceeds the model size" rejection.
        let r = evaluate(&cnn_pipeline_profile(), &TESTBED);
        assert!(
            !r.fits_storage,
            "interval {:.1} TB",
            r.per_machine_interval_bytes / 1e12
        );
        assert!(!r.worth_logging);
        assert!(r.per_machine_interval_bytes > 10.0 * TESTBED.disk_capacity_bytes);
    }

    #[test]
    fn bert_interval_volume_is_tight_but_fits() {
        // BERT-128 logs ~0.54 GB/iter/machine over 5000 iterations ≈
        // 2.7 TB — close to, but under, the 3.6 TB NVMe. The margin being
        // thin is realistic: this is why selective logging exists.
        let r = evaluate(&bert_128(), &TESTBED);
        assert!(r.fits_storage);
        assert!(r.per_machine_interval_bytes > 0.5 * TESTBED.disk_capacity_bytes);
    }

    #[test]
    fn bubble_budget_has_headroom_for_transformers() {
        let r = evaluate(&bert_128(), &TESTBED);
        assert!(
            r.pcie_time_s * 10.0 < r.bubble_time_s,
            "logging is far off the critical path"
        );
    }
}
