//! Selective logging: machine grouping under a storage budget (§5.3).
//!
//! Logging every inter-machine boundary can cost hundreds of GB per
//! checkpoint period. SWIFT groups machines and logs only *inter-group*
//! boundaries; a failure inside a group rolls the whole group back to the
//! last checkpoint, so grouping trades recovery time for storage. The
//! planner greedily merges the adjacent pair minimizing ΔR/ΔM — recovery
//! time added per byte saved — until the storage cap is met.

use swift_net::MachineId;

/// Assignment of machines to contiguous logging groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMap {
    group_of: Vec<usize>,
}

impl GroupMap {
    /// Every machine its own group (full per-machine logging).
    pub fn singletons(machines: usize) -> Self {
        GroupMap {
            group_of: (0..machines).collect(),
        }
    }

    /// `n_groups` contiguous groups of (near-)equal size — the simple
    /// balanced strategy the paper's §7.1 default configs use.
    pub fn uniform_split(machines: usize, n_groups: usize) -> Self {
        assert!(n_groups >= 1 && n_groups <= machines);
        let group_of = (0..machines).map(|m| m * n_groups / machines).collect();
        GroupMap { group_of }
    }

    /// Builds from explicit machine groups (must be contiguous and cover
    /// all machines in order).
    pub fn from_groups(groups: Vec<Vec<MachineId>>) -> Self {
        let machines: usize = groups.iter().map(|g| g.len()).sum();
        let mut group_of = vec![usize::MAX; machines];
        let mut expected = 0usize;
        for (gi, g) in groups.iter().enumerate() {
            for &m in g {
                assert_eq!(m, expected, "groups must be contiguous and ordered");
                group_of[m] = gi;
                expected += 1;
            }
        }
        GroupMap { group_of }
    }

    /// The group of `machine`.
    pub fn group_of(&self, machine: MachineId) -> usize {
        self.group_of[machine]
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.group_of.len()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_of.last().map(|&g| g + 1).unwrap_or(0)
    }

    /// The machines of each group, in order.
    pub fn groups(&self) -> Vec<Vec<MachineId>> {
        let mut out = vec![Vec::new(); self.num_groups()];
        for (m, &g) in self.group_of.iter().enumerate() {
            out[g].push(m);
        }
        out
    }

    /// Whether the boundary between machines `m` and `m+1` is logged.
    pub fn boundary_logged(&self, m: MachineId) -> bool {
        self.group_of[m] != self.group_of[m + 1]
    }
}

/// Inputs to the §5.3 planner, profiled (or synthesized) per machine.
#[derive(Debug, Clone)]
pub struct PlannerInput {
    /// `R_i`: per-iteration computation time of machine `i`, seconds.
    pub per_machine_compute_s: Vec<f64>,
    /// `M(i, i+1)`: bytes crossing the boundary between machines `i` and
    /// `i+1` per iteration (both directions).
    pub boundary_bytes_per_iter: Vec<f64>,
    /// Network bandwidth `B`, bytes/s (assumed homogeneous).
    pub bandwidth_bps: f64,
    /// Checkpoint interval `T` in iterations — the upper bound on how
    /// many iterations of logs accumulate before GC.
    pub ckpt_interval: u64,
    /// Whether parallel recovery (§5.2) divides each group's replay time
    /// by `⌊N/|G|⌋`.
    pub parallel_recovery: bool,
}

impl PlannerInput {
    fn validate(&self) {
        let n = self.per_machine_compute_s.len();
        assert!(n >= 1);
        assert_eq!(self.boundary_bytes_per_iter.len(), n - 1);
        assert!(self.bandwidth_bps > 0.0);
        assert!(self.ckpt_interval >= 1);
    }
}

/// A planner outcome.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The chosen grouping.
    pub map: GroupMap,
    /// Total log storage `M(𝒢) = T · Σ inter-group boundary bytes`.
    pub storage_bytes: f64,
    /// Expected recovery time per replayed iteration,
    /// `Σ (|G|/N) · R(G)` (with the parallel-recovery divisor if enabled).
    pub expected_recovery_s_per_iter: f64,
}

/// Internal group bookkeeping during the greedy merge.
#[derive(Debug, Clone)]
struct G {
    first: usize,
    last: usize,
    r: f64,
}

/// Runs the greedy §5.3 planner: starts from singletons and merges the
/// adjacent pair with minimal ΔR/ΔM until storage fits `m_max_bytes`.
///
/// Returns the final plan. Panics if even a single group (no logging at
/// all, storage 0) is somehow above the cap (it never is, since 0 ≤ cap).
pub fn plan_groups(input: &PlannerInput, m_max_bytes: f64) -> Plan {
    input.validate();
    assert!(m_max_bytes >= 0.0);
    let n = input.per_machine_compute_s.len();
    let t = input.ckpt_interval as f64;
    let mut groups: Vec<G> = (0..n)
        .map(|i| G {
            first: i,
            last: i,
            r: input.per_machine_compute_s[i],
        })
        .collect();

    let storage = |groups: &[G]| -> f64 {
        t * groups
            .windows(2)
            .map(|w| input.boundary_bytes_per_iter[w[0].last])
            .sum::<f64>()
    };

    while storage(&groups) > m_max_bytes && groups.len() > 1 {
        // Find the adjacent pair with minimal ΔR/ΔM.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..groups.len() - 1 {
            let (a, b) = (&groups[i], &groups[i + 1]);
            let m_ab = input.boundary_bytes_per_iter[a.last];
            let r_merged = a.r + b.r + m_ab / input.bandwidth_bps;
            let size_a = (a.last - a.first + 1) as f64;
            let size_b = (b.last - b.first + 1) as f64;
            let eff = |r: f64, size: f64| {
                if input.parallel_recovery {
                    r / ((n as f64 / size).floor().max(1.0))
                } else {
                    r
                }
            };
            let delta_r = eff(r_merged, size_a + size_b) * (size_a + size_b) / n as f64
                - eff(a.r, size_a) * size_a / n as f64
                - eff(b.r, size_b) * size_b / n as f64;
            let delta_m = m_ab * t;
            let score = if delta_m > 0.0 {
                delta_r / delta_m
            } else {
                f64::INFINITY
            };
            if best.map(|(_, s)| score < s).unwrap_or(true) {
                best = Some((i, score));
            }
        }
        let (i, _) = best.expect("at least one adjacent pair");
        let b = groups.remove(i + 1);
        let a = &mut groups[i];
        let m_ab = input.boundary_bytes_per_iter[a.last];
        a.r = a.r + b.r + m_ab / input.bandwidth_bps;
        a.last = b.last;
    }

    let map = GroupMap::from_groups(
        groups
            .iter()
            .map(|g| (g.first..=g.last).collect())
            .collect(),
    );
    let expected = groups
        .iter()
        .map(|g| {
            let size = (g.last - g.first + 1) as f64;
            let r = if input.parallel_recovery {
                g.r / ((n as f64 / size).floor().max(1.0))
            } else {
                g.r
            };
            r * size / n as f64
        })
        .sum();
    Plan {
        storage_bytes: storage(&groups),
        expected_recovery_s_per_iter: expected,
        map,
    }
}

/// Sweeps the planner over a set of storage caps, returning
/// `(cap, plan)` pairs — the data behind the paper's Fig. 10 and
/// Tables 6–7.
pub fn sweep_storage_caps(input: &PlannerInput, caps: &[f64]) -> Vec<(f64, Plan)> {
    caps.iter().map(|&c| (c, plan_groups(input, c))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_input(n: usize, parallel: bool) -> PlannerInput {
        PlannerInput {
            per_machine_compute_s: vec![0.2; n],
            boundary_bytes_per_iter: vec![1e9; n - 1],
            bandwidth_bps: 5e9,
            ckpt_interval: 100,
            parallel_recovery: parallel,
        }
    }

    #[test]
    fn group_map_basics() {
        let m = GroupMap::uniform_split(16, 8);
        assert_eq!(m.num_groups(), 8);
        assert!(m.groups().iter().all(|g| g.len() == 2));
        assert!(m.boundary_logged(1));
        assert!(!m.boundary_logged(0));
        let s = GroupMap::singletons(4);
        assert_eq!(s.num_groups(), 4);
        assert!((0..3).all(|b| s.boundary_logged(b)));
    }

    #[test]
    fn high_cap_keeps_singletons() {
        let input = uniform_input(8, false);
        let plan = plan_groups(&input, 1e15);
        assert_eq!(plan.map.num_groups(), 8);
        // Storage = T × 7 boundaries × 1 GB.
        assert!((plan.storage_bytes - 100.0 * 7.0 * 1e9).abs() < 1.0);
    }

    #[test]
    fn zero_cap_merges_everything() {
        let input = uniform_input(8, false);
        let plan = plan_groups(&input, 0.0);
        assert_eq!(plan.map.num_groups(), 1);
        assert_eq!(plan.storage_bytes, 0.0);
    }

    #[test]
    fn tighter_caps_mean_fewer_groups_and_longer_recovery() {
        let input = uniform_input(16, false);
        let caps = [1e15, 1e12, 5e11, 2e11, 1e11, 0.0];
        let plans = sweep_storage_caps(&input, &caps);
        for w in plans.windows(2) {
            let (_, a) = &w[0];
            let (_, b) = &w[1];
            assert!(b.map.num_groups() <= a.map.num_groups());
            assert!(
                b.expected_recovery_s_per_iter >= a.expected_recovery_s_per_iter - 1e-12,
                "recovery time must not improve as storage shrinks"
            );
        }
        for (cap, plan) in &plans {
            assert!(plan.storage_bytes <= *cap + 1.0, "cap violated");
        }
    }

    #[test]
    fn skewed_compute_merges_cheap_machines_first() {
        // Machines 6,7 have much cheaper compute: merging them adds the
        // least recovery time per byte saved, so the first merge under a
        // barely-tight cap should involve the tail.
        let mut input = uniform_input(8, false);
        input.per_machine_compute_s = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.01, 0.01];
        // Cap forcing exactly one merge: storage of 6 boundaries.
        let cap = 100.0 * 6.0 * 1e9;
        let plan = plan_groups(&input, cap);
        assert_eq!(plan.map.num_groups(), 7);
        let groups = plan.map.groups();
        let merged: Vec<_> = groups.iter().filter(|g| g.len() == 2).collect();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], &vec![6, 7]);
    }

    #[test]
    fn parallel_recovery_reduces_expected_time() {
        let input_seq = uniform_input(8, false);
        let input_par = uniform_input(8, true);
        let cap = 100.0 * 3.0 * 1e9; // force merging to ≤4 groups
        let p_seq = plan_groups(&input_seq, cap);
        let p_par = plan_groups(&input_par, cap);
        assert!(
            p_par.expected_recovery_s_per_iter < p_seq.expected_recovery_s_per_iter,
            "parallel recovery must shorten expected replay"
        );
    }

    #[test]
    fn merged_group_r_includes_link_time() {
        // Two machines, forced merge: R = r0 + r1 + M/B.
        let input = PlannerInput {
            per_machine_compute_s: vec![0.5, 0.3],
            boundary_bytes_per_iter: vec![2e9],
            bandwidth_bps: 4e9,
            ckpt_interval: 10,
            parallel_recovery: false,
        };
        let plan = plan_groups(&input, 0.0);
        // Expected = (2/2)·(0.5+0.3+0.5) = 1.3
        assert!((plan.expected_recovery_s_per_iter - 1.3).abs() < 1e-9);
    }

    #[test]
    fn planner_is_deterministic() {
        let input = uniform_input(16, true);
        let a = plan_groups(&input, 3e11);
        let b = plan_groups(&input, 3e11);
        assert_eq!(a.map, b.map);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn non_contiguous_groups_rejected() {
        GroupMap::from_groups(vec![vec![0, 2], vec![1]]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_input() -> impl Strategy<Value = (PlannerInput, f64)> {
        (2usize..12).prop_flat_map(|n| {
            (
                prop::collection::vec(0.01f64..2.0, n),
                prop::collection::vec(1e6f64..1e10, n - 1),
                1u64..500,
                any::<bool>(),
                0.0f64..1.0,
            )
                .prop_map(move |(compute, bounds, t, par, cap_frac)| {
                    let full: f64 = bounds.iter().sum::<f64>() * t as f64;
                    (
                        PlannerInput {
                            per_machine_compute_s: compute,
                            boundary_bytes_per_iter: bounds,
                            bandwidth_bps: 5e9,
                            ckpt_interval: t,
                            parallel_recovery: par,
                        },
                        full * cap_frac,
                    )
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn plan_respects_cap_and_covers_machines((input, cap) in arb_input()) {
            let plan = plan_groups(&input, cap);
            prop_assert!(plan.storage_bytes <= cap + 1e-6);
            let n = input.per_machine_compute_s.len();
            prop_assert_eq!(plan.map.num_machines(), n);
            // Groups are contiguous and cover every machine exactly once.
            let mut covered = 0usize;
            for g in plan.map.groups() {
                for (i, &m) in g.iter().enumerate() {
                    prop_assert_eq!(m, covered + i);
                }
                covered += g.len();
            }
            prop_assert_eq!(covered, n);
        }

        #[test]
        fn recovery_time_monotone_in_cap((input, cap) in arb_input()) {
            let tight = plan_groups(&input, cap * 0.5);
            let loose = plan_groups(&input, cap);
            prop_assert!(
                tight.expected_recovery_s_per_iter + 1e-9
                    >= loose.expected_recovery_s_per_iter,
                "tightening the cap must not speed up recovery"
            );
            prop_assert!(tight.map.num_groups() <= loose.map.num_groups());
        }
    }
}
