//! Log records: the unit of upstream-backup logging (§5.1).
//!
//! Each record carries the raw boundary tensor plus the metadata the paper
//! prescribes: sender, receiver, and the *timestamp* — (iteration,
//! micro-batch) — that fixes the replay order during recovery.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use swift_net::Rank;
use swift_pipeline::MsgKind;
use swift_tensor::Tensor;

/// Why a WAL blob failed to decode. The distinction matters to
/// recovery: a truncated record is the *expected* artifact of a crash
/// mid-flush (fail-stop tears the tail write) and is skipped and
/// reported; anything else is corruption the store should never
/// produce and aborts replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The blob ended mid-record: a torn tail write. `have` is how many
    /// bytes survived.
    TruncatedRecord { have: usize },
    /// Unknown direction byte — corruption, not a torn write.
    BadKind(u8),
    /// The tensor payload is malformed for a non-truncation reason.
    Payload(String),
}

impl WalError {
    /// True when the failure is a torn tail write rather than
    /// corruption.
    pub fn is_truncation(&self) -> bool {
        matches!(self, WalError::TruncatedRecord { .. })
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::TruncatedRecord { have } => {
                write!(f, "log record truncated mid-write ({have} bytes survived)")
            }
            WalError::BadKind(b) => write!(f, "bad kind byte {b}"),
            WalError::Payload(detail) => write!(f, "bad tensor payload: {detail}"),
        }
    }
}

impl std::error::Error for WalError {}

/// The replay timestamp: recovery re-executes records in ascending
/// `(iteration, microbatch)` order, forwards before backwards within a
/// micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogStamp {
    /// Training iteration.
    pub iteration: u64,
    /// Micro-batch within the iteration.
    pub microbatch: u64,
    /// Message direction (activation = forward, gradient = backward).
    pub kind: MsgKindCode,
}

/// Direction code with a total order (forward replays before backward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKindCode {
    /// Forward activation.
    Activation = 0,
    /// Backward gradient.
    Gradient = 1,
}

impl From<MsgKind> for MsgKindCode {
    fn from(k: MsgKind) -> Self {
        match k {
            MsgKind::Activation => MsgKindCode::Activation,
            MsgKind::Gradient => MsgKindCode::Gradient,
        }
    }
}

impl From<MsgKindCode> for MsgKind {
    fn from(k: MsgKindCode) -> Self {
        match k {
            MsgKindCode::Activation => MsgKind::Activation,
            MsgKindCode::Gradient => MsgKind::Gradient,
        }
    }
}

/// One logged boundary tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Sending rank (the upstream machine keeps the record — upstream
    /// backup).
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Replay timestamp.
    pub stamp: LogStamp,
    /// The boundary tensor.
    pub tensor: Tensor,
}

impl LogRecord {
    /// Creates a record.
    pub fn new(
        src: Rank,
        dst: Rank,
        iteration: u64,
        microbatch: u64,
        kind: MsgKind,
        tensor: Tensor,
    ) -> Self {
        LogRecord {
            src,
            dst,
            stamp: LogStamp {
                iteration,
                microbatch,
                kind: kind.into(),
            },
            tensor,
        }
    }

    /// Store key for this record, prefix-organized so recovery can fetch
    /// by iteration range and boundary:
    /// `wal/it{iter:012}/mb{mb:06}/{kind}_{src}to{dst}.bin`.
    pub fn key(&self) -> String {
        Self::key_for(
            self.src,
            self.dst,
            self.stamp.iteration,
            self.stamp.microbatch,
            self.stamp.kind,
        )
    }

    /// Store key for a record with the given coordinates — usable without
    /// materializing a `LogRecord` (readers probe keys, the logger names
    /// staged buffers).
    pub fn key_for(
        src: Rank,
        dst: Rank,
        iteration: u64,
        microbatch: u64,
        kind: MsgKindCode,
    ) -> String {
        let mut out = String::new();
        Self::key_into(src, dst, iteration, microbatch, kind, &mut out);
        out
    }

    /// Renders the store key into a caller-owned buffer — the
    /// allocation-free variant of [`LogRecord::key_for`] the logger uses
    /// with recycled job buffers. Appends; callers clear first to reuse.
    pub fn key_into(
        src: Rank,
        dst: Rank,
        iteration: u64,
        microbatch: u64,
        kind: MsgKindCode,
        out: &mut String,
    ) {
        use std::fmt::Write;
        let kind = match kind {
            MsgKindCode::Activation => "act",
            MsgKindCode::Gradient => "grad",
        };
        write!(
            out,
            "wal/it{iteration:012}/mb{microbatch:06}/{kind}_{src}to{dst}.bin"
        )
        .expect("string formatting is infallible");
    }

    /// Micro-batch parsed back out of a store key produced by
    /// [`LogRecord::key_for`], or `None` for foreign keys.
    pub fn microbatch_of_key(key: &str) -> Option<u64> {
        let (_, rest) = key.split_once("/mb")?;
        rest.get(0..6)?.parse().ok()
    }

    /// Prefix of every record of iteration `it`.
    pub fn iter_prefix(it: u64) -> String {
        format!("wal/it{it:012}/")
    }

    /// Binary encoding (metadata header + tensor payload).
    pub fn encode(&self) -> Bytes {
        self.encode_precision(false)
    }

    /// Binary encoding with an optional half-precision payload (§8 mixed
    /// precision: halves the logging volume; replay then carries a ≤2⁻¹¹
    /// relative quantization error instead of being bitwise).
    pub fn encode_precision(&self, half: bool) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::encoded_len(&self.tensor, half));
        Self::encode_parts_into(
            self.src,
            self.dst,
            self.stamp.iteration,
            self.stamp.microbatch,
            self.stamp.kind,
            &self.tensor,
            half,
            &mut buf,
        );
        buf.freeze()
    }

    /// Exact wire length of a record carrying `tensor`.
    pub fn encoded_len(tensor: &Tensor, half: bool) -> usize {
        33 + if half {
            swift_tensor::encoded_f16_size(tensor)
        } else {
            swift_tensor::encoded_size(tensor)
        }
    }

    /// Encodes a record's wire form straight from borrowed parts — the
    /// zero-copy path the logger uses on `on_send`, avoiding the clone of
    /// the boundary tensor into a `LogRecord` first.
    #[allow(clippy::too_many_arguments)]
    pub fn encode_parts_into(
        src: Rank,
        dst: Rank,
        iteration: u64,
        microbatch: u64,
        kind: MsgKindCode,
        tensor: &Tensor,
        half: bool,
        buf: &mut impl BufMut,
    ) {
        buf.put_u64_le(src as u64);
        buf.put_u64_le(dst as u64);
        buf.put_u64_le(iteration);
        buf.put_u64_le(microbatch);
        buf.put_u8(kind as u8);
        if half {
            swift_tensor::encode_f16_into(tensor, buf);
        } else {
            swift_tensor::encode_into(tensor, buf);
        }
    }

    /// Decodes a record payload. Truncation anywhere — header or tensor
    /// payload — surfaces as [`WalError::TruncatedRecord`] so recovery
    /// can treat the blob as a torn tail write.
    pub fn decode(mut buf: Bytes) -> Result<Self, WalError> {
        let have = buf.remaining();
        if have < 33 {
            return Err(WalError::TruncatedRecord { have });
        }
        let src = buf.get_u64_le() as Rank;
        let dst = buf.get_u64_le() as Rank;
        let iteration = buf.get_u64_le();
        let microbatch = buf.get_u64_le();
        let kind = match buf.get_u8() {
            0 => MsgKindCode::Activation,
            1 => MsgKindCode::Gradient,
            b => return Err(WalError::BadKind(b)),
        };
        let tensor = swift_tensor::decode(&mut buf).map_err(|e| match e {
            swift_tensor::DecodeError::Truncated => WalError::TruncatedRecord { have },
            other => WalError::Payload(other.to_string()),
        })?;
        Ok(LogRecord {
            src,
            dst,
            stamp: LogStamp {
                iteration,
                microbatch,
                kind,
            },
            tensor,
        })
    }

    /// Payload bytes of the carried tensor.
    pub fn tensor_bytes(&self) -> usize {
        self.tensor.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(it: u64, mb: u64, kind: MsgKind) -> LogRecord {
        LogRecord::new(3, 4, it, mb, kind, Tensor::full([4], it as f32))
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = rec(7, 2, MsgKind::Gradient);
        let back = LogRecord::decode(r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn f16_encoding_halves_payload_and_decodes() {
        let r = LogRecord::new(0, 1, 3, 0, MsgKind::Activation, Tensor::full([1000], 0.5));
        let full = r.encode();
        let half = r.encode_precision(true);
        assert!(half.len() < full.len() * 6 / 10);
        let back = LogRecord::decode(half).unwrap();
        assert_eq!(back.stamp, r.stamp);
        assert!(
            back.tensor.bit_eq(&r.tensor),
            "0.5 is exactly representable in f16"
        );
    }

    #[test]
    fn stamp_order_is_replay_order() {
        let mut stamps = [
            LogStamp {
                iteration: 1,
                microbatch: 0,
                kind: MsgKindCode::Gradient,
            },
            LogStamp {
                iteration: 0,
                microbatch: 1,
                kind: MsgKindCode::Activation,
            },
            LogStamp {
                iteration: 0,
                microbatch: 0,
                kind: MsgKindCode::Gradient,
            },
            LogStamp {
                iteration: 0,
                microbatch: 0,
                kind: MsgKindCode::Activation,
            },
        ];
        stamps.sort();
        assert_eq!(stamps[0].kind, MsgKindCode::Activation);
        assert_eq!(stamps[0].microbatch, 0);
        assert_eq!(stamps[1].kind, MsgKindCode::Gradient);
        assert_eq!(stamps[2].microbatch, 1);
        assert_eq!(stamps[3].iteration, 1);
    }

    #[test]
    fn keys_sort_by_timestamp() {
        let a = rec(1, 0, MsgKind::Activation).key();
        let b = rec(1, 1, MsgKind::Activation).key();
        let c = rec(2, 0, MsgKind::Activation).key();
        assert!(a < b && b < c);
        assert!(a.starts_with(&LogRecord::iter_prefix(1)));
    }

    #[test]
    fn key_for_matches_record_key_and_parses_back() {
        let r = rec(5, 17, MsgKind::Gradient);
        assert_eq!(
            r.key(),
            LogRecord::key_for(3, 4, 5, 17, MsgKindCode::Gradient)
        );
        assert_eq!(LogRecord::microbatch_of_key(&r.key()), Some(17));
        assert_eq!(LogRecord::microbatch_of_key("ckpt/model.bin"), None);
    }

    #[test]
    fn encode_parts_matches_record_encode() {
        let r = LogRecord::new(1, 2, 9, 3, MsgKind::Activation, Tensor::full([7], -1.25));
        let mut via_parts = Vec::with_capacity(LogRecord::encoded_len(&r.tensor, false));
        LogRecord::encode_parts_into(
            1,
            2,
            9,
            3,
            MsgKindCode::Activation,
            &r.tensor,
            false,
            &mut via_parts,
        );
        assert_eq!(via_parts.len(), LogRecord::encoded_len(&r.tensor, false));
        assert_eq!(&via_parts[..], &r.encode()[..]);
        let mut half_parts = Vec::new();
        LogRecord::encode_parts_into(
            1,
            2,
            9,
            3,
            MsgKindCode::Activation,
            &r.tensor,
            true,
            &mut half_parts,
        );
        assert_eq!(half_parts.len(), LogRecord::encoded_len(&r.tensor, true));
        assert_eq!(&half_parts[..], &r.encode_precision(true)[..]);
    }

    #[test]
    fn truncation_at_every_byte_offset_is_typed() {
        // A torn flush can cut the record at *any* byte. Every strict
        // prefix must decode to TruncatedRecord — never panic, never
        // succeed, never be misread as corruption.
        let r = rec(1, 1, MsgKind::Activation);
        for enc in [r.encode(), r.encode_precision(true)] {
            for n in 0..enc.len() {
                match LogRecord::decode(enc.slice(0..n)) {
                    Err(WalError::TruncatedRecord { have }) => assert_eq!(have, n),
                    other => panic!("prefix of {n}/{} bytes decoded to {other:?}", enc.len()),
                }
            }
            assert_eq!(LogRecord::decode(enc.clone()).unwrap(), r);
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let mut raw = rec(0, 0, MsgKind::Activation).encode().to_vec();
        raw[32] = 9;
        assert_eq!(
            LogRecord::decode(Bytes::from(raw)),
            Err(WalError::BadKind(9))
        );
    }

    #[test]
    fn corrupt_payload_is_not_reported_as_truncation() {
        // Flip the declared element count: same length, inconsistent
        // header. Must surface as Payload, not TruncatedRecord.
        let enc = rec(2, 0, MsgKind::Gradient).encode();
        let mut raw = enc.to_vec();
        // Header is 33 bytes; tensor layout: magic u32, rank u32, dims
        // (rank × u64), declared u64. rank is 1 here, so `declared`
        // starts at 33 + 4 + 4 + 8.
        raw[33 + 16] ^= 0x01;
        let err = LogRecord::decode(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, WalError::Payload(_)), "got {err:?}");
    }
}
