//! Replay: feeding logged tensors back through the pipeline executor, and
//! the parallel-recovery work assignment (§5.1 recovery, §5.2).
//!
//! Recovery is deliberately *the same code path* as training: the
//! executor runs the failed stages' schedule, but boundary endpoints that
//! crossed the failed machine's edge read from the log instead of the
//! network. Inner boundaries (between stages being recovered together)
//! stay live.

use swift_dnn::StepCtx;
use swift_net::{Comm, CommError, Rank};
use swift_obs::{IterationId, MicrobatchId};
use swift_pipeline::{MsgKind, Transport};
use swift_store::BlobStore;
use swift_tensor::Tensor;

use crate::record::LogRecord;

/// Reads logged records from a (downloaded) store.
#[derive(Debug, Clone)]
pub struct WalReader {
    store: BlobStore,
}

impl WalReader {
    /// Wraps a store containing `wal/` records.
    pub fn new(store: BlobStore) -> Self {
        WalReader { store }
    }

    /// Reads the record `src → dst` at `(iteration, microbatch, kind)`.
    pub fn read(
        &self,
        src: Rank,
        dst: Rank,
        iteration: IterationId,
        microbatch: MicrobatchId,
        kind: MsgKind,
    ) -> std::io::Result<Tensor> {
        let key = LogRecord::key_for(src, dst, iteration.get(), microbatch.get(), kind.into());
        let payload = self.store.get(&key)?;
        let rec = LogRecord::decode(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(rec.tensor)
    }

    /// All iterations with at least one record, ascending.
    pub fn iterations(&self) -> std::io::Result<Vec<IterationId>> {
        let mut its: Vec<IterationId> = self
            .store
            .list("wal/")?
            .iter()
            .filter_map(|k| {
                k.strip_prefix("wal/it")
                    .and_then(|s| s.get(0..12))
                    .and_then(|s| s.parse().ok())
                    .map(IterationId::new)
            })
            .collect();
        its.sort_unstable();
        its.dedup();
        Ok(its)
    }

    /// Every record of one iteration, in replay (timestamp) order.
    /// Torn tail records are skipped and reported (see
    /// [`WalReader::records_for_audited`]).
    pub fn records_for(&self, iteration: IterationId) -> std::io::Result<Vec<LogRecord>> {
        Ok(self.records_for_audited(iteration)?.0)
    }

    /// Like [`WalReader::records_for`], but also returns the store keys
    /// of records found truncated mid-write.
    ///
    /// A truncated record is the expected artifact of a crash during a
    /// WAL flush (fail-stop tears the tail write): it is *skipped and
    /// reported* — counted under `Counter::TornWalRecords` and returned
    /// in the second element — so the rest of the log stays usable and
    /// the audit ([`WalReader::verify`]) decides whether the gap is
    /// recoverable. Any other decode failure is corruption the store
    /// should never produce and aborts with `InvalidData`.
    pub fn records_for_audited(
        &self,
        iteration: IterationId,
    ) -> std::io::Result<(Vec<LogRecord>, Vec<String>)> {
        let mut recs = Vec::new();
        let mut torn = Vec::new();
        for key in self.store.list(&LogRecord::iter_prefix(iteration.get()))? {
            match LogRecord::decode(self.store.get(&key)?) {
                Ok(rec) => recs.push(rec),
                Err(e) if e.is_truncation() => {
                    swift_obs::add(swift_obs::Counter::TornWalRecords, 1);
                    torn.push(key);
                }
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
        }
        recs.sort_by_key(|r| r.stamp);
        Ok((recs, torn))
    }
}

/// One side of a replaying stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// A live peer (inner boundary of the recovered sub-pipeline, or a
    /// surviving neighbor participating in recovery).
    Live {
        /// Peer rank.
        peer: Rank,
    },
    /// The boundary crossed the failed edge: reads come from the log
    /// (recorded as sent by `peer`), writes are dropped — the surviving
    /// side already consumed them pre-failure.
    Logged {
        /// The pre-failure peer whose traffic was logged.
        peer: Rank,
    },
    /// Pipeline end (first stage has no upstream / last has no
    /// downstream). The executor never touches it.
    None,
}

/// A [`Transport`] that mixes live communication and log replay.
pub struct ReplayTransport<'a> {
    /// Communicator for live endpoints.
    pub comm: &'a mut Comm,
    /// This worker's rank **in the pre-failure topology** (log keys are
    /// addressed by original ranks).
    pub me: Rank,
    /// Upstream endpoint.
    pub prev: Endpoint,
    /// Downstream endpoint.
    pub next: Endpoint,
    /// The log reader (downloaded records).
    pub reader: &'a WalReader,
    /// Sends dropped because the peer side needs no replayed data.
    pub dropped_sends: usize,
}

impl ReplayTransport<'_> {
    fn read_log(&self, src: Rank, ctx: StepCtx, kind: MsgKind) -> Result<Tensor, CommError> {
        Ok(self
            .reader
            .read(
                src,
                self.me,
                IterationId::new(ctx.iteration),
                MicrobatchId::new(ctx.microbatch),
                kind,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "missing log record {src}->{} it {} mb {} ({kind:?}): {e}",
                    self.me, ctx.iteration, ctx.microbatch
                )
            }))
    }
}

impl Transport for ReplayTransport<'_> {
    fn send_activation(&mut self, ctx: StepCtx, t: &Tensor) -> Result<(), CommError> {
        match self.next {
            Endpoint::Live { peer } => self.comm.send_tensor(
                peer,
                swift_pipeline::tags::tag(
                    MsgKind::Activation,
                    ctx.iteration,
                    ctx.microbatch as usize,
                ),
                t,
            ),
            Endpoint::Logged { .. } => {
                self.dropped_sends += 1;
                Ok(())
            }
            Endpoint::None => unreachable!("last stage never sends activations"),
        }
    }

    fn recv_activation(&mut self, ctx: StepCtx) -> Result<Tensor, CommError> {
        match self.prev {
            Endpoint::Live { peer } => self.comm.recv_tensor(
                peer,
                swift_pipeline::tags::tag(
                    MsgKind::Activation,
                    ctx.iteration,
                    ctx.microbatch as usize,
                ),
            ),
            Endpoint::Logged { peer } => self.read_log(peer, ctx, MsgKind::Activation),
            Endpoint::None => unreachable!("first stage never receives activations"),
        }
    }

    fn send_gradient(&mut self, ctx: StepCtx, t: &Tensor) -> Result<(), CommError> {
        match self.prev {
            Endpoint::Live { peer } => self.comm.send_tensor(
                peer,
                swift_pipeline::tags::tag(
                    MsgKind::Gradient,
                    ctx.iteration,
                    ctx.microbatch as usize,
                ),
                t,
            ),
            Endpoint::Logged { .. } => {
                self.dropped_sends += 1;
                Ok(())
            }
            Endpoint::None => unreachable!("first stage never sends gradients"),
        }
    }

    fn recv_gradient(&mut self, ctx: StepCtx) -> Result<Tensor, CommError> {
        match self.next {
            Endpoint::Live { peer } => self.comm.recv_tensor(
                peer,
                swift_pipeline::tags::tag(
                    MsgKind::Gradient,
                    ctx.iteration,
                    ctx.microbatch as usize,
                ),
            ),
            Endpoint::Logged { peer } => self.read_log(peer, ctx, MsgKind::Gradient),
            Endpoint::None => unreachable!("last stage never receives gradients"),
        }
    }
}

/// A pre-replay integrity report: which records a recovery would need but
/// cannot find. The paper's §5.1 warning — "once a piece of logged data is
/// missing, the original state cannot be recovered precisely" — becomes an
/// explicit pre-flight check: on any gap, fall back to global
/// checkpointing instead of replaying garbage.
#[derive(Debug, Clone, Default)]
pub struct LogAudit {
    /// `(src, dst, iteration, microbatch, kind)` of each missing record.
    pub missing: Vec<(Rank, Rank, u64, u64, MsgKind)>,
    /// Records that exist but were truncated mid-write — a crash tore
    /// the tail flush. Distinguished from `missing` so operators can
    /// tell "never logged" from "logged but the machine died writing
    /// it"; both make precise recovery of that record impossible.
    pub torn: Vec<(Rank, Rank, u64, u64, MsgKind)>,
}

impl LogAudit {
    /// True when every required record is present and intact.
    pub fn complete(&self) -> bool {
        self.missing.is_empty() && self.torn.is_empty()
    }
}

impl WalReader {
    /// Verifies that every record a replay of `iterations` would read is
    /// present: for each boundary `(src, dst, kind)` and micro-batch.
    pub fn verify(
        &self,
        boundaries: &[(Rank, Rank, MsgKind)],
        iterations: std::ops::Range<u64>,
        microbatches: u64,
    ) -> LogAudit {
        let mut audit = LogAudit::default();
        for it in iterations {
            for mb in 0..microbatches {
                for &(src, dst, kind) in boundaries {
                    let key = LogRecord::key_for(src, dst, it, mb, kind.into());
                    match self.store.get(&key) {
                        Err(_) => audit.missing.push((src, dst, it, mb, kind)),
                        Ok(payload) => match LogRecord::decode(payload) {
                            Ok(_) => {}
                            Err(e) if e.is_truncation() => {
                                audit.torn.push((src, dst, it, mb, kind));
                            }
                            // Non-truncation corruption is as unusable
                            // as an absent record.
                            Err(_) => audit.missing.push((src, dst, it, mb, kind)),
                        },
                    }
                }
            }
        }
        audit
    }
}

/// Parallel-recovery assignment (§5.2): micro-batch `mb` goes to replica
/// `mb mod d`, matching the paper's Fig. 7 (d = 2, m = 4 → replica 0 gets
/// {0, 2}, replica 1 gets {1, 3}).
pub fn assign_microbatches(m: usize, d: usize, replica: usize) -> Vec<usize> {
    assert!(d >= 1 && replica < d);
    (0..m).filter(|mb| mb % d == replica).collect()
}

/// Data-parallel replay of one iteration's log across `workers` recovery
/// replicas (§5.2).
///
/// Each replica fetches, decodes, and processes the micro-batches assigned
/// to it by the paper's `mb mod d` rule ([`assign_microbatches`]), in
/// ascending micro-batch order; within a micro-batch, records are handled
/// in store-key order (which sorts activations before gradients, matching
/// [`WalReader::records_for`]'s timestamp order). The per-replica results
/// are then merged in ascending micro-batch order, **not** completion
/// order — so the returned sequence, and any state folded over it, is
/// bitwise identical to a sequential replay (`workers == 1`).
pub fn replay_iteration_parallel<T, F>(
    reader: &WalReader,
    iteration: IterationId,
    workers: usize,
    process: F,
) -> std::io::Result<Vec<T>>
where
    T: Send,
    F: Fn(&LogRecord) -> T + Sync,
{
    assert!(workers >= 1, "need at least one recovery replica");
    let keys = reader
        .store
        .list(&LogRecord::iter_prefix(iteration.get()))?;
    // Group keys by micro-batch; `list` returns keys sorted, so each
    // group is already in replay order.
    let mut by_mb: std::collections::BTreeMap<u64, Vec<String>> = std::collections::BTreeMap::new();
    for key in keys {
        let mb = LogRecord::microbatch_of_key(&key).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("foreign key in wal namespace: {key}"),
            )
        })?;
        by_mb.entry(mb).or_default().push(key);
    }
    let groups: Vec<(u64, Vec<String>)> = by_mb.into_iter().collect();
    let d = workers.min(groups.len()).max(1);

    // One replica's share: decode + process its micro-batches in ascending
    // order, tagged with the group index for the ordered merge.
    let run_replica = |replica: usize| -> std::io::Result<Vec<(usize, Vec<T>)>> {
        let mut out = Vec::new();
        for (gi, (_, keys)) in groups.iter().enumerate() {
            if gi % d != replica {
                continue;
            }
            let mut items = Vec::with_capacity(keys.len());
            for key in keys {
                match LogRecord::decode(reader.store.get(key)?) {
                    Ok(rec) => items.push(process(&rec)),
                    // Torn tail write: skip-and-report, keep replaying
                    // the intact records. The pre-flight audit decides
                    // whether the gap forces a checkpoint fallback.
                    Err(e) if e.is_truncation() => {
                        swift_obs::add(swift_obs::Counter::TornWalRecords, 1);
                    }
                    Err(e) => {
                        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                    }
                }
            }
            out.push((gi, items));
        }
        Ok(out)
    };

    let mut parts: Vec<(usize, Vec<T>)> = if d == 1 {
        run_replica(0)?
    } else {
        let run = &run_replica;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..d)
                .map(|replica| scope.spawn(move || run(replica)))
                .collect();
            let mut results = vec![run(0)];
            for h in handles {
                results.push(h.join().expect("replay replica panicked"));
            }
            results
        });
        let mut parts = Vec::new();
        for r in results {
            parts.extend(r?);
        }
        parts
    };
    // Deterministic merge: micro-batch order, regardless of which replica
    // finished first.
    parts.sort_by_key(|(gi, _)| *gi);
    Ok(parts.into_iter().flat_map(|(_, items)| items).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MsgKindCode;

    #[test]
    fn assignment_matches_fig7() {
        assert_eq!(assign_microbatches(4, 2, 0), vec![0, 2]);
        assert_eq!(assign_microbatches(4, 2, 1), vec![1, 3]);
    }

    #[test]
    fn assignment_partitions_all_microbatches() {
        for m in 1..=12 {
            for d in 1..=m {
                let mut all: Vec<usize> =
                    (0..d).flat_map(|r| assign_microbatches(m, d, r)).collect();
                all.sort_unstable();
                assert_eq!(all, (0..m).collect::<Vec<_>>(), "m={m} d={d}");
            }
        }
    }

    #[test]
    fn reader_round_trip_and_order() {
        let store = BlobStore::new_temp("walr").unwrap();
        let reader = WalReader::new(store.clone());
        // Write records out of order.
        for (it, mb, kind) in [
            (1u64, 1u64, MsgKind::Gradient),
            (0, 0, MsgKind::Activation),
            (0, 1, MsgKind::Activation),
            (0, 0, MsgKind::Gradient),
        ] {
            let rec = LogRecord::new(0, 1, it, mb, kind, Tensor::full([2], mb as f32));
            store.put(&rec.key(), &rec.encode()).unwrap();
        }
        assert_eq!(
            reader.iterations().unwrap(),
            vec![IterationId::new(0), IterationId::new(1)]
        );
        let recs = reader.records_for(IterationId::new(0)).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].stamp.kind, MsgKindCode::Activation);
        assert_eq!(recs[0].stamp.microbatch, 0);
        assert_eq!(recs[1].stamp.kind, MsgKindCode::Gradient);
        let t = reader
            .read(
                0,
                1,
                IterationId::new(0),
                MicrobatchId::new(1),
                MsgKind::Activation,
            )
            .unwrap();
        assert_eq!(t.data(), &[1.0, 1.0]);
    }

    #[test]
    fn reader_missing_record_errors() {
        let store = BlobStore::new_temp("walm").unwrap();
        let reader = WalReader::new(store);
        assert!(reader
            .read(
                0,
                1,
                IterationId::new(5),
                MicrobatchId::new(0),
                MsgKind::Activation,
            )
            .is_err());
    }

    fn populated_reader(microbatches: u64) -> WalReader {
        let store = BlobStore::new_temp("walpar").unwrap();
        for mb in 0..microbatches {
            for (src, dst, kind) in [
                (0usize, 1usize, MsgKind::Activation),
                (2, 1, MsgKind::Gradient),
            ] {
                let t = Tensor::from_vec([3], vec![mb as f32, src as f32, 0.1 + mb as f32 * 0.7]);
                let rec = LogRecord::new(src, dst, 0, mb, kind, t);
                store.put(&rec.key(), &rec.encode()).unwrap();
            }
        }
        WalReader::new(store)
    }

    #[test]
    fn parallel_replay_bitwise_matches_sequential() {
        let reader = populated_reader(8);
        let seq = replay_iteration_parallel(&reader, IterationId::new(0), 1, |r| {
            (r.key(), r.tensor.clone())
        })
        .unwrap();
        // The sequential engine agrees with the reference reader order.
        let reference = reader.records_for(IterationId::new(0)).unwrap();
        assert_eq!(seq.len(), reference.len());
        for ((key, t), r) in seq.iter().zip(&reference) {
            assert_eq!(key, &r.key());
            assert!(t.bit_eq(&r.tensor));
        }
        // Any worker count yields the identical sequence — same keys, same
        // bits, same order.
        for workers in [2usize, 3, 5, 8, 16] {
            let par = replay_iteration_parallel(&reader, IterationId::new(0), workers, |r| {
                (r.key(), r.tensor.clone())
            })
            .unwrap();
            assert_eq!(par.len(), seq.len(), "workers={workers}");
            for ((ka, ta), (kb, tb)) in par.iter().zip(&seq) {
                assert_eq!(ka, kb, "workers={workers}");
                assert!(ta.bit_eq(tb), "workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_replay_folded_state_is_bitwise_deterministic() {
        // Fold a running f32 sum over the replayed tensors — the kind of
        // state a recovery accumulates. Order equality ⇒ bit equality.
        let reader = populated_reader(6);
        let fold = |workers: usize| -> u32 {
            let parts = replay_iteration_parallel(&reader, IterationId::new(0), workers, |r| {
                r.tensor.sum()
            })
            .unwrap();
            parts.into_iter().fold(0.0f32, |acc, s| acc + s).to_bits()
        };
        let expect = fold(1);
        for workers in [2usize, 4, 6] {
            assert_eq!(fold(workers), expect, "workers={workers}");
        }
    }

    #[test]
    fn parallel_replay_empty_iteration_is_empty() {
        let reader = populated_reader(2);
        let out = replay_iteration_parallel(&reader, IterationId::new(99), 4, |r| r.stamp).unwrap();
        assert!(out.is_empty());
    }

    /// Overwrites one record with a strict byte prefix of its encoding —
    /// exactly what a crash mid-flush leaves behind.
    fn tear_record(reader: &WalReader, rec: &LogRecord, keep: usize) {
        let enc = rec.encode();
        assert!(keep < enc.len());
        reader.store.put(&rec.key(), &enc[..keep]).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_and_reported() {
        let reader = populated_reader(4);
        let victim = LogRecord::new(
            0,
            1,
            0,
            3,
            MsgKind::Activation,
            Tensor::from_vec([3], vec![3.0, 0.0, 0.1 + 3.0 * 0.7]),
        );
        tear_record(&reader, &victim, 20);
        let (recs, torn) = reader.records_for_audited(IterationId::new(0)).unwrap();
        assert_eq!(torn, vec![victim.key()]);
        assert_eq!(recs.len(), 7, "the 7 intact records survive");
        assert!(recs.iter().all(|r| r.key() != victim.key()));
        // Parallel replay over the torn log matches a sequential replay
        // of the surviving records, bitwise.
        for workers in [1usize, 2, 4] {
            let out = replay_iteration_parallel(&reader, IterationId::new(0), workers, |r| {
                (r.key(), r.tensor.clone())
            })
            .unwrap();
            assert_eq!(out.len(), recs.len(), "workers={workers}");
            for ((k, t), r) in out.iter().zip(&recs) {
                assert_eq!(k, &r.key());
                assert!(t.bit_eq(&r.tensor));
            }
        }
    }

    #[test]
    fn torn_tail_at_any_offset_never_aborts_replay() {
        let victim = LogRecord::new(
            2,
            1,
            0,
            1,
            MsgKind::Gradient,
            Tensor::from_vec([3], vec![1.0, 2.0, 0.8]),
        );
        let full = victim.encode().len();
        for keep in [0, 1, 32, 33, full / 2, full - 1] {
            let reader = populated_reader(3);
            tear_record(&reader, &victim, keep);
            let (recs, torn) = reader.records_for_audited(IterationId::new(0)).unwrap();
            assert_eq!(torn.len(), 1, "keep={keep}");
            assert_eq!(recs.len(), 5, "keep={keep}");
        }
    }
}

#[cfg(test)]
mod audit_tests {
    use super::*;
    use crate::record::LogRecord;

    #[test]
    fn verify_passes_on_complete_logs() {
        let store = BlobStore::new_temp("audit1").unwrap();
        for it in 3..6u64 {
            for mb in 0..2u64 {
                for (src, dst, kind) in [
                    (0usize, 1usize, MsgKind::Activation),
                    (2, 1, MsgKind::Gradient),
                ] {
                    let r = LogRecord::new(src, dst, it, mb, kind, Tensor::ones([2]));
                    store.put(&r.key(), &r.encode()).unwrap();
                }
            }
        }
        let reader = WalReader::new(store);
        let audit = reader.verify(
            &[(0, 1, MsgKind::Activation), (2, 1, MsgKind::Gradient)],
            3..6,
            2,
        );
        assert!(audit.complete(), "{:?}", audit.missing);
    }

    #[test]
    fn verify_reports_each_gap() {
        let store = BlobStore::new_temp("audit2").unwrap();
        for it in 0..3u64 {
            for mb in 0..2u64 {
                let r = LogRecord::new(0, 1, it, mb, MsgKind::Activation, Tensor::ones([2]));
                store.put(&r.key(), &r.encode()).unwrap();
            }
        }
        // Corrupt the middle: delete iteration 1, micro-batch 1.
        let victim = LogRecord::new(0, 1, 1, 1, MsgKind::Activation, Tensor::ones([2]));
        store.delete(&victim.key()).unwrap();
        let reader = WalReader::new(store);
        let audit = reader.verify(&[(0, 1, MsgKind::Activation)], 0..3, 2);
        assert_eq!(audit.missing, vec![(0, 1, 1, 1, MsgKind::Activation)]);
        assert!(audit.torn.is_empty());
        assert!(!audit.complete());
    }

    #[test]
    fn verify_distinguishes_torn_from_missing() {
        let store = BlobStore::new_temp("audit3").unwrap();
        for it in 0..3u64 {
            let r = LogRecord::new(0, 1, it, 0, MsgKind::Activation, Tensor::ones([2]));
            store.put(&r.key(), &r.encode()).unwrap();
        }
        // Iteration 1's record is torn mid-write; iteration 2's was
        // never logged at all.
        let torn = LogRecord::new(0, 1, 1, 0, MsgKind::Activation, Tensor::ones([2]));
        let enc = torn.encode();
        store.put(&torn.key(), &enc[..enc.len() / 2]).unwrap();
        let gone = LogRecord::new(0, 1, 2, 0, MsgKind::Activation, Tensor::ones([2]));
        store.delete(&gone.key()).unwrap();

        let reader = WalReader::new(store);
        let audit = reader.verify(&[(0, 1, MsgKind::Activation)], 0..3, 1);
        assert_eq!(audit.torn, vec![(0, 1, 1, 0, MsgKind::Activation)]);
        assert_eq!(audit.missing, vec![(0, 1, 2, 0, MsgKind::Activation)]);
        assert!(!audit.complete());
    }
}
