//! The logging engine: upstream backup with synchronous, asynchronous, and
//! bubble-time-asynchronous modes (§5.1).
//!
//! The paper's pipeline is: outbound tensor → (stays "on the GPU") →
//! copied to CPU during the next bubble → background thread writes it to
//! the local disk. Here:
//!
//! - `Sync` writes inline on `on_send` (the `torch.save`-before-send
//!   baseline of §7.1);
//! - `Async` enqueues to the writer thread immediately on `on_send`;
//! - `BubbleAsync` stages the record in memory on `on_send` and hands the
//!   staged batch to the writer thread only at the next bubble
//!   ([`PipelineObserver::on_idle`]) — logging fully off the critical
//!   path.
//!
//! On failure detection the owner calls [`Logger::flush`], which drains
//! the staging area and blocks until the writer is idle — the paper's
//! "flush the queue of uncompleted logging tasks".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use swift_dnn::StepCtx;
use swift_net::{Rank, Topology};
use swift_obs::IterationId;
use swift_pipeline::{MsgKind, PipelineObserver};
use swift_store::BlobStore;
use swift_tensor::Tensor;

use crate::grouping::GroupMap;
use crate::record::LogRecord;

/// A record already rendered to its wire form: the store key plus the
/// encoded payload. Records are encoded once, on `log_send`, straight from
/// the borrowed boundary tensor — the tensor itself is never cloned, and
/// the payload buffer travels to the writer thread and comes back through
/// the recycle channel for reuse.
#[derive(Debug, Default)]
struct WriteJob {
    key: String,
    /// Training iteration the record belongs to — checked against the GC
    /// watermark so a checkpoint can retire queued-but-unflushed records.
    iteration: u64,
    payload: Vec<u8>,
}

impl WriteJob {
    /// Clears the key and payload for reuse, keeping their capacity.
    fn recycle(mut self) -> Self {
        self.key.clear();
        self.payload.clear();
        self
    }
}

/// Background writer threads sharing the job queue.
const WRITER_POOL: usize = 2;

/// Default bubble budget (§5.4): how many staged bytes may wait for a
/// bubble before `log_send` starts spilling synchronously. Generous by
/// default — the budget only bites when bubbles are scarce relative to
/// logging volume.
pub const DEFAULT_BUBBLE_BUDGET_BYTES: usize = 8 * 1024 * 1024;

/// When records leave the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// Write inline before returning from the send (baseline).
    Sync,
    /// Enqueue to the background writer immediately.
    Async,
    /// Stage in memory; enqueue at the next pipeline bubble.
    BubbleAsync,
}

/// Payload precision for persisted records (§8 mixed precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogPrecision {
    /// Full precision: replay is bitwise exact.
    F32,
    /// Half precision: half the volume, ≤2⁻¹¹ relative rounding on replay.
    F16,
}

/// Counters exposed for experiments.
#[derive(Debug, Default)]
pub struct LogStats {
    /// Records durably written.
    pub records_written: AtomicU64,
    /// Payload bytes durably written.
    pub bytes_written: AtomicU64,
    /// Records dropped because the destination was intra-group (not
    /// logged under selective logging).
    pub records_skipped: AtomicU64,
}

/// The per-machine logger. One logger serves all workers of a machine
/// (they share its disk); it decides *what* to log from the topology and
/// the selective-logging group map.
pub struct Logger {
    mode: LogMode,
    precision: LogPrecision,
    topology: Topology,
    groups: GroupMap,
    staged: Vec<WriteJob>,
    /// Total payload bytes currently staged (metered against the budget).
    staged_bytes: usize,
    /// Staged bytes allowed to wait for a bubble before spilling inline.
    bubble_budget_bytes: usize,
    tx: Option<Sender<WriteJob>>,
    writers: Vec<JoinHandle<()>>,
    in_flight: Arc<AtomicU64>,
    /// Records below this iteration are superseded by a checkpoint; queued
    /// jobs under it are dropped instead of written.
    gc_watermark: Arc<AtomicU64>,
    stats: Arc<LogStats>,
    store: BlobStore,
    /// Drained jobs (key + payload buffers) coming back from the writer
    /// threads; reused by the next `log_send` so steady-state logging
    /// stops allocating.
    recycled: Receiver<WriteJob>,
    /// Job held back by the inline (`Sync`/spill) write paths for reuse.
    spare: Option<WriteJob>,
}

impl Logger {
    /// Creates a logger writing to the machine-local `store`.
    ///
    /// `groups` controls selective logging (§5.3): traffic between ranks
    /// whose machines share a group is *not* logged. Use
    /// [`GroupMap::singletons`] for full (per-machine) logging.
    pub fn new(mode: LogMode, topology: Topology, groups: GroupMap, store: BlobStore) -> Self {
        Self::with_precision(mode, topology, groups, store, LogPrecision::F32)
    }

    /// Creates a logger persisting records at the given precision.
    pub fn with_precision(
        mode: LogMode,
        topology: Topology,
        groups: GroupMap,
        store: BlobStore,
        precision: LogPrecision,
    ) -> Self {
        let stats = Arc::new(LogStats::default());
        let in_flight = Arc::new(AtomicU64::new(0));
        let gc_watermark = Arc::new(AtomicU64::new(0));
        let (pool_tx, pool_rx) = unbounded::<WriteJob>();
        let (tx, writers) = if mode == LogMode::Sync {
            (None, Vec::new())
        } else {
            let (tx, rx) = unbounded::<WriteJob>();
            let mut writers = Vec::with_capacity(WRITER_POOL);
            for i in 0..WRITER_POOL {
                let rx = rx.clone();
                let pool_tx = pool_tx.clone();
                let store2 = store.clone();
                let stats2 = stats.clone();
                let in_flight2 = in_flight.clone();
                let watermark = gc_watermark.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("wal-writer-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A checkpoint taken while the job was queued
                            // supersedes it — drop instead of persisting.
                            if job.iteration >= watermark.load(Ordering::SeqCst) {
                                write_payload(&store2, &job.key, &job.payload, &stats2);
                            }
                            // Hand the drained job (key + payload buffers)
                            // back for reuse; the logger may already be
                            // gone, in which case it simply drops.
                            let _ = pool_tx.send(job.recycle());
                            in_flight2.fetch_sub(1, Ordering::SeqCst);
                        }
                    })
                    .expect("failed to spawn wal writer");
                writers.push(handle);
            }
            (Some(tx), writers)
        };
        Logger {
            mode,
            precision,
            topology,
            groups,
            staged: Vec::new(),
            staged_bytes: 0,
            bubble_budget_bytes: DEFAULT_BUBBLE_BUDGET_BYTES,
            tx,
            writers,
            in_flight,
            gc_watermark,
            stats,
            store,
            recycled: pool_rx,
            spare: None,
        }
    }

    /// Overrides the bubble budget (staged bytes allowed to wait for a
    /// bubble before `log_send` spills synchronously).
    pub fn set_bubble_budget(&mut self, bytes: usize) {
        self.bubble_budget_bytes = bytes;
    }

    /// The logging mode.
    pub fn mode(&self) -> LogMode {
        self.mode
    }

    /// Statistics counters.
    pub fn stats(&self) -> &Arc<LogStats> {
        &self.stats
    }

    /// The machine-local store records land in.
    pub fn store(&self) -> &BlobStore {
        &self.store
    }

    /// Whether traffic `src → dst` must be logged: inter-machine (§5.1)
    /// *and* inter-group (§5.3).
    pub fn should_log(&self, src: Rank, dst: Rank) -> bool {
        let (ms, md) = (self.topology.machine_of(src), self.topology.machine_of(dst));
        ms != md && self.groups.group_of(ms) != self.groups.group_of(md)
    }

    /// Records an outbound tensor (called from the send path).
    ///
    /// The tensor is encoded straight into a pooled buffer here — it is
    /// never cloned, and in the async modes the only per-record cost on
    /// the critical path is the encode itself.
    pub fn log_send(&mut self, src: Rank, dst: Rank, ctx: StepCtx, kind: MsgKind, t: &Tensor) {
        if !self.should_log(src, dst) {
            self.stats.records_skipped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let half = self.precision == LogPrecision::F16;
        let kind_code = kind.into();
        // Grab a recycled job (writer-drained, spill-retained, or fresh)
        // and render the key + wire payload into it in place.
        let mut job = self
            .spare
            .take()
            .or_else(|| self.recycled.try_recv().ok().map(WriteJob::recycle))
            .unwrap_or_default();
        LogRecord::key_into(
            src,
            dst,
            ctx.iteration,
            ctx.microbatch,
            kind_code,
            &mut job.key,
        );
        job.iteration = ctx.iteration;
        job.payload.reserve(LogRecord::encoded_len(t, half));
        LogRecord::encode_parts_into(
            src,
            dst,
            ctx.iteration,
            ctx.microbatch,
            kind_code,
            t,
            half,
            &mut job.payload,
        );
        match self.mode {
            LogMode::Sync => {
                write_payload(&self.store, &job.key, &job.payload, &self.stats);
                self.spare = Some(job.recycle());
            }
            LogMode::Async => self.enqueue(job),
            LogMode::BubbleAsync => {
                if self.staged_bytes + job.payload.len() > self.bubble_budget_bytes {
                    // Budget exceeded (§5.4): bubbles aren't keeping up, so
                    // this record can't be hidden — spill it synchronously
                    // rather than letting the logging debt grow unbounded.
                    swift_obs::add(swift_obs::Counter::SpilledBytes, job.payload.len() as u64);
                    write_payload(&self.store, &job.key, &job.payload, &self.stats);
                    self.spare = Some(job.recycle());
                } else {
                    self.staged_bytes += job.payload.len();
                    self.staged.push(job);
                }
            }
        }
    }

    /// Bubble callback: hand staged records to the background writer
    /// ("copy to CPU during the bubble").
    pub fn on_bubble(&mut self) {
        if self.mode == LogMode::BubbleAsync {
            for job in self.staged.drain(..) {
                // BubbleBytes counts exactly what a bubble hid; spilled
                // records were counted as SpilledBytes at log_send.
                swift_obs::add(swift_obs::Counter::BubbleBytes, job.payload.len() as u64);
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                self.tx
                    .as_ref()
                    .unwrap()
                    .send(job)
                    .expect("wal writer gone");
            }
            self.staged_bytes = 0;
        }
    }

    fn enqueue(&mut self, job: WriteJob) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.tx
            .as_ref()
            .unwrap()
            .send(job)
            .expect("wal writer gone");
    }

    /// Records staged in memory, not yet handed to the writer.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Drains staging and blocks until every record is durable — called on
    /// failure detection (§5.1 recovery step 1–2) and at checkpoints.
    pub fn flush(&mut self) {
        let staged: Vec<WriteJob> = self.staged.drain(..).collect();
        self.staged_bytes = 0;
        match self.mode {
            LogMode::Sync => {
                for job in &staged {
                    write_payload(&self.store, &job.key, &job.payload, &self.stats);
                }
            }
            _ => {
                for job in staged {
                    self.enqueue(job);
                }
                while self.in_flight.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            }
        }
    }

    /// Garbage-collects every record older than `checkpoint_iteration`
    /// (obsoleted by the checkpoint, §5.1): drops queued-but-unflushed
    /// records the checkpoint supersedes, then deletes persisted ones.
    /// Returns the count removed.
    pub fn gc_before(&mut self, checkpoint_iteration: IterationId) -> std::io::Result<usize> {
        let wm = checkpoint_iteration.get();
        self.gc_watermark.store(wm, Ordering::SeqCst);
        let before = self.staged.len();
        self.staged.retain(|j| j.iteration >= wm);
        let mut removed = before - self.staged.len();
        self.staged_bytes = self.staged.iter().map(|j| j.payload.len()).sum();
        // Wait out in-flight writes so a straggler below the watermark
        // can't land after the delete pass (writers drop such jobs from
        // here on).
        while self.in_flight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        for key in self.store.list("wal/")? {
            // Keys embed the iteration: wal/it{iter:012}/...
            if let Some(it) = key
                .strip_prefix("wal/it")
                .and_then(|s| s.get(0..12))
                .and_then(|s| s.parse::<u64>().ok())
            {
                if it < wm {
                    self.store.delete(&key)?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

impl Drop for Logger {
    fn drop(&mut self) {
        self.flush();
        drop(self.tx.take());
        for h in self.writers.drain(..) {
            let _ = h.join();
        }
    }
}

fn write_payload(store: &BlobStore, key: &str, payload: &[u8], stats: &LogStats) {
    store.put(key, payload).expect("log write failed");
    stats.records_written.fetch_add(1, Ordering::Relaxed);
    stats
        .bytes_written
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    swift_obs::add(swift_obs::Counter::BytesLogged, payload.len() as u64);
}

/// A [`PipelineObserver`] binding a worker rank to its machine's logger —
/// the seam between the pipeline executor and the WAL.
pub struct LoggingObserver<'a> {
    /// The sending rank.
    pub rank: Rank,
    /// The machine's logger.
    pub logger: &'a mut Logger,
}

impl PipelineObserver for LoggingObserver<'_> {
    fn on_send(&mut self, dst: Rank, ctx: StepCtx, kind: MsgKind, t: &Tensor) {
        self.logger.log_send(self.rank, dst, ctx, kind, t);
    }

    fn on_idle(&mut self, _ctx: StepCtx) {
        self.logger.on_bubble();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_pipeline::MsgKind;

    fn setup(mode: LogMode) -> Logger {
        let topo = Topology::uniform(2, 2); // ranks 0,1 | 2,3
        let store = BlobStore::new_temp("wal").unwrap();
        Logger::new(mode, topo.clone(), GroupMap::singletons(2), store)
    }

    fn ctx(it: u64, mb: u64) -> StepCtx {
        StepCtx::new(it, mb)
    }

    #[test]
    fn intra_machine_traffic_not_logged() {
        let mut l = setup(LogMode::Sync);
        l.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &Tensor::ones([4]));
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 0);
        assert_eq!(l.stats().records_skipped.load(Ordering::Relaxed), 1);
        l.log_send(1, 2, ctx(0, 0), MsgKind::Activation, &Tensor::ones([4]));
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn selective_logging_skips_intra_group() {
        let topo = Topology::uniform(4, 1);
        let store = BlobStore::new_temp("wal-sel").unwrap();
        // Machines {0,1} and {2,3} grouped: only the 1→2 boundary logs.
        let groups = GroupMap::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut l = Logger::new(LogMode::Sync, topo, groups, store);
        assert!(!l.should_log(0, 1));
        assert!(l.should_log(1, 2));
        assert!(!l.should_log(2, 3));
        l.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &Tensor::ones([2]));
        l.log_send(1, 2, ctx(0, 0), MsgKind::Activation, &Tensor::ones([2]));
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sync_mode_is_immediately_durable() {
        let mut l = setup(LogMode::Sync);
        l.log_send(1, 2, ctx(3, 1), MsgKind::Gradient, &Tensor::full([8], 2.0));
        assert_eq!(l.store().list("wal/").unwrap().len(), 1);
    }

    #[test]
    fn bubble_mode_stages_until_idle() {
        let mut l = setup(LogMode::BubbleAsync);
        l.log_send(1, 2, ctx(0, 0), MsgKind::Activation, &Tensor::ones([4]));
        l.log_send(1, 2, ctx(0, 1), MsgKind::Activation, &Tensor::ones([4]));
        assert_eq!(l.staged_len(), 2, "records wait for a bubble");
        l.on_bubble();
        assert_eq!(l.staged_len(), 0);
        l.flush();
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn flush_drains_staging_on_failure() {
        let mut l = setup(LogMode::BubbleAsync);
        l.log_send(1, 2, ctx(5, 0), MsgKind::Activation, &Tensor::ones([4]));
        // Failure detected before any bubble: flush must persist it.
        l.flush();
        assert_eq!(l.store().list("wal/").unwrap().len(), 1);
    }

    #[test]
    fn async_mode_eventually_durable() {
        let mut l = setup(LogMode::Async);
        for mb in 0..4 {
            l.log_send(1, 2, ctx(0, mb), MsgKind::Activation, &Tensor::ones([16]));
        }
        l.flush();
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 4);
        // Each record stores its metadata header plus the 64-byte payload.
        assert!(l.stats().bytes_written.load(Ordering::Relaxed) >= 4 * 64);
    }

    #[test]
    fn gc_removes_pre_checkpoint_records() {
        let mut l = setup(LogMode::Sync);
        for it in 0..6u64 {
            l.log_send(1, 2, ctx(it, 0), MsgKind::Activation, &Tensor::ones([2]));
        }
        let removed = l.gc_before(IterationId::new(4)).unwrap();
        assert_eq!(removed, 4);
        let remaining = l.store().list("wal/").unwrap();
        assert_eq!(remaining.len(), 2);
        assert!(remaining
            .iter()
            .all(|k| k.contains("it000000000004") || k.contains("it000000000005")));
    }

    #[test]
    fn f16_precision_halves_stored_volume() {
        let topo = Topology::uniform(2, 1);
        let mk = |precision| {
            Logger::with_precision(
                LogMode::Sync,
                topo.clone(),
                GroupMap::singletons(2),
                BlobStore::new_temp("wal-prec").unwrap(),
                precision,
            )
        };
        let t = Tensor::full([4096], 0.125);
        let mut full = mk(LogPrecision::F32);
        let mut half = mk(LogPrecision::F16);
        full.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &t);
        half.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &t);
        let fb = full.store().total_bytes().unwrap();
        let hb = half.store().total_bytes().unwrap();
        assert!(
            hb < fb * 6 / 10,
            "f16 logging must roughly halve storage: {hb} vs {fb}"
        );
        // And the stored record still decodes to the exact tensor (0.125
        // is representable in f16).
        let key = full.store().list("wal/").unwrap().remove(0);
        let rec = crate::record::LogRecord::decode(half.store().get(&key).unwrap()).unwrap();
        assert!(rec.tensor.bit_eq(&t));
    }

    #[test]
    fn bubble_budget_spills_synchronously_and_accounts_hidden_bytes() {
        static TEST_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = TEST_GUARD.lock().unwrap();
        let rec = std::sync::Arc::new(swift_obs::MemoryRecorder::new());
        swift_obs::install(rec.clone());

        let mut l = setup(LogMode::BubbleAsync);
        let t = Tensor::ones([4]);
        let one = crate::record::LogRecord::encoded_len(&t, false);
        // Budget fits exactly one staged record; the second must spill.
        l.set_bubble_budget(one);
        l.log_send(1, 2, ctx(0, 0), MsgKind::Activation, &t);
        l.log_send(1, 2, ctx(0, 1), MsgKind::Activation, &t);
        assert_eq!(l.staged_len(), 1, "over-budget record must not stage");
        assert_eq!(
            l.store().list("wal/").unwrap().len(),
            1,
            "spilled record is immediately durable"
        );
        l.on_bubble();
        l.flush();
        swift_obs::uninstall();

        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 2);
        // Hidden vs spilled must partition the logged volume exactly.
        assert_eq!(rec.counter(swift_obs::Counter::SpilledBytes), one as u64);
        assert_eq!(rec.counter(swift_obs::Counter::BubbleBytes), one as u64);
        assert_eq!(rec.counter(swift_obs::Counter::BytesLogged), 2 * one as u64);
    }

    #[test]
    fn gc_drops_queued_but_unflushed_records() {
        let mut l = setup(LogMode::BubbleAsync);
        for it in 0..6u64 {
            l.log_send(1, 2, ctx(it, 0), MsgKind::Activation, &Tensor::ones([2]));
        }
        assert_eq!(l.staged_len(), 6, "no bubble yet — everything staged");
        // Checkpoint at iteration 4: the four staged records it supersedes
        // must never reach the disk, even though they were never flushed.
        let removed = l.gc_before(IterationId::new(4)).unwrap();
        assert_eq!(removed, 4);
        assert_eq!(l.staged_len(), 2);
        l.flush();
        let remaining = l.store().list("wal/").unwrap();
        assert_eq!(remaining.len(), 2);
        assert!(remaining
            .iter()
            .all(|k| k.contains("it000000000004") || k.contains("it000000000005")));
    }

    #[test]
    fn writer_pool_persists_async_backlog() {
        let mut l = setup(LogMode::Async);
        for it in 0..8u64 {
            for mb in 0..8 {
                l.log_send(1, 2, ctx(it, mb), MsgKind::Activation, &Tensor::ones([16]));
            }
        }
        l.flush();
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 64);
        assert_eq!(l.store().list("wal/").unwrap().len(), 64);
    }

    /// One randomized round for the replay-equivalence proptest: logs the
    /// same record stream through a synchronous logger and a background
    /// (BubbleAsync, pooled-writer) logger with arbitrary bubble cadence,
    /// a tight random budget (forcing spills), and a crash after `crash_at`
    /// records followed by flush-on-failure. Replay reads both stores and
    /// must see bitwise-identical tensors under identical keys.
    fn background_replay_matches_sync(
        n_records: usize,
        bubble_every: usize,
        budget: usize,
        crash_at: usize,
        seed: u64,
    ) -> bool {
        let topo = Topology::uniform(2, 1);
        let mut sync = Logger::new(
            LogMode::Sync,
            topo.clone(),
            GroupMap::singletons(2),
            BlobStore::new_temp("wal-replay-sync").unwrap(),
        );
        let mut bg = Logger::new(
            LogMode::BubbleAsync,
            topo,
            GroupMap::singletons(2),
            BlobStore::new_temp("wal-replay-bg").unwrap(),
        );
        bg.set_bubble_budget(budget);

        let crash_at = crash_at.min(n_records);
        let mut state = seed | 1;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f32 / (1u64 << 31) as f32 - 0.5
        };
        for i in 0..crash_at {
            let t = Tensor::from_vec([3], vec![rng(), rng(), rng()]);
            let c = ctx(i as u64 / 4, i as u64 % 4);
            sync.log_send(0, 1, c, MsgKind::Activation, &t);
            bg.log_send(0, 1, c, MsgKind::Activation, &t);
            if bubble_every > 0 && (i + 1) % bubble_every == 0 {
                bg.on_bubble();
            }
        }
        // Crash: flush-on-failure barriers the queue before replay.
        bg.flush();

        let mut sync_keys = sync.store().list("wal/").unwrap();
        let mut bg_keys = bg.store().list("wal/").unwrap();
        sync_keys.sort();
        bg_keys.sort();
        if sync_keys != bg_keys {
            return false;
        }
        sync_keys.iter().all(|k| {
            let a = crate::record::LogRecord::decode(sync.store().get(k).unwrap()).unwrap();
            let b = crate::record::LogRecord::decode(bg.store().get(k).unwrap()).unwrap();
            a.tensor.bit_eq(&b.tensor)
        })
    }

    mod proptests {
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn background_wal_replay_is_bitwise_equal_to_sync(
                n_records in 1usize..24,
                bubble_every in 0usize..6,
                budget in 0usize..256,
                crash_at in 0usize..24,
                seed in 0u64..10_000,
            ) {
                prop_assert!(super::background_replay_matches_sync(
                    n_records, bubble_every, budget, crash_at, seed
                ));
            }
        }
    }

    #[test]
    fn drop_flushes_outstanding_records() {
        let store = BlobStore::new_temp("wal-drop").unwrap();
        {
            let mut l = Logger::new(
                LogMode::BubbleAsync,
                Topology::uniform(2, 1),
                GroupMap::singletons(2),
                store.clone(),
            );
            l.log_send(0, 1, ctx(9, 0), MsgKind::Gradient, &Tensor::ones([4]));
        } // drop
        assert_eq!(store.list("wal/").unwrap().len(), 1);
    }
}
