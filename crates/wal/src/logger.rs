//! The logging engine: upstream backup with synchronous, asynchronous, and
//! bubble-time-asynchronous modes (§5.1).
//!
//! The paper's pipeline is: outbound tensor → (stays "on the GPU") →
//! copied to CPU during the next bubble → background thread writes it to
//! the local disk. Here:
//!
//! - `Sync` writes inline on `on_send` (the `torch.save`-before-send
//!   baseline of §7.1);
//! - `Async` enqueues to the writer thread immediately on `on_send`;
//! - `BubbleAsync` stages the record in memory on `on_send` and hands the
//!   staged batch to the writer thread only at the next bubble
//!   ([`PipelineObserver::on_idle`]) — logging fully off the critical
//!   path.
//!
//! On failure detection the owner calls [`Logger::flush`], which drains
//! the staging area and blocks until the writer is idle — the paper's
//! "flush the queue of uncompleted logging tasks".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use swift_dnn::StepCtx;
use swift_net::{Rank, Topology};
use swift_pipeline::{MsgKind, PipelineObserver};
use swift_store::BlobStore;
use swift_tensor::Tensor;

use crate::grouping::GroupMap;
use crate::record::LogRecord;

/// When records leave the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// Write inline before returning from the send (baseline).
    Sync,
    /// Enqueue to the background writer immediately.
    Async,
    /// Stage in memory; enqueue at the next pipeline bubble.
    BubbleAsync,
}

/// Payload precision for persisted records (§8 mixed precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogPrecision {
    /// Full precision: replay is bitwise exact.
    F32,
    /// Half precision: half the volume, ≤2⁻¹¹ relative rounding on replay.
    F16,
}

/// Counters exposed for experiments.
#[derive(Debug, Default)]
pub struct LogStats {
    /// Records durably written.
    pub records_written: AtomicU64,
    /// Payload bytes durably written.
    pub bytes_written: AtomicU64,
    /// Records dropped because the destination was intra-group (not
    /// logged under selective logging).
    pub records_skipped: AtomicU64,
}

/// The per-machine logger. One logger serves all workers of a machine
/// (they share its disk); it decides *what* to log from the topology and
/// the selective-logging group map.
pub struct Logger {
    mode: LogMode,
    precision: LogPrecision,
    topology: Topology,
    groups: GroupMap,
    staged: Vec<LogRecord>,
    tx: Option<Sender<LogRecord>>,
    writer: Option<JoinHandle<()>>,
    in_flight: Arc<AtomicU64>,
    stats: Arc<LogStats>,
    store: BlobStore,
}

impl Logger {
    /// Creates a logger writing to the machine-local `store`.
    ///
    /// `groups` controls selective logging (§5.3): traffic between ranks
    /// whose machines share a group is *not* logged. Use
    /// [`GroupMap::singletons`] for full (per-machine) logging.
    pub fn new(mode: LogMode, topology: Topology, groups: GroupMap, store: BlobStore) -> Self {
        Self::with_precision(mode, topology, groups, store, LogPrecision::F32)
    }

    /// Creates a logger persisting records at the given precision.
    pub fn with_precision(
        mode: LogMode,
        topology: Topology,
        groups: GroupMap,
        store: BlobStore,
        precision: LogPrecision,
    ) -> Self {
        let stats = Arc::new(LogStats::default());
        let in_flight = Arc::new(AtomicU64::new(0));
        let (tx, writer) = if mode == LogMode::Sync {
            (None, None)
        } else {
            let (tx, rx) = unbounded::<LogRecord>();
            let store2 = store.clone();
            let stats2 = stats.clone();
            let in_flight2 = in_flight.clone();
            let handle = std::thread::Builder::new()
                .name("wal-writer".into())
                .spawn(move || {
                    while let Ok(rec) = rx.recv() {
                        write_record(&store2, &rec, &stats2, precision);
                        in_flight2.fetch_sub(1, Ordering::SeqCst);
                    }
                })
                .expect("failed to spawn wal writer");
            (Some(tx), Some(handle))
        };
        Logger {
            mode,
            precision,
            topology,
            groups,
            staged: Vec::new(),
            tx,
            writer,
            in_flight,
            stats,
            store,
        }
    }

    /// The logging mode.
    pub fn mode(&self) -> LogMode {
        self.mode
    }

    /// Statistics counters.
    pub fn stats(&self) -> &Arc<LogStats> {
        &self.stats
    }

    /// The machine-local store records land in.
    pub fn store(&self) -> &BlobStore {
        &self.store
    }

    /// Whether traffic `src → dst` must be logged: inter-machine (§5.1)
    /// *and* inter-group (§5.3).
    pub fn should_log(&self, src: Rank, dst: Rank) -> bool {
        let (ms, md) = (self.topology.machine_of(src), self.topology.machine_of(dst));
        ms != md && self.groups.group_of(ms) != self.groups.group_of(md)
    }

    /// Records an outbound tensor (called from the send path).
    pub fn log_send(&mut self, src: Rank, dst: Rank, ctx: StepCtx, kind: MsgKind, t: &Tensor) {
        if !self.should_log(src, dst) {
            self.stats.records_skipped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let rec = LogRecord::new(src, dst, ctx.iteration, ctx.microbatch, kind, t.clone());
        match self.mode {
            LogMode::Sync => write_record(&self.store, &rec, &self.stats, self.precision),
            LogMode::Async => self.enqueue(rec),
            LogMode::BubbleAsync => self.staged.push(rec),
        }
    }

    /// Bubble callback: hand staged records to the background writer
    /// ("copy to CPU during the bubble").
    pub fn on_bubble(&mut self) {
        if self.mode == LogMode::BubbleAsync {
            for rec in self.staged.drain(..) {
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                self.tx
                    .as_ref()
                    .unwrap()
                    .send(rec)
                    .expect("wal writer gone");
            }
        }
    }

    fn enqueue(&mut self, rec: LogRecord) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.tx
            .as_ref()
            .unwrap()
            .send(rec)
            .expect("wal writer gone");
    }

    /// Records staged in memory, not yet handed to the writer.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Drains staging and blocks until every record is durable — called on
    /// failure detection (§5.1 recovery step 1–2) and at checkpoints.
    pub fn flush(&mut self) {
        let staged: Vec<LogRecord> = self.staged.drain(..).collect();
        match self.mode {
            LogMode::Sync => {
                for rec in &staged {
                    write_record(&self.store, rec, &self.stats, self.precision);
                }
            }
            _ => {
                for rec in staged {
                    self.enqueue(rec);
                }
                while self.in_flight.load(Ordering::SeqCst) > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            }
        }
    }

    /// Garbage-collects every record older than `checkpoint_iteration`
    /// (obsoleted by the checkpoint, §5.1); returns the count removed.
    pub fn gc_before(&self, checkpoint_iteration: u64) -> std::io::Result<usize> {
        let mut removed = 0;
        for key in self.store.list("wal/")? {
            // Keys embed the iteration: wal/it{iter:012}/...
            if let Some(it) = key
                .strip_prefix("wal/it")
                .and_then(|s| s.get(0..12))
                .and_then(|s| s.parse::<u64>().ok())
            {
                if it < checkpoint_iteration {
                    self.store.delete(&key)?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

impl Drop for Logger {
    fn drop(&mut self) {
        self.flush();
        drop(self.tx.take());
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

fn write_record(store: &BlobStore, rec: &LogRecord, stats: &LogStats, precision: LogPrecision) {
    let payload = rec.encode_precision(precision == LogPrecision::F16);
    let bytes = payload.len() as u64;
    store.put(&rec.key(), &payload).expect("log write failed");
    stats.records_written.fetch_add(1, Ordering::Relaxed);
    stats.bytes_written.fetch_add(bytes, Ordering::Relaxed);
}

/// A [`PipelineObserver`] binding a worker rank to its machine's logger —
/// the seam between the pipeline executor and the WAL.
pub struct LoggingObserver<'a> {
    /// The sending rank.
    pub rank: Rank,
    /// The machine's logger.
    pub logger: &'a mut Logger,
}

impl PipelineObserver for LoggingObserver<'_> {
    fn on_send(&mut self, dst: Rank, ctx: StepCtx, kind: MsgKind, t: &Tensor) {
        self.logger.log_send(self.rank, dst, ctx, kind, t);
    }

    fn on_idle(&mut self, _ctx: StepCtx) {
        self.logger.on_bubble();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_pipeline::MsgKind;

    fn setup(mode: LogMode) -> Logger {
        let topo = Topology::uniform(2, 2); // ranks 0,1 | 2,3
        let store = BlobStore::new_temp("wal").unwrap();
        Logger::new(mode, topo.clone(), GroupMap::singletons(2), store)
    }

    fn ctx(it: u64, mb: u64) -> StepCtx {
        StepCtx::new(it, mb)
    }

    #[test]
    fn intra_machine_traffic_not_logged() {
        let mut l = setup(LogMode::Sync);
        l.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &Tensor::ones([4]));
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 0);
        assert_eq!(l.stats().records_skipped.load(Ordering::Relaxed), 1);
        l.log_send(1, 2, ctx(0, 0), MsgKind::Activation, &Tensor::ones([4]));
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn selective_logging_skips_intra_group() {
        let topo = Topology::uniform(4, 1);
        let store = BlobStore::new_temp("wal-sel").unwrap();
        // Machines {0,1} and {2,3} grouped: only the 1→2 boundary logs.
        let groups = GroupMap::from_groups(vec![vec![0, 1], vec![2, 3]]);
        let mut l = Logger::new(LogMode::Sync, topo, groups, store);
        assert!(!l.should_log(0, 1));
        assert!(l.should_log(1, 2));
        assert!(!l.should_log(2, 3));
        l.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &Tensor::ones([2]));
        l.log_send(1, 2, ctx(0, 0), MsgKind::Activation, &Tensor::ones([2]));
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sync_mode_is_immediately_durable() {
        let mut l = setup(LogMode::Sync);
        l.log_send(1, 2, ctx(3, 1), MsgKind::Gradient, &Tensor::full([8], 2.0));
        assert_eq!(l.store().list("wal/").unwrap().len(), 1);
    }

    #[test]
    fn bubble_mode_stages_until_idle() {
        let mut l = setup(LogMode::BubbleAsync);
        l.log_send(1, 2, ctx(0, 0), MsgKind::Activation, &Tensor::ones([4]));
        l.log_send(1, 2, ctx(0, 1), MsgKind::Activation, &Tensor::ones([4]));
        assert_eq!(l.staged_len(), 2, "records wait for a bubble");
        l.on_bubble();
        assert_eq!(l.staged_len(), 0);
        l.flush();
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn flush_drains_staging_on_failure() {
        let mut l = setup(LogMode::BubbleAsync);
        l.log_send(1, 2, ctx(5, 0), MsgKind::Activation, &Tensor::ones([4]));
        // Failure detected before any bubble: flush must persist it.
        l.flush();
        assert_eq!(l.store().list("wal/").unwrap().len(), 1);
    }

    #[test]
    fn async_mode_eventually_durable() {
        let mut l = setup(LogMode::Async);
        for mb in 0..4 {
            l.log_send(1, 2, ctx(0, mb), MsgKind::Activation, &Tensor::ones([16]));
        }
        l.flush();
        assert_eq!(l.stats().records_written.load(Ordering::Relaxed), 4);
        // Each record stores its metadata header plus the 64-byte payload.
        assert!(l.stats().bytes_written.load(Ordering::Relaxed) >= 4 * 64);
    }

    #[test]
    fn gc_removes_pre_checkpoint_records() {
        let mut l = setup(LogMode::Sync);
        for it in 0..6u64 {
            l.log_send(1, 2, ctx(it, 0), MsgKind::Activation, &Tensor::ones([2]));
        }
        let removed = l.gc_before(4).unwrap();
        assert_eq!(removed, 4);
        let remaining = l.store().list("wal/").unwrap();
        assert_eq!(remaining.len(), 2);
        assert!(remaining
            .iter()
            .all(|k| k.contains("it000000000004") || k.contains("it000000000005")));
    }

    #[test]
    fn f16_precision_halves_stored_volume() {
        let topo = Topology::uniform(2, 1);
        let mk = |precision| {
            Logger::with_precision(
                LogMode::Sync,
                topo.clone(),
                GroupMap::singletons(2),
                BlobStore::new_temp("wal-prec").unwrap(),
                precision,
            )
        };
        let t = Tensor::full([4096], 0.125);
        let mut full = mk(LogPrecision::F32);
        let mut half = mk(LogPrecision::F16);
        full.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &t);
        half.log_send(0, 1, ctx(0, 0), MsgKind::Activation, &t);
        let fb = full.store().total_bytes().unwrap();
        let hb = half.store().total_bytes().unwrap();
        assert!(
            hb < fb * 6 / 10,
            "f16 logging must roughly halve storage: {hb} vs {fb}"
        );
        // And the stored record still decodes to the exact tensor (0.125
        // is representable in f16).
        let key = full.store().list("wal/").unwrap().remove(0);
        let rec = crate::record::LogRecord::decode(half.store().get(&key).unwrap()).unwrap();
        assert!(rec.tensor.bit_eq(&t));
    }

    #[test]
    fn drop_flushes_outstanding_records() {
        let store = BlobStore::new_temp("wal-drop").unwrap();
        {
            let mut l = Logger::new(
                LogMode::BubbleAsync,
                Topology::uniform(2, 1),
                GroupMap::singletons(2),
                store.clone(),
            );
            l.log_send(0, 1, ctx(9, 0), MsgKind::Gradient, &Tensor::ones([4]));
        } // drop
        assert_eq!(store.list("wal/").unwrap().len(), 1);
    }
}
