//! # swift-wal
//!
//! SWIFT's logging substrate (paper §5) — to our knowledge the first
//! logging-based failure-recovery design for distributed DNN training:
//!
//! - [`record`]: boundary-tensor log records with `(sender, receiver,
//!   iteration, micro-batch)` timestamps fixing replay order;
//! - [`logger`]: upstream backup with three modes — synchronous
//!   (baseline), asynchronous, and **bubble-time asynchronous** (the
//!   paper's off-critical-path design) — plus flush-on-failure and
//!   post-checkpoint garbage collection;
//! - [`grouping`]: selective logging (§5.3) — the greedy ΔR/ΔM machine-
//!   grouping planner trading recovery time for storage;
//! - [`replay`]: the log-backed [`Transport`](swift_pipeline::Transport)
//!   that re-runs the *normal* pipeline executor over recorded tensors,
//!   and the §5.2 parallel-recovery micro-batch assignment;
//! - [`usecase`]: the §5.4 worthiness test (bubble-time PCIe budget).

pub mod grouping;
pub mod logger;
pub mod record;
pub mod replay;
pub mod usecase;

pub use grouping::{plan_groups, sweep_storage_caps, GroupMap, Plan, PlannerInput};
pub use logger::{LogMode, LogPrecision, LogStats, Logger, LoggingObserver};
pub use record::{LogRecord, LogStamp, MsgKindCode, WalError};
pub use replay::{
    assign_microbatches, replay_iteration_parallel, Endpoint, LogAudit, ReplayTransport, WalReader,
};
pub use usecase::{cnn_pipeline_profile, evaluate as evaluate_usecase, UseCaseReport};
