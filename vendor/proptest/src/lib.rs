//! Offline stand-in for the `proptest` crate (hermetic container, no
//! registry access). Provides the subset this workspace uses: the
//! `proptest!` macro, range/tuple/collection/`any` strategies with
//! `prop_map`/`prop_flat_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each case is sampled from a deterministic SplitMix64 stream
//! keyed on the test name, so failures reproduce exactly across runs.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- test rng

/// Deterministic per-case random stream (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test-name hash and the case index.
    pub fn new(name_hash: u64, case: u64) -> Self {
        TestRng {
            state: name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a test name, for seeding [`TestRng`].
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------- config

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------- strategy

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------- any / arbitrary

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------- collection

/// Strategies over collections (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `len` draws from `element`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

// ---------------------------------------------------------------- macros

/// Runs each contained `#[test] fn name(pat in strategy, ...)` across many
/// sampled cases. No shrinking: the failing case's seed is its (test name,
/// case index) pair, which is stable across runs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let name_hash = $crate::hash_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut prop_rng = $crate::TestRng::new(name_hash, case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut prop_rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Everything a property test needs, plus `prop` as the crate alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..8).prop_flat_map(|n| {
            (0.0f64..1.0, prop::collection::vec(0.0f64..10.0, n)).prop_map(move |(_x, v)| (n, v))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in 1usize..=4, x in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn flat_map_len_matches((n, v) in arb_pair(), flag in any::<bool>()) {
            prop_assert_eq!(v.len(), n);
            #[allow(clippy::overly_complex_bool_expr)]
            {
                prop_assert!(flag || !flag);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(hash_name("t"), 3);
        let mut b = TestRng::new(hash_name("t"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let s = (0u64..100).prop_map(|v| v * 2);
        let mut r1 = TestRng::new(1, 1);
        let mut r2 = TestRng::new(1, 1);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    use crate::{hash_name, TestRng};
}
