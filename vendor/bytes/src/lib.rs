//! Offline stand-in for the `bytes` crate (hermetic container, no registry
//! access). Provides `Bytes` (cheaply cloneable, sliceable, shared buffer),
//! `BytesMut` (append-only builder), and the `Buf`/`BufMut` accessor traits
//! — exactly the surface this workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable view into a shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Borrows `data` statically (copied; the stand-in has no zero-copy
    /// static variant, which callers cannot observe).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        let end = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end,
        }
    }

    /// Bytes in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them. Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {at} > {}",
            self.len()
        );
        let front = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }

    /// Shortens the view to the first `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.end = self.end.min(self.start + len);
    }

    /// A cheap sub-view over `range` (indices relative to this view).
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes(self.as_slice(), f)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes(&self.data, f)
    }
}

fn fmt_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes.iter().take(32) {
        write!(f, "\\x{b:02x}")?;
    }
    if bytes.len() > 32 {
        write!(f, "…")?;
    }
    write!(f, "\"")
}

/// Sequential big-bag-of-bytes reader: every `get_*` consumes from the
/// front. Panics on underflow (callers bounds-check with `remaining`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "Buf underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "Buf underflow");
        let (front, rest) = self.split_at(dst.len());
        dst.copy_from_slice(front);
        *self = rest;
    }
}

/// Sequential byte writer: every `put_*` appends.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16_le(300);
        m.put_u32_le(70_000);
        m.put_u64_le(1 << 40);
        m.put_f32_le(1.5);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 4 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.as_slice(), b"xyz");
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::copy_from_slice(b"hello world");
        let front = b.split_to(5);
        assert_eq!(front.as_slice(), b"hello");
        assert_eq!(b.as_slice(), b" world");
        // Clones share storage.
        let c = b.clone();
        assert_eq!(c.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1, 2]);
        b.get_u32_le();
    }
}
