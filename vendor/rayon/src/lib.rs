//! Offline stand-in for the `rayon` crate (hermetic container, no registry
//! access). Exposes the `par_iter`/`par_chunks` surface this workspace uses
//! and, unlike the original sequential shim, actually executes on a pool of
//! scoped threads.
//!
//! Thread count resolution (checked once per process):
//! 1. `RAYON_NUM_THREADS` if set and ≥ 1 (the determinism test matrix pins
//!    this to 1, 2 and 8);
//! 2. otherwise `std::thread::available_parallelism()`.
//!
//! Determinism contract: every combinator here splits the index space into
//! **contiguous, ordered** pieces and merges per-piece results **in piece
//! order** (`collect` concatenates, `sum` folds partials left-to-right by
//! piece index). A kernel whose per-element computation is independent of
//! the partition — which is what `swift_tensor::par` guarantees by aligning
//! splits to kernel block boundaries — therefore produces bit-identical
//! results at every thread count, including 1.

use std::sync::OnceLock;

/// Number of worker threads the stand-in will use (≥ 1).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// An indexed parallel source: a contiguous range of `pieces()` splittable
/// units that can be divided at any unit boundary and drained sequentially.
///
/// "Piece" is the splitting granularity, not necessarily one item: for
/// `par_chunks(size)` each piece is one chunk. Splits never reorder items,
/// so a left piece always holds strictly lower indices than the right.
pub trait IndexedParallel: Sized + Send {
    type Item: Send;
    type Seq: Iterator<Item = Self::Item>;

    /// Number of splittable units remaining.
    fn pieces(&self) -> usize;
    /// Split into `[0, at)` and `[at, pieces())`.
    fn split_at(self, at: usize) -> (Self, Self);
    /// Drain this piece on the current thread, in index order.
    fn into_seq(self) -> Self::Seq;
}

/// Splits `iter` into at most `current_num_threads()` contiguous pieces and
/// runs `f` on each (first pieces on spawned threads, last on the caller),
/// returning per-piece results **in piece order**.
fn run_parts<I, R, F>(iter: I, f: F) -> Vec<R>
where
    I: IndexedParallel,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let threads = current_num_threads().min(iter.pieces()).max(1);
    if threads <= 1 {
        return vec![f(iter)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads - 1);
        let mut rest = iter;
        for remaining_pieces in (1..threads).rev() {
            // Even split of whatever is left across this piece plus the
            // `remaining_pieces` still to carve off.
            let total = rest.pieces();
            let take = total - (total * remaining_pieces) / (remaining_pieces + 1);
            let (front, back) = rest.split_at(take);
            rest = back;
            handles.push(scope.spawn(move || f(front)));
        }
        let last = f(rest);
        let mut out: Vec<R> = handles
            .into_iter()
            .map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect();
        out.push(last);
        out
    })
}

/// Combinators + terminal operations, implemented for every indexed source.
pub trait ParallelIterator: IndexedParallel {
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_parts(self, |piece| {
            for item in piece.into_seq() {
                f(item);
            }
        });
    }

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Clone + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    fn zip<B: IndexedParallel>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Ordered merge: per-piece collections are concatenated in piece order,
    /// so the result equals the fully sequential collect bit-for-bit.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let parts = run_parts(self, |piece| piece.into_seq().collect::<Vec<_>>());
        parts.into_iter().flatten().collect()
    }

    /// Per-piece partial sums are folded left-to-right in piece order. Only
    /// bit-stable under repartitioning if the summed type is associative
    /// (integers) or the caller pins the piece boundaries.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        run_parts(self, |piece| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }
}

impl<T: IndexedParallel> ParallelIterator for T {}

// ---------------------------------------------------------------------------
// Leaf sources over slices
// ---------------------------------------------------------------------------

pub struct ParIter<'a, T>(&'a [T]);

impl<'a, T: Sync> IndexedParallel for ParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn pieces(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(at);
        (ParIter(l), ParIter(r))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter()
    }
}

pub struct ParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> IndexedParallel for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn pieces(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(at);
        (ParIterMut(l), ParIterMut(r))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter_mut()
    }
}

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedParallel for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn pieces(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ParChunks {
                slice: l,
                size: self.size,
            },
            ParChunks {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> IndexedParallel for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn pieces(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (
            ParChunksMut {
                slice: l,
                size: self.size,
            },
            ParChunksMut {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> IndexedParallel for Map<I, F>
where
    I: IndexedParallel,
    F: Fn(I::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<I::Seq, F>;

    fn pieces(&self) -> usize {
        self.base.pieces()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(at);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }
}

pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: IndexedParallel> IndexedParallel for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;

    fn pieces(&self) -> usize {
        self.base.pieces()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(at);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + at,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.base.into_seq(),
            next: self.offset,
        }
    }
}

pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> IndexedParallel for Zip<A, B>
where
    A: IndexedParallel,
    B: IndexedParallel,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn pieces(&self) -> usize {
        self.a.pieces().min(self.b.pieces())
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(at);
        let (bl, br) = self.b.split_at(at);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use super::{IndexedParallel, ParallelIterator};

    /// Shared-slice half of the parallel-iterator surface.
    pub trait ParallelSlice<T: Sync> {
        fn par_iter(&self) -> super::ParIter<'_, T>;
        fn par_chunks(&self, size: usize) -> super::ParChunks<'_, T>;
    }

    /// Mutable-slice half of the parallel-iterator surface.
    pub trait ParallelSliceMut<T: Send> {
        fn par_iter_mut(&mut self) -> super::ParIterMut<'_, T>;
        fn par_chunks_mut(&mut self, size: usize) -> super::ParChunksMut<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> super::ParIter<'_, T> {
            super::ParIter(self)
        }

        fn par_chunks(&self, size: usize) -> super::ParChunks<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            super::ParChunks { slice: self, size }
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> super::ParIterMut<'_, T> {
            super::ParIterMut(self)
        }

        fn par_chunks_mut(&mut self, size: usize) -> super::ParChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            super::ParChunksMut { slice: self, size }
        }
    }
}

/// Stand-in for `rayon::join`: runs both closures on scoped threads when a
/// pool is configured, sequentially otherwise.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon stand-in join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_surface_matches_sequential() {
        let mut v = vec![1, 2, 3, 4];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, [2, 4, 6, 8]);
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, [6, 14]);
        let total: i32 = v.par_iter().sum();
        assert_eq!(total, 20);
        v.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c[0] += i as i32);
        assert_eq!(v, [2, 4, 7, 8]);
    }

    #[test]
    fn collect_preserves_order_at_any_split() {
        let data: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_indices_are_global() {
        let mut v = vec![0usize; 257];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| i == x));
    }

    #[test]
    fn zip_walks_in_lockstep() {
        let a: Vec<i64> = (0..513).collect();
        let b: Vec<i64> = (0..513).map(|x| x * 10).collect();
        let mut out = vec![0i64; 513];
        out.par_iter_mut()
            .zip(a.par_iter().zip(b.par_iter()))
            .for_each(|(o, (&x, &y))| *o = x + y);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as i64 * 11));
    }

    #[test]
    fn chunk_boundaries_survive_splitting() {
        let data: Vec<i32> = (0..103).collect();
        let lens: Vec<usize> = data.par_chunks(10).map(<[i32]>::len).collect();
        assert_eq!(lens, vec![10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 3]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
