//! Offline stand-in for the `rayon` crate (hermetic container, no registry
//! access). Exposes the `par_iter`/`par_chunks` surface this workspace uses
//! but executes sequentially on the calling thread. The tensor kernels are
//! written to be schedule-independent, so sequential execution changes
//! nothing but wall-clock time.

pub mod prelude {
    /// Shared-slice half of the parallel-iterator surface.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// Mutable-slice half of the parallel-iterator surface.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_surface_matches_sequential() {
        let mut v = vec![1, 2, 3, 4];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(v, [2, 4, 6, 8]);
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, [6, 14]);
        let total: i32 = v.par_iter().sum();
        assert_eq!(total, 20);
        v.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c[0] += i as i32);
        assert_eq!(v, [2, 4, 7, 8]);
    }
}
