//! Offline stand-in for the `rand` crate. The workspace does all its random
//! generation through `swift-tensor`'s deterministic `CounterRng`; this
//! placeholder exists only so dependency resolution succeeds in the hermetic
//! container. A tiny seedable generator is provided for completeness.

/// Minimal seedable generator (SplitMix64).
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
