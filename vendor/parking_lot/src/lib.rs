//! Offline stand-in for the `parking_lot` crate (hermetic container, no
//! registry access). Wraps `std::sync` primitives with parking_lot's
//! poison-free API: `lock()`/`read()`/`write()` return guards directly and
//! a panicked holder does not poison the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Poison-free mutex.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_until` can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out() || timeout == Duration::ZERO,
        }
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_until(guard, Instant::now() + timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Poison-free reader-writer lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_until_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            let deadline = Instant::now() + Duration::from_secs(2);
            while !*g {
                if cv.wait_until(&mut g, deadline).timed_out() {
                    return false;
                }
            }
            true
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(h.join().unwrap());
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
