//! Offline stand-in for the `crossbeam` crate (this workspace builds in a
//! hermetic container with no registry access). Implements exactly the
//! channel surface the workspace uses — unbounded MPMC channels with
//! cloneable senders, blocking/timed receives, and disconnect semantics —
//! on top of `std::sync` primitives.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`], carrying the rejected value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        cv: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Cloneable sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap();
            q.senders -= 1;
            if q.senders == 0 {
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap();
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.shared.cv.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() {
                    // Loop once more: a value may have raced in.
                    if let Some(v) = q.items.pop_front() {
                        return Ok(v);
                    }
                    if q.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(v) = q.items.pop_front() {
                Ok(v)
            } else if q.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (s, r) = unbounded();
            s.send(1).unwrap();
            s.send(2).unwrap();
            assert_eq!(r.recv(), Ok(1));
            assert_eq!(r.try_recv(), Ok(2));
            assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (s, r) = unbounded::<u32>();
            assert_eq!(
                r.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(s);
            assert_eq!(
                r.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_wakeup() {
            let (s, r) = unbounded();
            let h = thread::spawn(move || r.recv().unwrap());
            thread::sleep(Duration::from_millis(20));
            s.send(7u32).unwrap();
            assert_eq!(h.join().unwrap(), 7);
        }

        #[test]
        fn send_fails_without_receiver() {
            let (s, r) = unbounded();
            drop(r);
            assert_eq!(s.send(5), Err(SendError(5)));
        }
    }
}
