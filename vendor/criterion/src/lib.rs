//! Offline stand-in for the `criterion` crate (hermetic container, no
//! registry access). Implements the benchmarking surface this workspace
//! uses — groups, throughput labels, `bench_function`/`bench_with_input`,
//! `iter`/`iter_with_setup` — with a simple best-of-N wall-clock timer and
//! plain-text reporting instead of criterion's statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value-blackholing (stable-Rust approximation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id (inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units for relating wall time to work done.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handed to the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` only, rebuilding its input with `setup` each sample.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn best(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or_default()
    }
}

fn report(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let best = bencher.best();
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = throughput
        .map(|t| {
            let secs = best.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(b) => format!("  {:.3e} B/s", b as f64 / secs),
                Throughput::Elements(e) => format!("  {:.3e} elem/s", e as f64 / secs),
            }
        })
        .unwrap_or_default();
    println!("bench {label:<48} best {best:>12.3?}{rate}");
}

/// A named set of related benchmarks sharing throughput/sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput label for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Accepted for API parity; the stand-in ignores the time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher);
        report(&self.name, &id.id, &bencher, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher, input);
        report(&self.name, &id.id, &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        self.sample_size = 10;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report("", &id.id, &bencher, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(128));
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| v.len())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
    }
}
