//! Offline stand-in for `serde_derive`. The companion `serde` stub defines
//! `Serialize`/`Deserialize` as empty marker traits, so the derives only
//! need to name the type and emit empty impls. Supports the plain
//! (non-generic) structs and enums this workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following `struct` or `enum`.
fn type_name(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
