//! Offline stand-in for the `serde` crate (hermetic container, no registry
//! access). This workspace hand-rolls its wire format (`swift-tensor`'s
//! `serialize` module); the serde derives on `Tensor`/`Shape`/etc. exist
//! only to mark types as serialization-safe. The traits here are therefore
//! empty markers and the derive shim emits empty impls.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type has a stable, serializable representation.
pub trait Serialize {}

/// Marker: the type can be reconstructed from its serialized form.
pub trait Deserialize<'de>: Sized {}
