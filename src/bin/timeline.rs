//! `timeline` — run instrumented chaos scenarios and reconstruct the
//! per-incident recovery breakdown (paper §6, "Recovery time breakdown").
//!
//! For each scenario the binary installs a fresh in-memory recorder,
//! runs the scenario with an injected machine failure and fabric
//! tracing enabled, then:
//!
//! 1. reconstructs the recovery timeline from the emitted spans —
//!    [`swift::obs::reconstruct`] *is* the invariant checker: unbalanced
//!    spans, missing phases, out-of-order phases and ambiguous
//!    broadcast/replay synchronization all surface as errors;
//! 2. re-checks segment contiguity per incident (phases must tile the
//!    incident without gaps or overlap);
//! 3. feeds the same run's vector-clocked fabric trace to
//!    `swift-verify`'s race checker.
//!
//! Any violation exits nonzero — CI runs this as the `obs` gate via
//! `cargo xtask timeline --json`.
//!
//! Output: a human-readable breakdown per scenario by default, or with
//! `--json` a single JSON object keyed by scenario name, each value
//! carrying the incident array plus the scenario's counter totals.

use std::process::ExitCode;
use std::sync::Arc;

use swift::core::{DpScenario, PipelineScenario, ScenarioResult};
use swift::data::BlobsDataset;
use swift::dnn::models::mlp;
use swift::obs::{reconstruct, Counter, MemoryRecorder, Phase, Timeline};
use swift::pipeline::ScheduleKind;
use swift::wal::{LogMode, LogPrecision};

/// One chaos scenario: a name, the run itself, and which state-sync
/// phase (broadcast vs replay) its recovery strategy must exhibit.
struct Scenario {
    name: &'static str,
    sync_phase: Phase,
    run: fn() -> ScenarioResult,
}

/// A DP job (3 replicas) killed mid-update at iteration 4: replication
/// recovery — undo partial updates, fence, broadcast survivor state.
fn dp_crash() -> ScenarioResult {
    DpScenario::builder(
        Arc::new(|| mlp("timeline-dp", &[6, 16, 16, 3], 11)),
        Arc::new(BlobsDataset::new(3, 6, 3, 0.3)),
    )
    .machines(3)
    .batch_size(12)
    .iters(8)
    .crash(1, 4, 2)
    .trace()
    .run()
}

/// A 3-stage pipeline killed at iteration 6 with parallel recovery
/// (d = 2): logging recovery — undo, fence the replay group, replay
/// logged microbatches, resume.
fn pipeline_replay() -> ScenarioResult {
    PipelineScenario::builder(
        Arc::new(|| mlp("timeline-pipe", &[6, 16, 16, 3], 11)),
        Arc::new(BlobsDataset::new(3, 6, 3, 0.3)),
    )
    .stages(3)
    .batch_size(8)
    .microbatches(4)
    .ckpt_interval(4)
    .iters(10)
    .schedule(ScheduleKind::OneFOneB)
    .log_mode(LogMode::BubbleAsync)
    .log_precision(LogPrecision::F32)
    .crash(1, 6)
    .parallel_recovery(2)
    .trace()
    .run()
}

const SCENARIOS: [Scenario; 2] = [
    Scenario {
        name: "dp-crash",
        sync_phase: Phase::Broadcast,
        run: dp_crash,
    },
    Scenario {
        name: "pipeline-replay",
        sync_phase: Phase::Replay,
        run: pipeline_replay,
    },
];

fn main() -> ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("timeline: unknown flag `{other}` (expected --json)");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failures = 0usize;
    let mut json_parts = Vec::new();
    for sc in &SCENARIOS {
        match run_scenario(sc) {
            Ok((timeline, counters)) => {
                if json {
                    json_parts.push(format!(
                        "  \"{}\": {{\n    \"incidents\": {},\n    \"counters\": {{{}}}\n  }}",
                        sc.name,
                        indent_json(&timeline.to_json()),
                        counters
                            .iter()
                            .map(|(name, v)| format!("\"{name}\": {v}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                } else {
                    println!("=== {} ===", sc.name);
                    print!("{}", timeline.render_text());
                    for (name, v) in &counters {
                        println!("  counter {name} = {v}");
                    }
                    println!();
                }
            }
            Err(msgs) => {
                for m in msgs {
                    eprintln!("timeline: {}: {m}", sc.name);
                }
                failures += 1;
            }
        }
    }
    if json && failures == 0 {
        println!("{{\n{}\n}}", json_parts.join(",\n"));
    }
    if failures > 0 {
        eprintln!("timeline: {failures} scenario(s) violated recovery invariants");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// A scenario's non-zero counter totals, `(name, total)` per counter.
type CounterTotals = Vec<(&'static str, u64)>;

/// Runs one scenario under a fresh recorder and checks every invariant.
/// Returns the reconstructed timeline and non-zero counter totals, or
/// the list of violations.
fn run_scenario(sc: &Scenario) -> Result<(Timeline, CounterTotals), Vec<String>> {
    let rec = Arc::new(MemoryRecorder::new());
    swift::obs::install(rec.clone());
    let result = (sc.run)();
    swift::obs::uninstall();

    let mut errors = Vec::new();
    if !result.recovered {
        errors.push("scenario did not recover from the injected failure".into());
    }

    // The fabric trace from the *same* run goes through the race checker.
    match &result.trace {
        Some(trace) => {
            for v in swift_verify::race::check_trace(trace) {
                errors.push(format!("race checker: {v}"));
            }
        }
        None => errors.push("scenario ran without a fabric trace".into()),
    }

    let timeline = match reconstruct(&rec.events()) {
        Ok(t) => t,
        Err(e) => {
            errors.push(format!("timeline reconstruction: {e}"));
            return Err(errors);
        }
    };

    if timeline.incidents.is_empty() {
        errors.push("no incident reconstructed from an injected failure".into());
    }
    for inc in &timeline.incidents {
        if inc.aborted {
            continue; // superseded by a cascade; phase set legitimately partial
        }
        for need in [
            Phase::Detect,
            Phase::Undo,
            Phase::Fence,
            sc.sync_phase,
            Phase::Resume,
        ] {
            if inc.segment(need).is_none() {
                errors.push(format!("epoch {}: phase `{need}` missing", inc.epoch));
            }
        }
        for w in inc.segments.windows(2) {
            if w[0].end_ns != w[1].start_ns {
                errors.push(format!(
                    "epoch {}: gap/overlap between `{}` (ends {}) and `{}` (starts {})",
                    inc.epoch, w[0].phase, w[0].end_ns, w[1].phase, w[1].start_ns
                ));
            }
        }
    }

    if errors.is_empty() {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name(), rec.counter(c)))
            .filter(|&(_, v)| v > 0)
            .collect();
        Ok((timeline, counters))
    } else {
        Err(errors)
    }
}

/// Re-indents the timeline's own JSON array so it nests cleanly inside
/// the per-scenario object.
fn indent_json(s: &str) -> String {
    s.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("    {l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}
