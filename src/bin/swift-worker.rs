//! One rank of a multi-process training job. Spawned by the process
//! supervisor ([`swift::core::process::run_process_scenario`]) with its
//! configuration in `SWIFT_WORKER_*` environment variables; never meant
//! to be launched by hand. Exists so that failure injection can be a
//! real `SIGKILL` against a real PID.

fn main() {
    std::process::exit(swift::core::process::worker_main());
}
