//! # SWIFT — expedited failure recovery for large-scale DNN training
//!
//! A from-scratch Rust reproduction of *SWIFT: Expedited Failure Recovery
//! for Large-scale DNN Training* (Zhong, Sheng, Liu, Yuan, Wu —
//! PPoPP'23). This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`obs`] | `swift-obs` | typed IDs, spans/counters, recovery timelines |
//! | [`tensor`] | `swift-tensor` | deterministic dense tensor math |
//! | [`data`] | `swift-data` | deterministic synthetic datasets |
//! | [`optim`] | `swift-optim` | invertible optimizers (update-undo, §4) |
//! | [`dnn`] | `swift-dnn` | layers, models, paper-scale profiles |
//! | [`net`] | `swift-net` | in-process cluster with fail-stop injection |
//! | [`store`] | `swift-store` | local-disk + global-store tiers |
//! | [`pipeline`] | `swift-pipeline` | 1F1B/GPipe schedules + executor |
//! | [`ckpt`] | `swift-ckpt` | global / CheckFreq / snapshot baselines |
//! | [`wal`] | `swift-wal` | logging, selective logging, replay (§5) |
//! | [`core`] | `swift-core` | the SWIFT runtime: strategies + recovery |
//! | [`sim`] | `swift-sim` | testbed-scale performance model (§7) |
//!
//! Start with the `quickstart` example, then `pipeline_logging` for
//! logging-based recovery and `end_to_end_sim` for the evaluation study.

pub use swift_ckpt as ckpt;
pub use swift_core as core;
pub use swift_data as data;
pub use swift_dnn as dnn;
pub use swift_net as net;
pub use swift_obs as obs;
pub use swift_optim as optim;
pub use swift_pipeline as pipeline;
pub use swift_sim as sim;
pub use swift_store as store;
pub use swift_tensor as tensor;
pub use swift_wal as wal;
