//! The §7.3 simulation study at the paper's full scale: end-to-end
//! training time with randomly injected failures, for all three benchmark
//! models and all methods (Tables 4–5 condensed, plus the MTBF sweep of
//! Fig. 13).
//!
//! Run with: `cargo run --release --example end_to_end_sim`

use swift_dnn::profile::{bert_128, vit_128_32, wide_resnet_50, TESTBED};
use swift_sim::{simulate_mean, sweep_mtbf, CostModel, Method};

fn main() {
    println!("Table 4/5 — simulated end-to-end training time (MTBF 17 h, mean of 10 runs):");
    let jobs = [
        (
            wide_resnet_50(),
            Method::SwiftReplication {
                ckpt_interval: 5_004,
            },
            "replication",
        ),
        (
            vit_128_32(),
            Method::SwiftLogging {
                ckpt_interval: 312,
                groups: 16,
                sync: false,
                parallel_recovery: 16,
            },
            "logging+PR",
        ),
        (
            bert_128(),
            Method::SwiftLogging {
                ckpt_interval: 5_000,
                groups: 16,
                sync: false,
                parallel_recovery: 16,
            },
            "logging+PR",
        ),
    ];
    for (model, swift_method, tag) in jobs {
        let cm = CostModel::new(model, TESTBED);
        let ff = cm.model.failure_free_seconds() / 3600.0;
        let gc = simulate_mean(
            &cm,
            Method::GlobalCkpt {
                interval: cm.model.ckpt_interval,
            },
            17.0,
            10,
        );
        let sw = simulate_mean(&cm, swift_method, 17.0, 10);
        println!(
            "  {:<16} failure-free {ff:>6.1} h | global-ckpt {:>6.1} h ({} failures) | \
             swift[{tag}] {:>6.1} h | speedup {:.2}x",
            cm.model.name,
            gc.hours,
            gc.failures,
            sw.hours,
            gc.hours / sw.hours
        );
    }

    println!("\nFig 13 — Wide-ResNet-50 end-to-end hours vs MTBF:");
    let cm = CostModel::new(wide_resnet_50(), TESTBED);
    let mtbfs = [4.0, 8.0, 17.0, 34.0, 68.0];
    let gc = sweep_mtbf(&cm, Method::GlobalCkpt { interval: 5_004 }, &mtbfs, 6);
    let sw = sweep_mtbf(
        &cm,
        Method::SwiftReplication {
            ckpt_interval: 5_004,
        },
        &mtbfs,
        6,
    );
    println!(
        "  {:>10} {:>14} {:>10} {:>9}",
        "MTBF (h)", "global (h)", "swift (h)", "speedup"
    );
    for (g, s) in gc.iter().zip(sw.iter()) {
        println!(
            "  {:>10.0} {:>14.1} {:>10.1} {:>8.2}x",
            g.0,
            g.1,
            s.1,
            g.1 / s.1
        );
    }
    println!("OK");
}
