//! Logging-based recovery for pipeline parallelism (paper §5).
//!
//! A 3-stage pipeline trains with bubble-time logging of inter-machine
//! activations/gradients. The middle machine is killed; the replacement
//! loads the last checkpoint, downloads the logs and *replays* the lost
//! iterations — landing bit-identically on the pre-failure trajectory
//! thanks to end-to-end determinism (§6). A second run demonstrates
//! parallel recovery (§5.2) with a surviving machine assisting.
//!
//! Run with: `cargo run --example pipeline_logging`

use std::sync::Arc;

use swift::core::{ModelFn, PipelineScenario};
use swift_data::BlobsDataset;
use swift_dnn::models::mlp;
use swift_optim::OptimizerKind;
use swift_wal::LogMode;

fn scenario(crash: Option<(usize, u64)>, d: usize) -> swift::core::ScenarioResult {
    let model_fn: ModelFn = Arc::new(|| mlp("pipe", &[8, 24, 24, 3], 43));
    let mut b = PipelineScenario::builder(model_fn, Arc::new(BlobsDataset::new(9, 8, 3, 0.3)))
        .stages(3)
        .opt(OptimizerKind::SgdMomentum {
            lr: 0.05,
            weight_decay: 0.0,
            momentum: 0.9,
            dampening: 0.0,
        })
        .batch_size(8)
        .microbatches(4)
        .ckpt_interval(10)
        .iters(40)
        .schedule(swift::pipeline::ScheduleKind::OneFOneB)
        .log_mode(LogMode::BubbleAsync)
        .log_precision(swift::wal::LogPrecision::F32)
        .parallel_recovery(d);
    if let Some((m, it)) = crash {
        b = b.crash(m, it);
    }
    b.run()
}

fn main() {
    println!("running failure-free reference (3-stage 1F1B pipeline, 40 iterations)…");
    let clean = scenario(None, 1);

    println!("running with machine 1 killed at iteration 20, sequential replay…");
    let failed = scenario(Some((1, 20)), 1);

    for stage in 0..3 {
        let bit = clean.states[stage].bit_eq(&failed.states[stage]);
        println!("  stage {stage}: recovered state bitwise identical to failure-free: {bit}");
        assert!(bit, "logging replay must be deterministic (§6)");
    }
    println!(
        "  loss trajectory: failure-free last {:.4}, recovered last {:.4}",
        clean.losses.last().unwrap(),
        failed.losses.last().unwrap()
    );
    println!("  recovery phases (replacement wall clock):");
    for (phase, ms) in &failed.recovery_trace {
        println!("    {phase:<28} {ms:>8.2} ms");
    }

    println!("running with machine 1 killed at iteration 20, parallel recovery (d = 2)…");
    let parallel = scenario(Some((1, 20)), 2);
    let drift = clean.states[1].max_abs_diff(&parallel.states[1]);
    println!(
        "  stage 1 drift vs failure-free: {drift:.2e} \
         (parallel replay reorders the gradient sum — logically equivalent, §5.2)"
    );
    assert!(
        drift < 1e-3,
        "parallel recovery must track the sequential trajectory"
    );
    println!("OK");
}
