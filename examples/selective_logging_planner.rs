//! Selective logging and the §5.3/§5.4 planning machinery.
//!
//! Prints (1) the §5.4 use-case verdicts — which of the paper's models are
//! worth logging at all, (2) Table 3's logging volumes, and (3) the greedy
//! ΔR/ΔM grouping outcomes under shrinking storage caps (Tables 6–7 /
//! Fig. 10).
//!
//! Run with: `cargo run --example selective_logging_planner`

use swift_dnn::profile::{all_models, TESTBED};
use swift_wal::{cnn_pipeline_profile, evaluate_usecase, plan_groups, PlannerInput};

fn main() {
    println!("§5.4 use-case test — is logging worth doing?");
    for model in all_models().iter().chain([cnn_pipeline_profile()].iter()) {
        let r = evaluate_usecase(model, &TESTBED);
        println!(
            "  {:<16} log/iter/machine {:>7.2} GB | PCIe {:>6.3}s vs bubble {:>6.3}s | \
             interval volume {:>8.2} TB | verdict: {}",
            r.model,
            r.per_machine_log_bytes / 1e9,
            r.pcie_time_s,
            r.bubble_time_s,
            r.per_machine_interval_bytes / 1e12,
            if r.worth_logging {
                "LOG"
            } else {
                "checkpoint only"
            },
        );
    }

    println!("\nTable 3 — logging volume per iteration:");
    for model in all_models().iter().filter(|m| m.stages_per_machine > 0) {
        for groups in [16usize, 8] {
            println!(
                "  {:<12} {groups:>2} groups: {:>6.2} GB/iter, {:>6.3} GB/s consumed bandwidth",
                model.name,
                model.logging_bytes_per_iteration(groups) / 1e9,
                model.avg_logging_bandwidth(groups) / 1e9,
            );
        }
    }

    println!("\n§5.3 greedy grouping under a shrinking storage cap (BERT-128):");
    let bert = swift_dnn::profile::bert_128();
    let input = PlannerInput {
        per_machine_compute_s: bert.per_machine_compute_s(),
        boundary_bytes_per_iter: vec![bert.boundary_bytes_per_iteration(); bert.machines - 1],
        bandwidth_bps: TESTBED.net_bps,
        ckpt_interval: bert.ckpt_interval,
        parallel_recovery: false,
    };
    for cap in [5.0e13, 3.0e13, 2.0e13, 1.0e13, 5.0e12, 1.0e12, 0.0] {
        let plan = plan_groups(&input, cap);
        println!(
            "  cap {:>8.1} GB → {:>2} groups, storage {:>8.1} GB, expected recovery {:>7.2} s/iter: {:?}",
            cap / 1e9,
            plan.map.num_groups(),
            plan.storage_bytes / 1e9,
            plan.expected_recovery_s_per_iter,
            plan.map.groups().iter().map(|g| g.len()).collect::<Vec<_>>(),
        );
    }
    println!("OK");
}
