//! Quickstart: fault-tolerant data-parallel training with SWIFT.
//!
//! Trains a small classifier on two simulated machines, kills one of them
//! *mid-optimizer-update* (the crash-consistency window of paper §2.3),
//! and lets SWIFT recover it: the survivor undoes its partial update (§4)
//! and broadcasts its replica to the replacement. Training finishes as if
//! nothing happened.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use swift::core::{evaluate_state, select_strategy, DpScenario, JobShape, Strategy};
use swift_data::BlobsDataset;
use swift_dnn::models::mlp;
use swift_optim::OptimizerKind;

fn main() {
    // 1. SWIFT picks the recovery strategy from the job shape (§3):
    //    data parallelism across machines → replication-based recovery.
    let strategy = select_strategy(JobShape {
        cross_machine_replica: true,
        cross_machine_pipeline: false,
        logging_worth_it: false,
    });
    assert_eq!(strategy, Strategy::Replication);
    println!("strategy selected: {strategy:?}");

    // 2. Define the job: model factory, optimizer, dataset.
    let model_fn: swift::core::ModelFn = Arc::new(|| mlp("quickstart", &[8, 32, 3], 42));
    let dataset = Arc::new(BlobsDataset::new(7, 8, 3, 0.3));
    let opt = OptimizerKind::SgdMomentum {
        lr: 0.05,
        weight_decay: 0.001,
        momentum: 0.9,
        dampening: 0.0,
    };

    // 3. Train 80 iterations on 2 machines; machine 1 dies at iteration 40
    //    after updating only 2 of its parameter groups.
    let result = DpScenario::builder(model_fn.clone(), dataset.clone())
        .machines(2)
        .opt(opt)
        .batch_size(16)
        .iters(80)
        .crash(1, 40, 2)
        .run();

    println!(
        "trained {} iterations; failure injected and recovered: {}",
        result.losses.len(),
        result.recovered
    );
    println!(
        "loss: first {:.3} → last {:.3}",
        result.losses.first().unwrap(),
        result.losses.last().unwrap()
    );

    // 4. Both replicas end bit-identical, and the model learned the task.
    assert!(
        result.states[0].bit_eq(&result.states[1]),
        "replicas must be bit-identical after recovery"
    );
    let acc = evaluate_state(&model_fn, &result.states[0], &*dataset, 64, 8);
    println!("held-out accuracy after failure + recovery: {acc:.3}");
    assert!(acc > 0.9, "model should learn the task despite the failure");
    println!("OK");
}
