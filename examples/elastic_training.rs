//! Elastic training without checkpoint-restart (paper §8).
//!
//! A 2-replica data-parallel job absorbs a third worker mid-training
//! (scale-out: the joiner receives a replica broadcast and starts
//! bit-identical), later releases it gracefully (scale-in: no state
//! movement at all), and keeps training throughout — no checkpoint was
//! ever loaded.
//!
//! Run with: `cargo run --example elastic_training`

use swift::core::{
    dp_train_step, elastic_join, elastic_leave, elastic_transition_incumbent,
    elastic_transition_scale_in, DpWorker, Membership,
};
use swift::data::{shard_batch, BlobsDataset, Dataset};
use swift::dnn::models::mlp;
use swift::net::{Cluster, Topology, WorkerCtx};
use swift::optim::OptimizerKind;

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.0,
    momentum: 0.9,
    dampening: 0.0,
};

fn step(ctx: &mut WorkerCtx, w: &mut DpWorker, m: &Membership) -> f32 {
    let ds = BlobsDataset::new(6, 6, 3, 0.3);
    let b = ds.batch(w.iteration, 12);
    let s = shard_batch(&b, m.shard_of(ctx.rank()), m.world());
    dp_train_step(ctx, w, &m.members, &s.x, &s.y, 1.0 / 12.0, None).unwrap()
}

fn main() {
    let cluster = Cluster::new(Topology::uniform(3, 1));
    let m0 = Membership::new(0, vec![0, 1]); // epoch 0: two workers
    let m1 = Membership::new(1, vec![0, 1, 2]); // epoch 1: scale-out
    let m2 = Membership::new(2, vec![0, 1]); // epoch 2: scale-in
    m1.publish(&cluster.kv());

    let mut incumbents = Vec::new();
    for rank in 0..2usize {
        let (m0, m1, m2) = (m0.clone(), m1.clone(), m2.clone());
        incumbents.push(cluster.spawn(rank, move |mut ctx| {
            let mut w = DpWorker::new(mlp("el", &[6, 24, 3], 15), SGDM.build());
            for _ in 0..5 {
                step(&mut ctx, &mut w, &m0);
            }
            elastic_transition_incumbent(&mut ctx, &mut w, &m0, &m1).unwrap();
            for _ in 0..5 {
                step(&mut ctx, &mut w, &m1);
            }
            elastic_transition_scale_in(&mut ctx, &m1, &m2).unwrap();
            for _ in 0..5 {
                step(&mut ctx, &mut w, &m2);
            }
            (w.iteration, w.model.state())
        }));
    }
    let (m0j, m1j, m2j) = (m0.clone(), m1.clone(), m2.clone());
    let transient = cluster.spawn(2, move |mut ctx| {
        // The joiner arrives with nothing but the job config.
        let mut w = elastic_join(
            &mut ctx,
            mlp("el", &[6, 24, 3], 15),
            SGDM.build(),
            &m0j,
            &m1j,
        )
        .unwrap();
        println!(
            "joiner admitted at iteration {} (state broadcast, no checkpoint)",
            w.iteration
        );
        for _ in 0..5 {
            step(&mut ctx, &mut w, &m1j);
        }
        elastic_leave(&mut ctx, &m1j, &m2j).unwrap();
        println!("joiner left gracefully at iteration {}", w.iteration);
        w.iteration
    });

    let (it0, s0) = incumbents.remove(0).join().unwrap();
    let (_, s1) = incumbents.remove(0).join().unwrap();
    let left_at = transient.join().unwrap();
    println!(
        "incumbents finished at iteration {it0}; replicas bitwise identical: {}",
        s0.bit_eq(&s1)
    );
    assert!(s0.bit_eq(&s1));
    assert_eq!(left_at, 10);
    println!("OK");
}
