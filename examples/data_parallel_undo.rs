//! Update-undo deep dive (paper §4, Algorithms 1–8).
//!
//! Shows, at the optimizer level, how SWIFT repairs the crash-consistency
//! problem without snapshots: each optimizer's update is mathematically
//! inverted using only the cached gradient, including the partial
//! (layer-wise) case where a crash interrupts the update half-way.
//!
//! Run with: `cargo run --example data_parallel_undo`

use swift_core::{repair_partial_update, UpdateTracker};
use swift_dnn::models::mlp;
use swift_dnn::{Mode, StepCtx};
use swift_optim::{table1, OptimizerKind, UndoError};
use swift_tensor::{CounterRng, Tensor};

fn main() {
    // --- 1. Table 1: which optimizers are undoable, generated from code.
    println!("optimizer invertibility (paper Table 1):");
    for profile in table1() {
        println!(
            "  {:<8} ops {:?} → undoable: {}",
            profile.optimizer,
            profile.ops.iter().map(|o| o.name()).collect::<Vec<_>>(),
            profile.undoable()
        );
    }

    // --- 2. Step + undo round-trips for every invertible optimizer.
    println!("\nstep → undo round-trip error (max |Δ| on 4096 params, 5 steps):");
    let kinds = [
        OptimizerKind::Sgd {
            lr: 0.05,
            weight_decay: 0.01,
        },
        OptimizerKind::SgdMomentum {
            lr: 0.05,
            weight_decay: 0.01,
            momentum: 0.9,
            dampening: 0.0,
        },
        OptimizerKind::Adam {
            lr: 1e-2,
            weight_decay: 0.01,
        },
        OptimizerKind::AdamW {
            lr: 1e-2,
            weight_decay: 0.05,
        },
        OptimizerKind::Lamb {
            lr: 1e-2,
            weight_decay: 0.01,
        },
    ];
    for kind in kinds {
        let mut opt = kind.build();
        let mut rng = CounterRng::new(1, 0);
        let mut p = Tensor::randn([4096], 0.0, 1.0, &mut rng);
        for _ in 0..4 {
            let g = Tensor::randn([4096], 0.0, 0.1, &mut rng);
            opt.step(std::slice::from_mut(&mut p), std::slice::from_ref(&g));
        }
        let before = p.clone();
        let g = Tensor::randn([4096], 0.0, 0.1, &mut rng);
        opt.step(std::slice::from_mut(&mut p), std::slice::from_ref(&g));
        opt.undo(std::slice::from_mut(&mut p), std::slice::from_ref(&g))
            .unwrap();
        println!("  {:<14} {:.2e}", opt.name(), p.max_abs_diff(&before));
    }

    // AMSGrad cannot be undone (element-wise max destroys information).
    let mut ams = OptimizerKind::AmsGrad {
        lr: 1e-3,
        weight_decay: 0.0,
    }
    .build();
    let mut p = Tensor::ones([4]);
    let g = Tensor::full([4], 0.1);
    ams.step(std::slice::from_mut(&mut p), std::slice::from_ref(&g));
    assert_eq!(
        ams.undo_one(0, &mut p, &g),
        Err(UndoError::NotInvertible("AMSGrad"))
    );
    println!(
        "  AMSGrad        rejected: {:?}",
        UndoError::NotInvertible("AMSGrad")
    );

    // --- 3. The crash-consistency scenario (paper Fig. 4/5): a model's
    // update is interrupted after 2 of 4 parameter groups.
    let mut model = mlp("m", &[8, 16, 4], 9);
    let mut opt = OptimizerKind::SgdMomentum {
        lr: 0.1,
        weight_decay: 0.0,
        momentum: 0.9,
        dampening: 0.0,
    }
    .build();
    let ctx = StepCtx::new(0, 0);
    let y = model.forward(ctx, &Tensor::ones([4, 8]), Mode::Train);
    model.backward(ctx, &y.scale(0.05));
    let consistent = model.state();

    let mut tracker = UpdateTracker::new();
    for group in model.apply_update(opt.as_mut(), 0, 2) {
        tracker.mark(group); // …crash happens here, groups 2..4 never run
    }
    println!(
        "\ncrash mid-update: groups {:?} updated, model drifted by {:.2e}",
        tracker.updated(),
        model.state().max_abs_diff(&consistent)
    );
    repair_partial_update(&mut model, opt.as_mut(), &mut tracker).unwrap();
    println!(
        "after update-undo: drift {:.2e} (consistent again, no snapshot needed)",
        model.state().max_abs_diff(&consistent)
    );
    assert!(model.state().max_abs_diff(&consistent) < 1e-5);
    println!("OK");
}
