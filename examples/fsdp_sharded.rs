//! Sharded data parallelism with replicated shards (paper §8): SWIFT's
//! FSDP extension — each rank durably stores only its own parameter shard
//! plus a backup of its ring-neighbor's, gathers the rest transiently, and
//! recovers a lost machine's shards from their surviving copies.
//!
//! Run with: `cargo run --example fsdp_sharded`

use std::time::Duration;

use swift::core::{
    fsdp_join, fsdp_recover_survivor, fsdp_train_step, gather_full_params, FsdpWorker,
};
use swift::data::{shard_batch, BlobsDataset, Dataset};
use swift::dnn::models::mlp;
use swift::net::{Cluster, CommError, Topology};
use swift::optim::OptimizerKind;

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.0,
    momentum: 0.9,
    dampening: 0.0,
};

fn worker() -> FsdpWorker {
    FsdpWorker::new(mlp("fs", &[6, 32, 32, 3], 88), SGDM.build(), 3)
}

fn main() {
    let w = worker();
    let full = w.model.byte_size();
    let stored = w.stored_bytes(0);
    println!(
        "model {} B; each rank durably stores {} B ({}%) — shard + ring backup",
        full,
        stored,
        100 * stored / full
    );

    let iters = 10u64;
    let cluster = Cluster::new(Topology::uniform(3, 1));
    let fc = cluster.failure_controller();
    let kv = cluster.kv();
    let mut handles = Vec::new();
    for rank in 0..3usize {
        handles.push(cluster.spawn(rank, move |mut ctx| {
            let ds = BlobsDataset::new(8, 6, 3, 0.3);
            let mut w = worker();
            loop {
                if w.iteration >= iters {
                    gather_full_params(&mut ctx, &mut w, &[0, 1, 2]).unwrap();
                    return Some(w.model.state());
                }
                let b = ds.batch(w.iteration, 12);
                let s = shard_batch(&b, ctx.rank(), 3);
                let crash = (ctx.rank() == 1 && w.iteration == 5).then_some(2usize);
                match fsdp_train_step(&mut ctx, &mut w, &[0, 1, 2], &s.x, &s.y, 1.0 / 12.0, crash) {
                    Ok(_) => {}
                    Err(CommError::SelfKilled) => return None,
                    Err(e @ CommError::Protocol { .. }) => panic!("protocol bug: {e}"),
                    Err(CommError::PeerFailed { rank }) => {
                        let gen = ctx.comm.failure_controller().generation();
                        ctx.kv
                            .set(&format!("fsdp-ex/ack/{gen}/{}", ctx.rank()), "1");
                        ctx.kv
                            .wait_for("fsdp-ex/up", Duration::from_secs(30))
                            .unwrap();
                        fsdp_recover_survivor(&mut ctx, &mut w, rank, &[0, 1, 2]).unwrap();
                    }
                }
            }
        }));
    }

    // Driver: wait for the crash, gate revival on survivor acks.
    while !fc.any_dead() {
        std::thread::sleep(Duration::from_millis(1));
    }
    println!("machine 1 died mid-update at iteration 5 (its shards live on ranks 0 and 2)");
    for r in [0usize, 2] {
        kv.wait_for(&format!("fsdp-ex/ack/1/{r}"), Duration::from_secs(30))
            .unwrap();
    }
    fc.replace_machine(1);
    let mut rctx = cluster.respawn(1);
    let kv2 = kv.clone();
    let replacement = std::thread::spawn(move || {
        kv2.set("fsdp-ex/up", "1");
        let mut w = fsdp_join(
            &mut rctx,
            mlp("fs", &[6, 32, 32, 3], 88),
            SGDM.build(),
            3,
            &[0, 1, 2],
        )
        .unwrap();
        println!(
            "replacement rebuilt its shards from the surviving copies (iteration {})",
            w.iteration
        );
        let ds = BlobsDataset::new(8, 6, 3, 0.3);
        while w.iteration < iters {
            let b = ds.batch(w.iteration, 12);
            let s = shard_batch(&b, rctx.rank(), 3);
            fsdp_train_step(&mut rctx, &mut w, &[0, 1, 2], &s.x, &s.y, 1.0 / 12.0, None).unwrap();
        }
        gather_full_params(&mut rctx, &mut w, &[0, 1, 2]).unwrap();
        w.model.state()
    });

    let s0 = handles.remove(0).join().unwrap().unwrap();
    let _dead = handles.remove(0).join().unwrap();
    let s2 = handles.remove(0).join().unwrap().unwrap();
    let s1 = replacement.join().unwrap();
    println!(
        "after recovery, all three full-gathered states bitwise identical: {}",
        s0.bit_eq(&s1) && s0.bit_eq(&s2)
    );
    assert!(s0.bit_eq(&s1) && s0.bit_eq(&s2));
    println!("OK");
}
