//! Integration: logging-based recovery across crates — real pipeline
//! training with bubble-time logging, machine kill, checkpoint load, and
//! deterministic replay (paper §5–6).

use std::sync::Arc;

use swift::core::{ModelFn, PipelineScenario};
use swift::data::BlobsDataset;
use swift::dnn::models::mlp;
use swift::optim::OptimizerKind;
use swift::wal::{LogMode, LogPrecision};

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.0,
    momentum: 0.9,
    dampening: 0.0,
};

fn scenario(
    crash: Option<(usize, u64)>,
    d: usize,
    log_mode: LogMode,
    iters: u64,
) -> swift::core::ScenarioResult {
    scenario_precision(crash, d, log_mode, iters, LogPrecision::F32)
}

fn scenario_precision(
    crash: Option<(usize, u64)>,
    d: usize,
    log_mode: LogMode,
    iters: u64,
    log_precision: LogPrecision,
) -> swift::core::ScenarioResult {
    let model_fn: ModelFn = Arc::new(|| mlp("pl", &[8, 24, 24, 3], 43));
    let mut b = PipelineScenario::builder(model_fn, Arc::new(BlobsDataset::new(9, 8, 3, 0.3)))
        .stages(3)
        .opt(SGDM)
        .batch_size(8)
        .microbatches(4)
        .ckpt_interval(10)
        .iters(iters)
        .schedule(swift::pipeline::ScheduleKind::OneFOneB)
        .log_mode(log_mode)
        .log_precision(log_precision)
        .parallel_recovery(d);
    if let Some((m, it)) = crash {
        b = b.crash(m, it);
    }
    b.run()
}

#[test]
fn middle_stage_recovery_is_bitwise_exact() {
    let clean = scenario(None, 1, LogMode::BubbleAsync, 30);
    let failed = scenario(Some((1, 15)), 1, LogMode::BubbleAsync, 30);
    for s in 0..3 {
        assert!(
            clean.states[s].bit_eq(&failed.states[s]),
            "stage {s} must match failure-free bitwise (deterministic replay, §6)"
        );
    }
    // The replacement recorded its recovery phases in order.
    let phases: Vec<&str> = failed
        .recovery_trace
        .iter()
        .map(|(p, _)| p.as_str())
        .collect();
    assert_eq!(
        phases,
        [
            "checkpoint-loaded+consensus",
            "replay-done",
            "resume-fence-done"
        ]
    );
    assert!(clean.recovery_trace.is_empty());
    // Phase timestamps are cumulative.
    let times: Vec<f64> = failed.recovery_trace.iter().map(|&(_, t)| t).collect();
    assert!(times.windows(2).all(|w| w[1] >= w[0]));
}

#[test]
fn first_stage_recovery_regenerates_inputs() {
    // Recovering stage 0 exercises the dataset-determinism path: inputs
    // are regenerated, gradients come from the log.
    let clean = scenario(None, 1, LogMode::BubbleAsync, 24);
    let failed = scenario(Some((0, 12)), 1, LogMode::BubbleAsync, 24);
    for s in 0..3 {
        assert!(clean.states[s].bit_eq(&failed.states[s]), "stage {s}");
    }
}

#[test]
fn last_stage_recovery_regenerates_loss() {
    let clean = scenario(None, 1, LogMode::BubbleAsync, 24);
    let failed = scenario(Some((2, 12)), 1, LogMode::BubbleAsync, 24);
    for s in 0..3 {
        assert!(clean.states[s].bit_eq(&failed.states[s]), "stage {s}");
    }
}

#[test]
fn sync_logging_recovers_identically() {
    // The logging mode changes *when* records hit disk, never *what* is
    // recorded: recovery outcomes are identical.
    let bubble = scenario(Some((1, 12)), 1, LogMode::BubbleAsync, 24);
    let sync = scenario(Some((1, 12)), 1, LogMode::Sync, 24);
    let asyn = scenario(Some((1, 12)), 1, LogMode::Async, 24);
    for s in 0..3 {
        assert!(bubble.states[s].bit_eq(&sync.states[s]), "stage {s} sync");
        assert!(bubble.states[s].bit_eq(&asyn.states[s]), "stage {s} async");
    }
}

#[test]
fn parallel_recovery_tracks_sequential() {
    let clean = scenario(None, 1, LogMode::BubbleAsync, 30);
    let parallel = scenario(Some((1, 15)), 2, LogMode::BubbleAsync, 30);
    // Parallel replay reorders the micro-batch gradient sum — logically
    // equivalent, numerically within float reassociation error (§5.2).
    for s in 0..3 {
        let drift = clean.states[s].max_abs_diff(&parallel.states[s]);
        assert!(drift < 1e-3, "stage {s} drift {drift}");
    }
}

#[test]
fn crash_right_after_checkpoint_replays_nothing() {
    // Failure lands exactly on a checkpoint boundary: zero iterations to
    // replay; the replacement just loads and resumes.
    let clean = scenario(None, 1, LogMode::BubbleAsync, 24);
    let failed = scenario(Some((1, 10)), 1, LogMode::BubbleAsync, 24);
    for s in 0..3 {
        assert!(clean.states[s].bit_eq(&failed.states[s]), "stage {s}");
    }
}

#[test]
fn crash_long_after_checkpoint_replays_many() {
    // 9 iterations of replay (checkpoint at 10, crash at 19).
    let clean = scenario(None, 1, LogMode::BubbleAsync, 26);
    let failed = scenario(Some((1, 19)), 1, LogMode::BubbleAsync, 26);
    for s in 0..3 {
        assert!(clean.states[s].bit_eq(&failed.states[s]), "stage {s}");
    }
}

#[test]
fn f16_logging_recovers_with_bounded_quantization_drift() {
    // Half-precision logs halve the volume (§8); replayed activations are
    // quantized, so the recovered state is no longer bitwise but must stay
    // within the f16 rounding envelope of the failure-free trajectory.
    // The crash must land while gradients are still non-zero (an
    // early-training window on a noisy task), else the replayed updates
    // are no-ops and quantization is invisible.
    let hard = |crash: Option<(usize, u64)>, prec| {
        let model_fn: swift::core::ModelFn = Arc::new(|| mlp("plq", &[8, 24, 24, 6], 47));
        let mut b = PipelineScenario::builder(model_fn, Arc::new(BlobsDataset::new(13, 8, 6, 1.0)))
            .stages(3)
            .opt(OptimizerKind::SgdMomentum {
                lr: 0.02,
                weight_decay: 0.0,
                momentum: 0.9,
                dampening: 0.0,
            })
            .batch_size(8)
            .microbatches(4)
            .ckpt_interval(4)
            .iters(12)
            .schedule(swift::pipeline::ScheduleKind::OneFOneB)
            .log_mode(LogMode::BubbleAsync)
            .log_precision(prec);
        if let Some((m, it)) = crash {
            b = b.crash(m, it);
        }
        b.run()
    };
    let clean = hard(None, LogPrecision::F32);
    let failed = hard(Some((1, 6)), LogPrecision::F16);
    for s in 0..3 {
        let drift = clean.states[s].max_abs_diff(&failed.states[s]);
        assert!(drift < 5e-2, "stage {s} drift {drift}");
    }
    assert!(
        !clean.states[1].bit_eq(&failed.states[1]),
        "f16 replay should not be bitwise identical while gradients are live"
    );
    // Control: the same crash with F32 logs *is* bitwise.
    let exact = hard(Some((1, 6)), LogPrecision::F32);
    assert!(clean.states[1].bit_eq(&exact.states[1]));
}

#[test]
fn gpipe_schedule_recovery_is_bitwise_exact() {
    // The logging/replay machinery is schedule-agnostic (§2.1: "our
    // approach is not limited to 1F1B"): the same failure under GPipe
    // recovers bitwise too.
    let run = |crash: Option<(usize, u64)>| {
        let model_fn: swift::core::ModelFn = Arc::new(|| mlp("gp", &[8, 24, 24, 3], 43));
        let mut b = PipelineScenario::builder(model_fn, Arc::new(BlobsDataset::new(9, 8, 3, 0.3)))
            .stages(3)
            .opt(SGDM)
            .batch_size(8)
            .microbatches(4)
            .ckpt_interval(10)
            .iters(24)
            .schedule(swift::pipeline::ScheduleKind::GPipe)
            .log_mode(LogMode::BubbleAsync)
            .log_precision(LogPrecision::F32);
        if let Some((m, it)) = crash {
            b = b.crash(m, it);
        }
        b.run()
    };
    let clean = run(None);
    let failed = run(Some((1, 13)));
    for s in 0..3 {
        assert!(clean.states[s].bit_eq(&failed.states[s]), "stage {s}");
    }
}

#[test]
fn adam_pipeline_recovery_is_bitwise_exact() {
    // Adam's moments are part of the checkpoint and the replayed updates;
    // recovery must restore them exactly too.
    let run = |crash: Option<(usize, u64)>| {
        let model_fn: swift::core::ModelFn = Arc::new(|| mlp("ad", &[8, 24, 24, 3], 51));
        let mut b = PipelineScenario::builder(model_fn, Arc::new(BlobsDataset::new(9, 8, 3, 0.3)))
            .stages(3)
            .opt(OptimizerKind::Adam {
                lr: 5e-3,
                weight_decay: 0.01,
            })
            .batch_size(8)
            .microbatches(4)
            .ckpt_interval(10)
            .iters(24)
            .schedule(swift::pipeline::ScheduleKind::OneFOneB)
            .log_mode(LogMode::BubbleAsync)
            .log_precision(LogPrecision::F32);
        if let Some((m, it)) = crash {
            b = b.crash(m, it);
        }
        b.run()
    };
    let clean = run(None);
    let failed = run(Some((1, 13)));
    for s in 0..3 {
        assert!(clean.states[s].bit_eq(&failed.states[s]), "stage {s}");
    }
}

#[test]
fn transformer_with_dropout_recovers_bitwise() {
    // The full §6 determinism story end-to-end: a ViT-tiny pipeline with
    // *active dropout* (counter-based masks keyed by iteration/microbatch/
    // layer) is killed mid-training; the replayed micro-batches regenerate
    // the identical masks and the recovered state is bitwise equal.
    use swift::dnn::models::vit_tiny;
    let run = |crash: Option<(usize, u64)>| {
        let model_fn: swift::core::ModelFn = Arc::new(|| vit_tiny("vt", 4, 6, 8, 3, 3, 0.1, 71));
        let mut b =
            PipelineScenario::builder(model_fn, Arc::new(BlobsDataset::new(33, 24, 3, 0.3)))
                .stages(3)
                .opt(SGDM)
                .batch_size(8)
                .microbatches(4)
                .ckpt_interval(4)
                .iters(10)
                .schedule(swift::pipeline::ScheduleKind::OneFOneB)
                .log_mode(LogMode::BubbleAsync)
                .log_precision(LogPrecision::F32);
        if let Some((m, it)) = crash {
            b = b.crash(m, it);
        }
        b.run()
    };
    let clean = run(None);
    let failed = run(Some((1, 6)));
    for s in 0..3 {
        assert!(
            clean.states[s].bit_eq(&failed.states[s]),
            "stage {s}: dropout masks must regenerate identically during replay"
        );
    }
}
