//! Recovery-timeline reconstruction on live crash scenarios: injected
//! failures must produce per-incident breakdowns whose phases are
//! complete, contiguous (non-overlapping), and structurally
//! deterministic. CI runs this binary under `RAYON_NUM_THREADS=1,2,8`
//! (the `obs` job); timestamps vary with scheduling, so determinism is
//! asserted on the *structure* — incidents, epochs, failed ranks and
//! phase sequences — never on durations.

use std::sync::{Arc, Mutex};

use swift::core::{DpScenario, PipelineScenario};
use swift::data::BlobsDataset;
use swift::dnn::models::mlp;
use swift::obs::{reconstruct, Epoch, MemoryRecorder, Phase, Rank, Timeline};

/// The span recorder is process-global; scenario runs from concurrent
/// tests would interleave their events. Every test serializes on this.
static RECORDER_SLOT: Mutex<()> = Mutex::new(());

fn record_dp_crash() -> (Timeline, u64) {
    let _slot = RECORDER_SLOT.lock().unwrap();
    let rec = Arc::new(MemoryRecorder::new());
    swift::obs::install(rec.clone());
    let result = DpScenario::builder(
        Arc::new(|| mlp("tl-dp", &[6, 16, 16, 3], 11)),
        Arc::new(BlobsDataset::new(3, 6, 3, 0.3)),
    )
    .machines(3)
    .batch_size(12)
    .iters(8)
    // A tiny bucket cap splits the 6 groups into buckets {4,5} {3} {2}
    // {1} {0}; the victim dies after staging 5 groups (everything but
    // {0}), so four buckets fold and apply on both survivors while the
    // last strands them mid-update. Crashing at the final group keeps
    // the run deterministic: the survivor's own sends are all complete
    // before the failure can be declared, so no send races the epoch.
    .bucket_cap_bytes(256)
    .crash(1, 4, 5)
    .run();
    swift::obs::uninstall();
    assert!(result.recovered);
    let undone = rec.counter(swift::obs::Counter::UndoneUpdates);
    (reconstruct(&rec.events()).expect("valid timeline"), undone)
}

fn record_pipeline_crash(parallel_recovery: usize) -> Timeline {
    let _slot = RECORDER_SLOT.lock().unwrap();
    let rec = Arc::new(MemoryRecorder::new());
    swift::obs::install(rec.clone());
    let result = PipelineScenario::builder(
        Arc::new(|| mlp("tl-pipe", &[6, 16, 16, 3], 11)),
        Arc::new(BlobsDataset::new(3, 6, 3, 0.3)),
    )
    .stages(3)
    .batch_size(8)
    .microbatches(4)
    .ckpt_interval(4)
    .iters(10)
    .crash(1, 6)
    .parallel_recovery(parallel_recovery)
    .run();
    swift::obs::uninstall();
    assert!(result.recovered);
    reconstruct(&rec.events()).expect("valid timeline")
}

/// The structural fingerprint of a timeline: everything that must be
/// identical run-to-run (and across thread counts), timestamps excluded.
fn shape(t: &Timeline) -> Vec<(Epoch, Vec<Rank>, bool, Vec<Phase>)> {
    t.incidents
        .iter()
        .map(|inc| {
            (
                inc.epoch,
                inc.failed.clone(),
                inc.aborted,
                inc.segments.iter().map(|s| s.phase).collect(),
            )
        })
        .collect()
}

/// Every non-aborted incident carries the full phase set for its
/// strategy and its segments tile the incident without gaps or overlap.
fn assert_complete_and_contiguous(t: &Timeline, sync: Phase) {
    assert!(!t.incidents.is_empty(), "crash produced no incident");
    for inc in &t.incidents {
        if inc.aborted {
            continue;
        }
        for need in [
            Phase::Detect,
            Phase::Undo,
            Phase::Fence,
            sync,
            Phase::Resume,
        ] {
            assert!(
                inc.segment(need).is_some(),
                "epoch {}: phase `{need}` missing",
                inc.epoch
            );
        }
        for w in inc.segments.windows(2) {
            assert_eq!(
                w[0].end_ns, w[1].start_ns,
                "epoch {}: `{}` and `{}` do not tile",
                inc.epoch, w[0].phase, w[1].phase
            );
        }
        // Phase totals must account for the whole incident: the sum of
        // segment durations equals the detect-to-resume span (§6's
        // recovery-time breakdown is exhaustive, not a sample).
        let sum: u64 = inc.segments.iter().map(|s| s.duration_ns()).sum();
        assert_eq!(
            sum,
            inc.total_ns(),
            "epoch {}: phases do not sum",
            inc.epoch
        );
    }
}

#[test]
fn dp_crash_breakdown_is_complete_and_contiguous() {
    let (t, undone) = record_dp_crash();
    assert_complete_and_contiguous(&t, Phase::Broadcast);
    let inc = &t.incidents[0];
    assert_eq!(inc.epoch, Epoch::new(1));
    assert_eq!(inc.failed, vec![1usize]);
    // The victim dies after staging buckets {4,5} {3} {2} {1}: both
    // survivors apply those 5 groups, strand on bucket {0}, and undo
    // the partial update (2 ranks × 5 groups).
    assert_eq!(undone, 10);
}

#[test]
fn pipeline_crash_breakdown_is_complete_and_contiguous() {
    let t = record_pipeline_crash(2);
    assert_complete_and_contiguous(&t, Phase::Replay);
    let inc = &t.incidents[0];
    assert_eq!(inc.epoch, Epoch::new(1));
    assert_eq!(inc.failed, vec![1usize]);
}

#[test]
fn pipeline_solo_replay_still_carries_a_fence_segment() {
    // With d = 1 the replacement replays alone and the replay-group
    // fence is skipped, but the breakdown must still carry the (empty)
    // fence phase so per-incident accounting stays comparable.
    let t = record_pipeline_crash(1);
    assert_complete_and_contiguous(&t, Phase::Replay);
}

#[test]
fn breakdown_structure_is_deterministic_across_runs() {
    // Same scenario, repeated runs in one process: the structural
    // fingerprint must not change. CI repeats this whole binary under
    // RAYON_NUM_THREADS=1,2,8, extending the guarantee across thread
    // counts.
    let (first, _) = record_dp_crash();
    let (second, _) = record_dp_crash();
    assert_eq!(shape(&first), shape(&second));

    let first = record_pipeline_crash(2);
    let second = record_pipeline_crash(2);
    assert_eq!(shape(&first), shape(&second));
}
