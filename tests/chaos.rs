//! Chaos testing: randomized failure injection across the scenario space.
//!
//! Deterministically seeded sweeps over crash coordinates (which machine,
//! which iteration, how deep into the update) — every combination must
//! recover to the failure-free trajectory. This is the breadth companion
//! to the targeted integration tests.

use std::sync::Arc;

use swift::core::{
    dp_train_step, replication_join_supervised, replication_recover_supervised, DpScenario,
    DpWorker, ModelFn, PipelineScenario,
};
use swift::data::{shard_batch, BlobsDataset, Dataset};
use swift::dnn::models::mlp;
use swift::dnn::ModelState;
use swift::net::{
    failure_epoch, failure_state, Cluster, CommError, CrashTrigger, FaultPlan, HeartbeatConfig,
    Rank, RetryPolicy, Topology, WorkerCtx,
};
use swift::optim::OptimizerKind;
use swift::tensor::CounterRng;
use swift::wal::{LogMode, LogPrecision};

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.001,
    momentum: 0.9,
    dampening: 0.0,
};

#[test]
fn dp_random_crash_points_all_recover() {
    let iters = 14u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-dp", &[6, 16, 12, 3], 97)) };
    let run = |crash: Option<(usize, u64, usize)>| {
        let mut b = DpScenario::builder(model_fn(), Arc::new(BlobsDataset::new(41, 6, 3, 0.4)))
            .machines(3)
            .opt(SGDM)
            .batch_size(12)
            .iters(iters);
        if let Some((m, it, g)) = crash {
            b = b.crash(m, it, g);
        }
        b.run()
    };
    let clean = run(None);
    let mut rng = CounterRng::new(0xC405, 0);
    for trial in 0..6 {
        let machine = rng.below(3) as usize;
        let iteration = 1 + rng.below(iters - 2);
        let after_groups = 1 + rng.below(5) as usize; // 6 groups in the model
        let failed = run(Some((machine, iteration, after_groups)));
        assert!(
            failed.states[0].bit_eq(&failed.states[1])
                && failed.states[0].bit_eq(&failed.states[2]),
            "trial {trial} (m{machine}, it{iteration}, g{after_groups}): replicas diverged"
        );
        let drift = clean.states[0].max_abs_diff(&failed.states[0]);
        assert!(
            drift < 1e-3,
            "trial {trial} (m{machine}, it{iteration}, g{after_groups}): drift {drift}"
        );
    }
}

#[test]
fn pipeline_random_crash_points_all_recover_bitwise() {
    let iters = 16u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-pp", &[8, 20, 20, 20, 3], 98)) };
    let run = |crash: Option<(usize, u64)>, d| {
        let mut b =
            PipelineScenario::builder(model_fn(), Arc::new(BlobsDataset::new(43, 8, 3, 0.4)))
                .stages(4)
                .opt(SGDM)
                .batch_size(8)
                .microbatches(4)
                .ckpt_interval(5)
                .iters(iters)
                .schedule(swift::pipeline::ScheduleKind::OneFOneB)
                .log_mode(LogMode::BubbleAsync)
                .log_precision(LogPrecision::F32)
                .parallel_recovery(d);
        if let Some((m, it)) = crash {
            b = b.crash(m, it);
        }
        b.run()
    };
    let clean = run(None, 1);
    let mut rng = CounterRng::new(0xC406, 0);
    for trial in 0..5 {
        let machine = rng.below(4) as usize;
        let iteration = 1 + rng.below(iters - 2);
        let failed = run(Some((machine, iteration)), 1);
        for s in 0..4 {
            assert!(
                clean.states[s].bit_eq(&failed.states[s]),
                "trial {trial} (m{machine}, it{iteration}): stage {s} not bitwise"
            );
        }
    }
}

#[test]
fn dp_message_chaos_converges_bit_identically() {
    // A seeded adversarial fault plan — per-link delay/jitter, reordering,
    // transient drops (with retransmission), duplicates — must be fully
    // absorbed by the sequence-numbered transport: training converges
    // bit-identically to the fault-free run.
    let iters = 10u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-msg-dp", &[6, 14, 3], 96)) };
    let run = |faults: Option<FaultPlan>| {
        let mut b = DpScenario::builder(model_fn(), Arc::new(BlobsDataset::new(40, 6, 3, 0.4)))
            .machines(3)
            .opt(SGDM)
            .batch_size(12)
            .iters(iters);
        if let Some(plan) = faults {
            b = b.faults(plan);
        }
        b.run()
    };
    let clean = run(None);
    let chaotic = run(Some(FaultPlan::chaos(0xD15C0)));
    for r in 0..3 {
        assert!(
            clean.states[r].bit_eq(&chaotic.states[r]),
            "rank {r} diverged under message chaos"
        );
    }
    let stats = chaotic.fault_stats.expect("injector stats");
    assert!(stats.delayed > 0, "chaos plan never delayed a message");
    assert!(
        stats.reordered + stats.dropped + stats.duplicated > 0,
        "chaos plan never perturbed ordering: {stats:?}"
    );
    assert_eq!(
        stats.retransmitted, stats.dropped,
        "every drop must be retransmitted"
    );
}

#[test]
fn pipeline_message_chaos_converges_bit_identically() {
    // Same adversary against the pipeline: activation/gradient traffic is
    // delayed, reordered, dropped and duplicated, yet the run is bitwise
    // identical to fault-free.
    let iters = 8u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-msg-pp", &[8, 18, 18, 3], 95)) };
    let run = |faults: Option<FaultPlan>| {
        let mut b =
            PipelineScenario::builder(model_fn(), Arc::new(BlobsDataset::new(46, 8, 3, 0.4)))
                .stages(3)
                .opt(SGDM)
                .batch_size(8)
                .microbatches(4)
                .ckpt_interval(3)
                .iters(iters)
                .schedule(swift::pipeline::ScheduleKind::OneFOneB)
                .log_mode(LogMode::BubbleAsync)
                .log_precision(LogPrecision::F32);
        if let Some(plan) = faults {
            b = b.faults(plan);
        }
        b.run()
    };
    let clean = run(None);
    let chaotic = run(Some(FaultPlan::chaos(0xD15C1)));
    for s in 0..3 {
        assert!(
            clean.states[s].bit_eq(&chaotic.states[s]),
            "stage {s} diverged under message chaos"
        );
    }
    let stats = chaotic.fault_stats.expect("injector stats");
    assert!(stats.delayed > 0);
}

/// The data-parallel training loop used by the cascading-failure test:
/// detection, acknowledgment, and recovery all run off the declared
/// failure state — the only injector interaction is `note_iteration`
/// (progress reporting for the scripted crash trigger).
fn cascade_train(
    ctx: &mut WorkerCtx,
    w: &mut DpWorker,
    iters: u64,
) -> Result<ModelState, CommError> {
    let group: Vec<Rank> = (0..4).collect();
    let ds = BlobsDataset::new(33, 6, 3, 0.4);
    loop {
        if w.iteration >= iters {
            return Ok(w.model.state());
        }
        ctx.note_iteration(w.iteration)?;
        let b = ds.batch(w.iteration, 12);
        let s = shard_batch(&b, ctx.rank(), 4);
        match dp_train_step(ctx, w, &group, &s.x, &s.y, 1.0 / 12.0, None) {
            Ok(_) => {}
            Err(CommError::PeerFailed { .. }) => {
                let epoch = failure_epoch(&ctx.kv);
                ctx.kv.set(&format!("casc/ack/{epoch}/{}", ctx.rank()), "1");
                replication_recover_supervised(ctx, w, &group, &RetryPolicy::recovery())?;
            }
            Err(e) => return Err(e),
        }
    }
}

#[test]
fn cascading_failure_mid_recovery_converges() {
    // Machine 1 dies via a crash trigger at iteration 3. While the
    // survivors are mid-recovery (acked, inside the supervised fence),
    // machine 2 is killed too — the cascade of paper Appendix B. The
    // heartbeat detector declares it, every fence wait aborts, and the
    // supervisor restarts recovery under the new epoch with both
    // replacements. No production path consults injector ground truth;
    // the driver itself waits on *declared* state.
    let iters = 10u64;
    let run = |cascade: bool| -> Vec<ModelState> {
        let cluster = Cluster::new(Topology::uniform(4, 1));
        let fc = cluster.failure_controller();
        let kv = cluster.kv();
        if cascade {
            cluster.install_faults(FaultPlan::new(7).with_crash(CrashTrigger::AtIteration {
                rank: 1,
                iteration: 3,
            }));
            cluster.enable_heartbeats(HeartbeatConfig::default());
        }
        let mut handles = Vec::new();
        for rank in 0..4usize {
            handles.push(cluster.spawn(rank, move |mut ctx| {
                let mut w = DpWorker::new(mlp("casc", &[6, 14, 3], 31), SGDM.build());
                match cascade_train(&mut ctx, &mut w, iters) {
                    Ok(state) => Some(state),
                    Err(CommError::SelfKilled) => {
                        // Fail-stop: the (simulated) process is gone. The
                        // exit marker lets the driver sequence the respawn.
                        ctx.kv.set(&format!("casc/dead/{}", ctx.rank()), "1");
                        None
                    }
                    Err(e) => panic!("rank {}: {e}", ctx.rank()),
                }
            }));
        }
        let mut replacements = Vec::new();
        if cascade {
            let p = RetryPolicy::poll();
            // First failure: declared, and every survivor acked under
            // epoch 1 — so all of them are inside supervised recovery.
            assert!(
                p.wait_until(|| failure_state(&kv).1.contains(&1)),
                "failure 1 undeclared"
            );
            for r in [0usize, 2, 3] {
                assert!(
                    p.wait_until(|| kv.get(&format!("casc/ack/1/{r}")).is_some()),
                    "rank {r} never acked"
                );
            }
            // The cascade: a second machine dies mid-recovery.
            fc.kill_machine(2);
            assert!(
                p.wait_until(|| kv.get("casc/dead/2").is_some()),
                "victim 2 never unwound"
            );
            assert!(
                p.wait_until(|| failure_state(&kv).1.contains(&2)),
                "cascade never declared (heartbeat detector)"
            );
            for mach in [1usize, 2] {
                assert!(p.wait_until(|| kv.get(&format!("casc/dead/{mach}")).is_some()));
                fc.replace_machine(mach);
                let mut rctx = cluster.respawn(mach);
                replacements.push(std::thread::spawn(move || {
                    let (mut w, _report) = replication_join_supervised(
                        &mut rctx,
                        &|| mlp("casc", &[6, 14, 3], 31),
                        &|| SGDM.build(),
                        &[0, 1, 2, 3],
                        &RetryPolicy::recovery(),
                    )
                    .expect("replacement join failed");
                    cascade_train(&mut rctx, &mut w, iters).expect("replacement training failed")
                }));
            }
        }
        let mut states: Vec<Option<ModelState>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (h, mach) in replacements.into_iter().zip([1usize, 2]) {
            states[mach] = Some(h.join().unwrap());
        }
        cluster.stop_heartbeat_monitor();
        states
            .into_iter()
            .map(|s| s.expect("missing state"))
            .collect()
    };
    let clean = run(false);
    let recovered = run(true);
    for r in 1..4 {
        assert!(
            recovered[0].bit_eq(&recovered[r]),
            "rank {r} diverged from rank 0 after cascading recovery"
        );
    }
    for r in 0..4 {
        let drift = clean[r].max_abs_diff(&recovered[r]);
        assert!(drift < 1e-3, "rank {r} drift {drift} vs fault-free");
    }
}

#[test]
fn pipeline_random_parallel_recovery_tracks_sequential() {
    let iters = 12u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-pr", &[8, 20, 20, 3], 99)) };
    let run = |crash: Option<(usize, u64)>, d| {
        let mut b =
            PipelineScenario::builder(model_fn(), Arc::new(BlobsDataset::new(45, 8, 3, 0.4)))
                .stages(3)
                .opt(SGDM)
                .batch_size(8)
                .microbatches(4)
                .ckpt_interval(4)
                .iters(iters)
                .schedule(swift::pipeline::ScheduleKind::OneFOneB)
                .log_mode(LogMode::BubbleAsync)
                .log_precision(LogPrecision::F32)
                .parallel_recovery(d);
        if let Some((m, it)) = crash {
            b = b.crash(m, it);
        }
        b.run()
    };
    let clean = run(None, 1);
    let mut rng = CounterRng::new(0xC407, 0);
    for trial in 0..3 {
        let machine = rng.below(3) as usize;
        let iteration = 1 + rng.below(iters - 2);
        let d = 2 + rng.below(2) as usize; // 2 or 3 replicas
        let failed = run(Some((machine, iteration)), d);
        for s in 0..3 {
            let drift = clean.states[s].max_abs_diff(&failed.states[s]);
            assert!(
                drift < 1e-3,
                "trial {trial} (m{machine}, it{iteration}, d{d}): stage {s} drift {drift}"
            );
        }
    }
}

#[test]
fn traced_recovery_has_no_protocol_races() {
    // A full failure + supervised recovery with the fabric tracer
    // installed: rank 1 crashes at iteration 3, the heartbeat detector
    // declares it, the survivors recover through the supervised fence
    // and a respawned replacement joins, then training finishes. The
    // recorded vector-clocked trace must replay clean through the
    // swift-verify happens-before checker: no stale-epoch deliveries, no
    // receive racing an epoch bump, and every fence exit happening-after
    // all participants' purges.
    let iters = 8u64;
    let cluster = Cluster::new(Topology::uniform(4, 1));
    let tracer = cluster.enable_tracing();
    let fc = cluster.failure_controller();
    let kv = cluster.kv();
    cluster.install_faults(FaultPlan::new(11).with_crash(CrashTrigger::AtIteration {
        rank: 1,
        iteration: 3,
    }));
    cluster.enable_heartbeats(HeartbeatConfig::default());
    let mut handles = Vec::new();
    for rank in 0..4usize {
        handles.push(cluster.spawn(rank, move |mut ctx| {
            let mut w = DpWorker::new(mlp("traced", &[6, 14, 3], 31), SGDM.build());
            match cascade_train(&mut ctx, &mut w, iters) {
                Ok(state) => Some(state),
                Err(CommError::SelfKilled) => {
                    ctx.kv.set(&format!("casc/dead/{}", ctx.rank()), "1");
                    None
                }
                Err(e) => panic!("rank {}: {e}", ctx.rank()),
            }
        }));
    }
    let p = RetryPolicy::poll();
    assert!(
        p.wait_until(|| kv.get("casc/dead/1").is_some()),
        "victim never unwound"
    );
    assert!(
        p.wait_until(|| failure_state(&kv).1.contains(&1)),
        "failure never declared"
    );
    fc.replace_machine(1);
    let mut rctx = cluster.respawn(1);
    let replacement = std::thread::spawn(move || {
        let (mut w, _report) = replication_join_supervised(
            &mut rctx,
            &|| mlp("traced", &[6, 14, 3], 31),
            &|| SGDM.build(),
            &[0, 1, 2, 3],
            &RetryPolicy::recovery(),
        )
        .expect("replacement join failed");
        cascade_train(&mut rctx, &mut w, iters).expect("replacement training failed")
    });
    let states: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let rstate = replacement.join().unwrap();
    cluster.stop_heartbeat_monitor();
    assert!(
        states[0].as_ref().expect("rank 0 state").bit_eq(&rstate),
        "replicas diverged after recovery"
    );

    let trace = tracer.snapshot();
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e.kind, swift::net::EventKind::EpochBump { .. })),
        "trace must cover the recovery epoch bump"
    );
    let violations = swift_verify::race::check_trace(&trace);
    assert!(
        violations.is_empty(),
        "protocol races in a {}-event trace: {violations:?}",
        trace.events.len()
    );
}
