//! Chaos testing: randomized failure injection across the scenario space.
//!
//! Deterministically seeded sweeps over crash coordinates (which machine,
//! which iteration, how deep into the update) — every combination must
//! recover to the failure-free trajectory. This is the breadth companion
//! to the targeted integration tests.

use std::sync::Arc;

use swift::core::{
    run_dp_scenario, run_pipeline_scenario, DpScenario, ModelFn, PipelineScenario,
};
use swift::data::BlobsDataset;
use swift::dnn::models::mlp;
use swift::optim::OptimizerKind;
use swift::tensor::CounterRng;
use swift::wal::{LogMode, LogPrecision};

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.001,
    momentum: 0.9,
    dampening: 0.0,
};

#[test]
fn dp_random_crash_points_all_recover() {
    let iters = 14u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-dp", &[6, 16, 12, 3], 97)) };
    let run = |crash| {
        run_dp_scenario(DpScenario {
            machines: 3,
            model_fn: model_fn(),
            opt: SGDM,
            dataset: Arc::new(BlobsDataset::new(41, 6, 3, 0.4)),
            batch_size: 12,
            iters,
            crash,
        })
    };
    let clean = run(None);
    let mut rng = CounterRng::new(0xC405, 0);
    for trial in 0..6 {
        let machine = rng.below(3) as usize;
        let iteration = 1 + rng.below(iters - 2);
        let after_groups = 1 + rng.below(5) as usize; // 6 groups in the model
        let failed = run(Some((machine, iteration, after_groups)));
        assert!(
            failed.states[0].bit_eq(&failed.states[1])
                && failed.states[0].bit_eq(&failed.states[2]),
            "trial {trial} (m{machine}, it{iteration}, g{after_groups}): replicas diverged"
        );
        let drift = clean.states[0].max_abs_diff(&failed.states[0]);
        assert!(
            drift < 1e-3,
            "trial {trial} (m{machine}, it{iteration}, g{after_groups}): drift {drift}"
        );
    }
}

#[test]
fn pipeline_random_crash_points_all_recover_bitwise() {
    let iters = 16u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-pp", &[8, 20, 20, 20, 3], 98)) };
    let run = |crash, d| {
        run_pipeline_scenario(PipelineScenario {
            stages: 4,
            model_fn: model_fn(),
            opt: SGDM,
            dataset: Arc::new(BlobsDataset::new(43, 8, 3, 0.4)),
            batch_size: 8,
            microbatches: 4,
            ckpt_interval: 5,
            iters,
            schedule: swift::pipeline::ScheduleKind::OneFOneB,
            log_mode: LogMode::BubbleAsync,
            log_precision: LogPrecision::F32,
            crash,
            parallel_recovery: d,
        })
    };
    let clean = run(None, 1);
    let mut rng = CounterRng::new(0xC406, 0);
    for trial in 0..5 {
        let machine = rng.below(4) as usize;
        let iteration = 1 + rng.below(iters - 2);
        let failed = run(Some((machine, iteration)), 1);
        for s in 0..4 {
            assert!(
                clean.states[s].bit_eq(&failed.states[s]),
                "trial {trial} (m{machine}, it{iteration}): stage {s} not bitwise"
            );
        }
    }
}

#[test]
fn pipeline_random_parallel_recovery_tracks_sequential() {
    let iters = 12u64;
    let model_fn = || -> ModelFn { Arc::new(|| mlp("chaos-pr", &[8, 20, 20, 3], 99)) };
    let run = |crash, d| {
        run_pipeline_scenario(PipelineScenario {
            stages: 3,
            model_fn: model_fn(),
            opt: SGDM,
            dataset: Arc::new(BlobsDataset::new(45, 8, 3, 0.4)),
            batch_size: 8,
            microbatches: 4,
            ckpt_interval: 4,
            iters,
            schedule: swift::pipeline::ScheduleKind::OneFOneB,
            log_mode: LogMode::BubbleAsync,
            log_precision: LogPrecision::F32,
            crash,
            parallel_recovery: d,
        })
    };
    let clean = run(None, 1);
    let mut rng = CounterRng::new(0xC407, 0);
    for trial in 0..3 {
        let machine = rng.below(3) as usize;
        let iteration = 1 + rng.below(iters - 2);
        let d = 2 + rng.below(2) as usize; // 2 or 3 replicas
        let failed = run(Some((machine, iteration)), d);
        for s in 0..3 {
            let drift = clean.states[s].max_abs_diff(&failed.states[s]);
            assert!(
                drift < 1e-3,
                "trial {trial} (m{machine}, it{iteration}, d{d}): stage {s} drift {drift}"
            );
        }
    }
}
