//! Integration: machines hosting *multiple* pipeline stages — the paper's
//! actual deployment shape (8 stages per DGX machine) and its Fig. 6b
//! recovery scenario.
//!
//! With two stages per machine, only the machine-crossing edge is logged
//! (§5.1: intra-machine GPU-to-GPU traffic is not); when a machine dies,
//! its two stages are recovered *jointly*: the inner edge replays live
//! between the two replacement workers, the outer edges come from the
//! surviving machines' logs.

use std::sync::Arc;
use std::time::Duration;

use swift::ckpt::CheckpointManager;
use swift::core::{
    pipeline_maybe_checkpoint, pipeline_on_failure_survivor, pipeline_replay,
    pipeline_train_iteration, recovery_fence, DatasetSource, PipelineJob, PipelineWorker,
    RecoveryRole,
};
use swift::data::BlobsDataset;
use swift::dnn::models::{mlp, split_stages};
use swift::dnn::{ModelState, Sequential};
use swift::net::{Cluster, CommError, Rank, Topology};
use swift::obs::Epoch;
use swift::optim::OptimizerKind;
use swift::pipeline::ScheduleKind;
use swift::store::{BlobStore, GlobalStore};
use swift::wal::{GroupMap, LogMode, Logger, WalReader};

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.0,
    momentum: 0.9,
    dampening: 0.0,
};

const STAGES: usize = 4; // 2 machines × 2 stages

fn job() -> PipelineJob {
    PipelineJob {
        stage_ranks: (0..STAGES).collect(),
        microbatches: 4,
        kind: ScheduleKind::OneFOneB,
        ckpt_interval: 5,
        batch_size: 8,
    }
}

fn stage_model(stage: usize) -> Sequential {
    split_stages(mlp("mr", &[8, 16, 16, 16, 3], 61), STAGES)
        .into_iter()
        .nth(stage)
        .unwrap()
}

fn make_worker(
    stage: usize,
    topo: &Topology,
    rank: Rank,
    global: &GlobalStore,
    machine_store: BlobStore,
) -> PipelineWorker {
    PipelineWorker {
        stage,
        model: stage_model(stage),
        opt: SGDM.build(),
        iteration: 0,
        logger: Logger::new(
            LogMode::BubbleAsync,
            topo.clone(),
            GroupMap::singletons(topo.num_machines()),
            machine_store,
        ),
        ckpt: CheckpointManager::new(global.blob().clone(), rank),
        global: global.clone(),
        last_grads: Vec::new(),
    }
}

fn data_source() -> DatasetSource {
    DatasetSource {
        dataset: Arc::new(BlobsDataset::new(29, 8, 3, 0.3)),
        batch_size: 8,
        microbatches: 4,
    }
}

fn reference(iters: u64) -> Vec<ModelState> {
    let global = GlobalStore::new_temp().unwrap();
    Cluster::run_all(Topology::uniform(2, 2), move |mut ctx| {
        let topo = ctx.topology.clone();
        let store = BlobStore::new_temp(&format!("mrref-{}", ctx.rank())).unwrap();
        let mut w = make_worker(ctx.rank(), &topo, ctx.rank(), &global, store);
        let data = data_source();
        let job = job();
        for _ in 0..iters {
            pipeline_train_iteration(&mut ctx, &job, &mut w, &data).unwrap();
            pipeline_maybe_checkpoint(&job, &mut w).unwrap();
        }
        w.model.state()
    })
}

#[test]
fn only_machine_crossing_edges_are_logged() {
    // Ranks 0,1 on machine 0; ranks 2,3 on machine 1. The only logged
    // edges are 1→2 (activations) and 2→1 (gradients).
    let global = GlobalStore::new_temp().unwrap();
    let g2 = global.clone();
    let results = Cluster::run_all(Topology::uniform(2, 2), move |mut ctx| {
        let topo = ctx.topology.clone();
        let store = BlobStore::new_temp(&format!("mrlog-{}", ctx.rank())).unwrap();
        let mut w = make_worker(ctx.rank(), &topo, ctx.rank(), &g2, store);
        let data = data_source();
        let job = job();
        for _ in 0..3 {
            pipeline_train_iteration(&mut ctx, &job, &mut w, &data).unwrap();
        }
        w.logger.flush();
        w.logger.store().list("wal/").unwrap()
    });
    assert!(
        results[0].is_empty(),
        "0→1 is intra-machine: nothing logged"
    );
    assert!(
        results[3].is_empty(),
        "3 has no outbound inter-machine edge"
    );
    assert_eq!(
        results[1].len(),
        12,
        "rank 1 logs activations 1→2 (3 iters × 4 µb)"
    );
    assert!(results[1].iter().all(|k| k.contains("act_1to2")));
    assert_eq!(results[2].len(), 12, "rank 2 logs gradients 2→1");
    assert!(results[2].iter().all(|k| k.contains("grad_2to1")));
}

#[test]
fn whole_machine_failure_joint_recovery_is_bitwise_exact() {
    // Machine 1 (stages 2 and 3) dies at iteration 7; both its workers'
    // replacements recover jointly from the iteration-5 checkpoint and the
    // logs, replaying the inner 2↔3 edge live. Final states must match the
    // failure-free run bitwise.
    let iters = 10u64;
    let kill_at = 7u64;
    let expect = reference(iters);

    let global = GlobalStore::new_temp().unwrap();
    let cluster = Cluster::new(Topology::uniform(2, 2));
    let fc = cluster.failure_controller();
    let kv = cluster.kv();

    // Survivors: ranks 0 and 1 (machine 0).
    let mut survivors = Vec::new();
    for rank in [0usize, 1] {
        let g = global.clone();
        survivors.push(cluster.spawn(rank, move |mut ctx| {
            let topo = ctx.topology.clone();
            let store = BlobStore::new_temp("mr-m0").unwrap();
            let mut w = make_worker(ctx.rank(), &topo, ctx.rank(), &g, store);
            let data = data_source();
            let job = job();
            loop {
                if w.iteration >= iters {
                    return w.model.state();
                }
                match pipeline_train_iteration(&mut ctx, &job, &mut w, &data) {
                    Ok(_) => {
                        pipeline_maybe_checkpoint(&job, &mut w).unwrap();
                    }
                    Err(CommError::PeerFailed { .. }) => {
                        let gen = ctx.comm.failure_controller().generation();
                        pipeline_on_failure_survivor(&mut ctx, &mut w, &[0, 1]).unwrap();
                        recovery_fence(&mut ctx, Epoch::new(gen).fence_channel(2), &[0, 1, 2, 3])
                            .unwrap();
                    }
                    Err(e) => panic!("survivor {rank}: {e}"),
                }
            }
        }));
    }
    // Victims: ranks 2 and 3 (machine 1) — rendezvous, then the driver
    // kills the machine.
    let mut victims = Vec::new();
    for rank in [2usize, 3] {
        let g = global.clone();
        victims.push(cluster.spawn(rank, move |mut ctx| {
            let topo = ctx.topology.clone();
            let store = BlobStore::new_temp("mr-m1").unwrap();
            let mut w = make_worker(ctx.rank(), &topo, ctx.rank(), &g, store);
            let data = data_source();
            let job = job();
            loop {
                if w.iteration == kill_at {
                    ctx.kv.incr("mr-victims-ready");
                    while !ctx.comm.failure_controller().is_dead(ctx.rank()) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return None;
                }
                match pipeline_train_iteration(&mut ctx, &job, &mut w, &data) {
                    Ok(_) => {
                        pipeline_maybe_checkpoint(&job, &mut w).unwrap();
                    }
                    Err(CommError::SelfKilled) => return None::<ModelState>,
                    Err(e) => panic!("victim {rank}: {e}"),
                }
            }
        }));
    }

    while kv.get("mr-victims-ready").as_deref() != Some("2") {
        std::thread::sleep(Duration::from_millis(1));
    }
    fc.kill_machine(1);
    for v in victims {
        assert!(v.join().unwrap().is_none());
    }
    for r in [0usize, 1] {
        kv.wait_for(&format!("consensus/1/{r}"), Duration::from_secs(30))
            .expect("survivor consensus");
    }
    fc.replace_machine(1);

    // The replacement machine: two workers recovering stages 2 and 3
    // jointly (inner edge live).
    let mut repl = Vec::new();
    for rank in [2usize, 3] {
        let mut rctx = cluster.respawn(rank);
        let g = global.clone();
        repl.push(std::thread::spawn(move || {
            let topo = rctx.topology.clone();
            let store = BlobStore::new_temp("mr-m1b").unwrap();
            let mut w = make_worker(rank, &topo, rank, &g, store);
            let job = job();
            let data = data_source();
            let ckpt = w.ckpt.load_latest().unwrap().expect("ckpt");
            w.model.load_state(&ckpt.model);
            w.opt.load_state(&ckpt.optim);
            let from = ckpt.iteration;
            let mut consensus = u64::MAX;
            for r in [0usize, 1] {
                let v = rctx
                    .kv
                    .wait_for(&format!("consensus/1/{r}"), Duration::from_secs(30))
                    .expect("consensus");
                consensus = consensus.min(v.parse().unwrap());
            }
            // Fence the joint pair, replay, fence everyone, resume.
            recovery_fence(&mut rctx, Epoch::new(1).fence_channel(1), &[2, 3]).unwrap();
            let role = RecoveryRole {
                stage: rank, // stage == rank in this layout
                recovered_stages: vec![2, 3],
                group_ranks: vec![2, 3],
                replica: 0,
                num_replicas: 1,
                allreduce_peers: vec![rank],
            };
            let reader = WalReader::new(w.global.blob().clone());
            pipeline_replay(
                &mut rctx,
                &job,
                &role,
                &mut w.model,
                &mut *w.opt,
                &reader,
                &data,
                from,
                consensus,
            )
            .unwrap();
            w.iteration = consensus;
            recovery_fence(&mut rctx, Epoch::new(1).fence_channel(2), &[0, 1, 2, 3]).unwrap();
            loop {
                if w.iteration >= iters {
                    return w.model.state();
                }
                pipeline_train_iteration(&mut rctx, &job, &mut w, &data).unwrap();
                pipeline_maybe_checkpoint(&job, &mut w).unwrap();
            }
        }));
    }

    let s0 = survivors.remove(0).join().unwrap();
    let s1 = survivors.remove(0).join().unwrap();
    let s2 = repl.remove(0).join().unwrap();
    let s3 = repl.remove(0).join().unwrap();
    assert!(s0.bit_eq(&expect[0]), "stage 0");
    assert!(s1.bit_eq(&expect[1]), "stage 1");
    assert!(
        s2.bit_eq(&expect[2]),
        "stage 2 (jointly recovered, inner edge live)"
    );
    assert!(
        s3.bit_eq(&expect[3]),
        "stage 3 (jointly recovered, inner edge live)"
    );
}
