//! Process-backend chaos tests: real OS processes, real `SIGKILL`.
//!
//! Each rank runs as a separate `swift-worker` process over the
//! Unix-socket transport; the supervisor kills the victim with a real
//! `SIGKILL` at a progress trigger, waits for the heartbeat monitor to
//! declare the death, respawns a replacement, and the test asserts the
//! final model states agree with what the in-process backend produces
//! for the same recipe — bitwise across DP replicas, and within the
//! floating-point undo envelope (`< 1e-3`) against both the clean run
//! and the thread-backend crashed run with the same fault plan. (A real
//! `SIGKILL` lands at a physical instant, so whether the undo path — and
//! its ~1-ulp inversion residue — fires is timing-dependent; bitwise
//! claims live in the deterministic thread-backend tests.)
//!
//! These spawn real processes and poll real sockets, so they are out of
//! the default suite. Run them serialized:
//!
//! ```text
//! cargo test --test process_chaos -- --ignored --test-threads=1
//! ```

use std::time::Duration;

use swift::core::{
    dp_reference_dataset, dp_reference_model, pipeline_reference_dataset, pipeline_reference_model,
    run_process_scenario, DpScenario, PipelineScenario, ProcessKind, ProcessOutcome,
    ProcessScenario, REFERENCE_OPT,
};
use swift::net::FaultPlan;
use swift::pipeline::ScheduleKind;
use swift::wal::{LogMode, LogPrecision};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_swift-worker");

/// Lease expiry plus one monitor poll plus generous scheduling slack:
/// a detection past this is a broken detector, not an unlucky scheduler.
fn detection_bound(cfg: &ProcessScenario) -> Duration {
    cfg.heartbeat.timeout * 2 + Duration::from_secs(1)
}

fn assert_killed_and_detected(cfg: &ProcessScenario, out: &ProcessOutcome, victim: usize) {
    assert_eq!(out.kills_dirty, 1, "SIGKILL must not leave a clean exit");
    assert_eq!(out.respawned, vec![victim]);
    assert_eq!(out.detection.len(), 1);
    let bound = detection_bound(cfg);
    assert!(
        out.detection[0] <= bound,
        "death declared after {:?}, lease bound is {:?}",
        out.detection[0],
        bound
    );
}

#[test]
#[ignore = "spawns real processes; run with --ignored --test-threads=1"]
fn dp_sigkill_is_detected_and_converges_bitwise() {
    const VICTIM: usize = 1;
    const KILL_AT: u64 = 10;

    let mut cfg = ProcessScenario::new(ProcessKind::Dp, WORKER_BIN);
    cfg.faults = FaultPlan::new(0).kill_process(VICTIM, KILL_AT);
    let out = run_process_scenario(&cfg).expect("process scenario");
    assert_killed_and_detected(&cfg, &out, VICTIM);

    // The replication guarantee, now across real process boundaries:
    // the surviving replica and the respawned replacement agree
    // **bitwise** — same claim the in-process tests make.
    assert_eq!(out.states.len(), cfg.world);
    for s in &out.states[1..] {
        assert!(out.states[0].bit_eq(s), "replicas diverged");
    }
    // Training made it through the full budget (re-run iterations may
    // add duplicate loss entries, never remove any).
    assert!(out.losses.len() as u64 >= cfg.iters);

    // Against the in-process clean run, replication recovery is exact up
    // to the floating-point undo error — the same 1e-3 bound the
    // in-process recovery tests hold themselves to. (Bitwise equality
    // holds across replicas, not across recovered-vs-clean runs: the
    // undo inverts the partial update in floating point.)
    let clean = DpScenario::builder(dp_reference_model(), dp_reference_dataset())
        .machines(cfg.world)
        .opt(REFERENCE_OPT)
        .batch_size(cfg.batch)
        .iters(cfg.iters)
        .run();
    let drift = clean.states[0].max_abs_diff(&out.states[0]);
    assert!(drift < 1e-3, "drift {drift} vs the in-process clean run");

    // The thread-backend crashed run recovers from the same plan; both
    // backends must land within the same envelope of the clean run.
    let crashed = DpScenario::builder(dp_reference_model(), dp_reference_dataset())
        .machines(cfg.world)
        .opt(REFERENCE_OPT)
        .batch_size(cfg.batch)
        .iters(cfg.iters)
        .faults(FaultPlan::new(0).kill_process(VICTIM, KILL_AT))
        .run();
    assert!(crashed.recovered);
    let drift = crashed.states[0].max_abs_diff(&out.states[0]);
    assert!(drift < 1e-3, "drift {drift} vs the in-process crashed run");
}

/// The process-backend MTTR smoke: a real `SIGKILL` against a 3-replica
/// DP group, so the respawned replacement rejoins through the *sharded
/// multi-source* state transfer with two genuine sources (the 2-replica
/// test above degenerates to a single sender). Small shards force a
/// multi-round reassembly through the same shard schedule the
/// determinism matrix pins via `SWIFT_SHARD_BYTES`. The MTTR claims a
/// smoke can make across real processes: detection lands within the
/// lease bound, the replacement comes back, and recovery is exact —
/// bitwise across all three replicas, within the undo envelope of the
/// clean run.
#[test]
#[ignore = "spawns real processes; run with --ignored --test-threads=1"]
fn dp_sigkill_mttr_smoke_recovers_via_sharded_join() {
    const VICTIM: usize = 1;
    const KILL_AT: u64 = 10;

    std::env::set_var("SWIFT_SHARD_BYTES", "4096");
    let mut cfg = ProcessScenario::new(ProcessKind::Dp, WORKER_BIN);
    cfg.world = 3;
    cfg.faults = FaultPlan::new(0).kill_process(VICTIM, KILL_AT);
    let out = run_process_scenario(&cfg);
    std::env::remove_var("SWIFT_SHARD_BYTES");
    let out = out.expect("process scenario");
    assert_killed_and_detected(&cfg, &out, VICTIM);

    assert_eq!(out.states.len(), cfg.world);
    for s in &out.states[1..] {
        assert!(
            out.states[0].bit_eq(s),
            "replicas diverged after the sharded join"
        );
    }
    assert!(out.losses.len() as u64 >= cfg.iters);

    let clean = DpScenario::builder(dp_reference_model(), dp_reference_dataset())
        .machines(cfg.world)
        .opt(REFERENCE_OPT)
        .batch_size(cfg.batch)
        .iters(cfg.iters)
        .run();
    let drift = clean.states[0].max_abs_diff(&out.states[0]);
    assert!(drift < 1e-3, "drift {drift} vs the in-process clean run");
}

#[test]
#[ignore = "spawns real processes; run with --ignored --test-threads=1"]
fn pipeline_sigkill_mid_wal_flush_recovers_and_reports_torn_tail() {
    const VICTIM: usize = 1;
    const KILL_AT: u64 = 12; // between backstop checkpoints (interval 10)

    let mut cfg = ProcessScenario::new(ProcessKind::Pipeline, WORKER_BIN);
    cfg.faults = FaultPlan::new(0).kill_process(VICTIM, KILL_AT);
    cfg.torn_wal = true;
    let out = run_process_scenario(&cfg).expect("process scenario");
    assert_killed_and_detected(&cfg, &out, VICTIM);

    // The kill tore the victim's newest machine-local WAL record, and
    // the post-run audit *reported* it — replay skips torn tails, it
    // does not abort on them. The run still finished, which is the
    // "recoverable log" claim.
    assert_eq!(out.torn_injected, 1);
    assert_eq!(out.torn_reported, out.torn_injected);
    assert!(out.losses.len() as u64 >= cfg.iters);

    let reference = || {
        PipelineScenario::builder(pipeline_reference_model(), pipeline_reference_dataset())
            .stages(cfg.world)
            .opt(REFERENCE_OPT)
            .batch_size(cfg.batch)
            .microbatches(cfg.microbatches)
            .ckpt_interval(cfg.ckpt_interval)
            .iters(cfg.iters)
            .schedule(ScheduleKind::OneFOneB)
            .log_mode(LogMode::BubbleAsync)
            .log_precision(LogPrecision::F32)
    };

    // Every stage within the floating-point undo envelope of the
    // in-process clean run. Bitwise equality is NOT the contract here:
    // a real SIGKILL lands at a physical instant, so whether a survivor
    // sits one iteration past the consensus — and must *undo* its last
    // update, leaving the ~1-ulp inversion residue — depends on kill
    // timing. The thread backend aborts at deterministic points and so
    // can promise bitwise recovery; the process backend promises the
    // same 1e-3 envelope the replication tests hold the undo path to.
    let clean = reference().run();
    assert_eq!(out.states.len(), clean.states.len());
    for (stage, (got, want)) in out.states.iter().zip(&clean.states).enumerate() {
        let drift = got.max_abs_diff(want);
        assert!(
            drift < 1e-3,
            "stage {stage} drifted {drift} from the in-process clean run"
        );
    }

    // ...and of the thread-backend crashed run with the same plan.
    let crashed = reference()
        .faults(FaultPlan::new(0).kill_process(VICTIM, KILL_AT))
        .run();
    assert!(crashed.recovered);
    for (stage, (got, want)) in out.states.iter().zip(&crashed.states).enumerate() {
        let drift = got.max_abs_diff(want);
        assert!(
            drift < 1e-3,
            "stage {stage} drifted {drift} from the in-process crashed run"
        );
    }
}
