//! Integration: replication-based recovery across crates — real DP
//! training on the in-process cluster with mid-update crash injection
//! (paper §3–4, Fig. 5).

use std::sync::Arc;

use swift::core::{evaluate_state, DpScenario, ModelFn};
use swift::data::BlobsDataset;
use swift::dnn::models::mlp;
use swift::optim::OptimizerKind;

fn scenario(
    opt: OptimizerKind,
    crash: Option<(usize, u64, usize)>,
    iters: u64,
) -> swift::core::ScenarioResult {
    let model_fn: ModelFn = Arc::new(|| mlp("it", &[6, 24, 3], 77));
    let mut b = DpScenario::builder(model_fn, Arc::new(BlobsDataset::new(5, 6, 3, 0.3)))
        .machines(2)
        .opt(opt)
        .batch_size(16)
        .iters(iters);
    if let Some((m, it, g)) = crash {
        b = b.crash(m, it, g);
    }
    b.run()
}

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.001,
    momentum: 0.9,
    dampening: 0.0,
};

#[test]
fn recovered_run_matches_failure_free_trajectory() {
    let clean = scenario(SGDM, None, 40);
    let failed = scenario(SGDM, Some((1, 20, 2)), 40);
    assert!(failed.recovered);
    // Replicas bit-identical after recovery.
    assert!(failed.states[0].bit_eq(&failed.states[1]));
    // Trajectory matches failure-free within the floating-point undo error.
    let drift = clean.states[0].max_abs_diff(&failed.states[0]);
    assert!(drift < 1e-3, "drift {drift}");
}

#[test]
fn recovery_works_with_adam() {
    let opt = OptimizerKind::Adam {
        lr: 5e-3,
        weight_decay: 0.01,
    };
    let clean = scenario(opt, None, 30);
    let failed = scenario(opt, Some((0, 15, 1)), 30);
    assert!(failed.states[0].bit_eq(&failed.states[1]));
    let drift = clean.states[0].max_abs_diff(&failed.states[0]);
    assert!(drift < 1e-3, "drift {drift}");
}

#[test]
fn accuracy_unaffected_by_failure() {
    // The paper's Fig. 11a claim: update-undo does not change final model
    // quality.
    let model_fn: ModelFn = Arc::new(|| mlp("it", &[6, 24, 3], 77));
    let ds = BlobsDataset::new(5, 6, 3, 0.3);
    let clean = scenario(SGDM, None, 60);
    let failed = scenario(SGDM, Some((1, 30, 3)), 60);
    let a_clean = evaluate_state(&model_fn, &clean.states[0], &ds, 64, 8);
    let a_failed = evaluate_state(&model_fn, &failed.states[0], &ds, 64, 8);
    assert!(a_clean > 0.9, "baseline learns: {a_clean}");
    assert!((a_clean - a_failed).abs() < 0.03, "{a_clean} vs {a_failed}");
}

#[test]
fn crash_at_first_group_and_last_group() {
    // Edge positions of the crash window.
    for after_groups in [1usize, 4] {
        let failed = scenario(SGDM, Some((1, 10, after_groups)), 20);
        assert!(
            failed.states[0].bit_eq(&failed.states[1]),
            "after_groups={after_groups}"
        );
    }
}

#[test]
fn losses_continue_decreasing_after_recovery() {
    let failed = scenario(SGDM, Some((1, 20, 2)), 60);
    let early: f32 = failed.losses[2..6].iter().sum::<f32>() / 4.0;
    let late: f32 = failed.losses[failed.losses.len() - 4..].iter().sum::<f32>() / 4.0;
    assert!(
        late < early,
        "loss should keep decreasing: early {early} late {late}"
    );
}

#[test]
fn cnn_model_recovery_through_conv_layers() {
    // The Wide-ResNet stand-in (real Conv2d forward/backward) through the
    // full crash-consistency + replication path.
    use swift::dnn::models::wide_resnet_tiny;
    let model_fn: ModelFn = Arc::new(|| wide_resnet_tiny("wrn", 6, 8, 3, 13));
    let ds = Arc::new(BlobsDataset::new(19, 3 * 6 * 6, 3, 0.5));
    let run = |crash: Option<(usize, u64, usize)>| {
        let mut b = DpScenario::builder(model_fn.clone(), ds.clone())
            .machines(2)
            .opt(SGDM)
            .batch_size(8)
            .iters(10);
        if let Some((m, it, g)) = crash {
            b = b.crash(m, it, g);
        }
        b.run()
    };
    let clean = run(None);
    let failed = run(Some((1, 5, 3)));
    assert!(failed.states[0].bit_eq(&failed.states[1]));
    let drift = clean.states[0].max_abs_diff(&failed.states[0]);
    assert!(drift < 1e-3, "CNN recovery drift {drift}");
}
