//! Integration: strategy selection against the paper's model profiles,
//! plus smoke checks that every experiment harness regenerates its
//! table/figure.

use swift::core::{select_strategy, JobShape, Strategy};
use swift::dnn::profile::{all_models, RecoveryFamily, TESTBED};
use swift::wal::{cnn_pipeline_profile, evaluate_usecase};

#[test]
fn paper_models_route_to_the_paper_strategies() {
    // §7.1: replication for Wide-ResNet-50, logging for ViT/BERT.
    for model in all_models() {
        let report = evaluate_usecase(&model, &TESTBED);
        let shape = JobShape {
            cross_machine_replica: model.family == RecoveryFamily::Replication,
            cross_machine_pipeline: model.stages_per_machine > 0,
            logging_worth_it: report.worth_logging,
        };
        let strategy = select_strategy(shape);
        match model.family {
            RecoveryFamily::Replication => {
                assert_eq!(strategy, Strategy::Replication, "{}", model.name)
            }
            RecoveryFamily::Logging => {
                assert!(
                    matches!(strategy, Strategy::Logging { .. }),
                    "{}",
                    model.name
                )
            }
        }
    }
}

#[test]
fn hypothetical_cnn_pipeline_falls_back_to_checkpointing() {
    let cnn = cnn_pipeline_profile();
    let report = evaluate_usecase(&cnn, &TESTBED);
    let strategy = select_strategy(JobShape {
        cross_machine_replica: false,
        cross_machine_pipeline: true,
        logging_worth_it: report.worth_logging,
    });
    assert_eq!(strategy, Strategy::GlobalCheckpointOnly);
}

/// Every cheap experiment harness produces a non-trivial report containing
/// its identifying content. (fig11 — the real-training experiment — is
/// covered by `fig11_accuracy_experiment` below.)
#[test]
fn experiment_harnesses_regenerate_reports() {
    type Check = (&'static str, fn() -> String, &'static str);
    let checks: &[Check] = &[
        (
            "fig01",
            swift_bench::experiments::fig01_schedule,
            "bubble ratio",
        ),
        (
            "fig03",
            swift_bench::experiments::fig03_throughput_timeline,
            "checkfreq",
        ),
        (
            "table1",
            swift_bench::experiments::table1_operators,
            "AMSGrad",
        ),
        (
            "fig08a",
            swift_bench::experiments::fig08a_replication,
            "swift-replication",
        ),
        ("fig08b", swift_bench::experiments::fig08b_vit, "ViT-128/32"),
        ("fig08c", swift_bench::experiments::fig08c_bert, "BERT-128"),
        (
            "fig09",
            swift_bench::experiments::fig09_recovery_timeline,
            "recovery",
        ),
        (
            "table3",
            swift_bench::experiments::table3_logging_volume,
            "24.66",
        ),
        ("fig10", swift_bench::experiments::fig10_tradeoff, "storage"),
        (
            "table4",
            swift_bench::experiments::table4_workloads,
            "479.4",
        ),
        (
            "fig12",
            swift_bench::experiments::fig12_ckpt_freq,
            "interval",
        ),
        (
            "fig13",
            swift_bench::experiments::fig13_failure_freq,
            "MTBF",
        ),
        (
            "table6",
            swift_bench::experiments::table6_grouping_bert,
            "BERT-128",
        ),
        (
            "table7",
            swift_bench::experiments::table7_grouping_vit,
            "ViT-128/32",
        ),
    ];
    for (name, f, needle) in checks {
        let report = f();
        assert!(report.len() > 100, "{name} report too short");
        assert!(
            report.contains(needle),
            "{name} report missing '{needle}':\n{report}"
        );
    }
}

#[test]
fn table5_simulation_reproduces_speedup_ordering() {
    let report = swift_bench::experiments::table5_end_to_end();
    assert!(report.contains("Wide-ResNet-50"));
    assert!(report.contains("speedup"));
}

#[test]
fn fig11_accuracy_experiment() {
    // The real-training Fig. 11 harness: both sub-experiments must report
    // matching accuracies and the pipeline states must be bit-identical.
    let report = swift_bench::experiments::fig11_accuracy();
    assert!(
        report.contains("states bitwise identical: true"),
        "{report}"
    );
}
