//! Integration: multiple simultaneous failures and joint/independent
//! recovery (paper Appendix B).
//!
//! - Replication: two of three replicas die at once; the lone survivor's
//!   copy recovers both replacements.
//! - Logging, adjacent machines: two consecutive pipeline stages die and
//!   are *recovered jointly* — the inner boundary replays live between the
//!   two replacements, outer boundaries come from the logs.
//! - Logging, non-adjacent machines: the failed portions are recovered
//!   *independently*.

use std::sync::Arc;
use std::time::Duration;

use swift::ckpt::CheckpointManager;
use swift::core::{
    pipeline_maybe_checkpoint, pipeline_on_failure_survivor, pipeline_replay,
    pipeline_train_iteration, recovery_fence, replication_join, replication_recover_survivor,
    DatasetSource, DpWorker, PipelineJob, PipelineWorker, RecoveryRole,
};
use swift::data::{BlobsDataset, Dataset};
use swift::dnn::models::{mlp, split_stages};
use swift::dnn::{ModelState, Sequential};
use swift::net::{Cluster, CommError, Rank, Topology};
use swift::obs::Epoch;
use swift::optim::OptimizerKind;
use swift::pipeline::ScheduleKind;
use swift::store::{BlobStore, GlobalStore};
use swift::wal::{GroupMap, LogMode, Logger, WalReader};

const SGDM: OptimizerKind = OptimizerKind::SgdMomentum {
    lr: 0.05,
    weight_decay: 0.0,
    momentum: 0.9,
    dampening: 0.0,
};

// ---------------------------------------------------------------- helpers

fn pipeline_job(stages: usize) -> PipelineJob {
    PipelineJob {
        stage_ranks: (0..stages).collect(),
        microbatches: 4,
        kind: ScheduleKind::OneFOneB,
        ckpt_interval: 5,
        batch_size: 8,
    }
}

fn stage_model(stages: usize, stage: usize) -> Sequential {
    let dims: Vec<usize> = std::iter::once(8)
        .chain(std::iter::repeat_n(16, stages))
        .chain(std::iter::once(3))
        .collect();
    split_stages(mlp("mf", &dims, 31), stages)
        .into_iter()
        .nth(stage)
        .unwrap()
}

fn make_pworker(
    stages: usize,
    stage: usize,
    topo: &Topology,
    rank: Rank,
    global: &GlobalStore,
) -> PipelineWorker {
    PipelineWorker {
        stage,
        model: stage_model(stages, stage),
        opt: SGDM.build(),
        iteration: 0,
        logger: Logger::new(
            LogMode::BubbleAsync,
            topo.clone(),
            GroupMap::singletons(topo.num_machines()),
            BlobStore::new_temp(&format!("mf-m{rank}")).unwrap(),
        ),
        ckpt: CheckpointManager::new(global.blob().clone(), rank),
        global: global.clone(),
        last_grads: Vec::new(),
    }
}

fn data_source(stages: usize) -> DatasetSource {
    let _ = stages;
    DatasetSource {
        dataset: Arc::new(BlobsDataset::new(17, 8, 3, 0.3)),
        batch_size: 8,
        microbatches: 4,
    }
}

/// Failure-free reference states for a `stages`-stage pipeline.
fn pipeline_reference(stages: usize, iters: u64) -> Vec<ModelState> {
    let global = GlobalStore::new_temp().unwrap();
    Cluster::run_all(Topology::uniform(stages, 1), move |mut ctx| {
        let topo = ctx.topology.clone();
        let mut w = make_pworker(stages, ctx.rank(), &topo, ctx.rank(), &global);
        let data = data_source(stages);
        let job = pipeline_job(stages);
        for _ in 0..iters {
            pipeline_train_iteration(&mut ctx, &job, &mut w, &data).unwrap();
            pipeline_maybe_checkpoint(&job, &mut w).unwrap();
        }
        w.model.state()
    })
}

// ------------------------------------------------------------------ tests

#[test]
fn replication_survives_double_failure() {
    // 3 replicas; machines 1 and 2 die simultaneously at iteration 4. The
    // lone survivor (rank 0) recovers both replacements from its replica.
    let world = 3usize;
    let iters = 8u64;
    let cluster = Cluster::new(Topology::uniform(world, 1));
    let fc = cluster.failure_controller();
    let kv = cluster.kv();

    let spawn_worker = |rank: usize, cluster: &Cluster| {
        cluster.spawn(rank, move |mut ctx| {
            let ds = BlobsDataset::new(3, 6, 3, 0.3);
            let mut w = DpWorker::new(mlp("r", &[6, 12, 3], 5), SGDM.build());
            loop {
                if w.iteration >= iters {
                    return Some(w.model.state());
                }
                if ctx.rank() != 0 && w.iteration == 4 {
                    // Victims rendezvous and wait to be killed atomically.
                    ctx.kv.incr("victims-ready");
                    while !ctx.comm.failure_controller().is_dead(ctx.rank()) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return None;
                }
                let b = ds.batch(w.iteration, 12);
                let shard = swift::data::shard_batch(&b, ctx.rank(), 3);
                match swift::core::dp_train_step(
                    &mut ctx,
                    &mut w,
                    &[0, 1, 2],
                    &shard.x,
                    &shard.y,
                    1.0 / 12.0,
                    None,
                ) {
                    Ok(_) => {}
                    Err(CommError::SelfKilled) => return None,
                    Err(e @ CommError::Protocol { .. }) => panic!("protocol bug: {e}"),
                    Err(CommError::PeerFailed { .. }) => {
                        ctx.kv.set("survivor-detected", "1");
                        ctx.kv
                            .wait_for("replacements-up", Duration::from_secs(30))
                            .expect("no replacements");
                        replication_recover_survivor(&mut ctx, &mut w, &[0], &[0, 1, 2]).unwrap();
                    }
                }
            }
        })
    };
    let h0 = spawn_worker(0, &cluster);
    let h1 = spawn_worker(1, &cluster);
    let h2 = spawn_worker(2, &cluster);

    // Kill both victims atomically once they reach the rendezvous. The
    // first wait may observe either "1" or "2" depending on how quickly
    // the second victim increments behind the first.
    let ready = kv
        .wait_for("victims-ready", Duration::from_secs(30))
        .expect("victims ready");
    assert!(
        matches!(ready.as_str(), "1" | "2"),
        "unexpected rendezvous count {ready}"
    );
    while kv.get("victims-ready").as_deref() != Some("2") {
        std::thread::sleep(Duration::from_millis(1));
    }
    fc.kill_machines(&[1, 2]);
    assert!(h1.join().unwrap().is_none());
    assert!(h2.join().unwrap().is_none());
    kv.wait_for("survivor-detected", Duration::from_secs(30))
        .expect("survivor never detected");

    // Bring up both replacements.
    fc.replace_machine(1);
    fc.replace_machine(2);
    let mut handles = Vec::new();
    for mach in [1usize, 2] {
        let mut rctx = cluster.respawn(mach);
        handles.push(std::thread::spawn(move || {
            let mut w = replication_join(
                &mut rctx,
                mlp("r", &[6, 12, 3], 5),
                SGDM.build(),
                &[0],
                &[0, 1, 2],
            )
            .unwrap();
            let ds = BlobsDataset::new(3, 6, 3, 0.3);
            while w.iteration < iters {
                let b = ds.batch(w.iteration, 12);
                let shard = swift::data::shard_batch(&b, rctx.rank(), 3);
                swift::core::dp_train_step(
                    &mut rctx,
                    &mut w,
                    &[0, 1, 2],
                    &shard.x,
                    &shard.y,
                    1.0 / 12.0,
                    None,
                )
                .unwrap();
            }
            w.model.state()
        }));
    }
    kv.set("replacements-up", "1");

    let s0 = h0.join().unwrap().unwrap();
    let s1 = handles.remove(0).join().unwrap();
    let s2 = handles.remove(0).join().unwrap();
    assert!(
        s0.bit_eq(&s1) && s0.bit_eq(&s2),
        "all replicas identical after double recovery"
    );
}

/// Joint recovery of two *adjacent* failed machines (Appendix B): the
/// replacements replay together — live inner boundary, logged outer ones.
#[test]
fn adjacent_double_failure_recovered_jointly() {
    let stages = 4usize;
    let iters = 10u64;
    let kill_at = 7u64; // ckpt at 5 → replay iterations 5, 6
    let reference = pipeline_reference(stages, iters);

    let global = GlobalStore::new_temp().unwrap();
    let cluster = Cluster::new(Topology::uniform(stages, 1));
    let fc = cluster.failure_controller();
    let kv = cluster.kv();

    // Survivors: stages 0 and 3.
    let mut survivors = Vec::new();
    for rank in [0usize, 3] {
        let g = global.clone();
        survivors.push(cluster.spawn(rank, move |mut ctx| {
            let topo = ctx.topology.clone();
            let mut w = make_pworker(stages, ctx.rank(), &topo, ctx.rank(), &g);
            let data = data_source(stages);
            let job = pipeline_job(stages);
            loop {
                if w.iteration >= iters {
                    return w.model.state();
                }
                match pipeline_train_iteration(&mut ctx, &job, &mut w, &data) {
                    Ok(_) => {
                        pipeline_maybe_checkpoint(&job, &mut w).unwrap();
                    }
                    Err(CommError::PeerFailed { .. }) => {
                        let gen = ctx.comm.failure_controller().generation();
                        pipeline_on_failure_survivor(&mut ctx, &mut w, &[0, 3]).unwrap();
                        recovery_fence(&mut ctx, Epoch::new(gen).fence_channel(2), &[0, 1, 2, 3])
                            .unwrap();
                    }
                    Err(e) => panic!("survivor: {e}"),
                }
            }
        }));
    }
    // Victims: stages 1 and 2, rendezvous then die together.
    let mut victims = Vec::new();
    for rank in [1usize, 2] {
        let g = global.clone();
        victims.push(cluster.spawn(rank, move |mut ctx| {
            let topo = ctx.topology.clone();
            let mut w = make_pworker(stages, ctx.rank(), &topo, ctx.rank(), &g);
            let data = data_source(stages);
            let job = pipeline_job(stages);
            loop {
                if w.iteration == kill_at {
                    ctx.kv.incr("pp-victims-ready");
                    // Spin until killed; the next comm op reports it.
                    while !ctx.comm.failure_controller().is_dead(ctx.rank()) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return None;
                }
                match pipeline_train_iteration(&mut ctx, &job, &mut w, &data) {
                    Ok(_) => {
                        pipeline_maybe_checkpoint(&job, &mut w).unwrap();
                    }
                    Err(CommError::SelfKilled) => return None::<ModelState>,
                    Err(e) => panic!("victim: {e}"),
                }
            }
        }));
    }

    while kv.get("pp-victims-ready").as_deref() != Some("2") {
        std::thread::sleep(Duration::from_millis(1));
    }
    fc.kill_machines(&[1, 2]);
    for v in victims {
        assert!(v.join().unwrap().is_none());
    }
    // Wait for both survivors' consensus, then revive.
    for r in [0usize, 3] {
        kv.wait_for(&format!("consensus/1/{r}"), Duration::from_secs(30))
            .expect("survivor consensus");
    }
    fc.replace_machine(1);
    fc.replace_machine(2);

    // Joint replacements: stage 1 ↔ stage 2 replay with a live inner edge.
    let mut repl = Vec::new();
    for mach in [1usize, 2] {
        let mut rctx = cluster.respawn(mach);
        let g = global.clone();
        repl.push(std::thread::spawn(move || {
            let topo = rctx.topology.clone();
            let mut w = make_pworker(stages, mach, &topo, mach, &g);
            let job = pipeline_job(stages);
            let data = data_source(stages);
            let ckpt = w.ckpt.load_latest().unwrap().expect("ckpt");
            w.model.load_state(&ckpt.model);
            w.opt.load_state(&ckpt.optim);
            let from = ckpt.iteration;
            let consensus: u64 =
                kv_consensus(&rctx.kv, 1, &[0, 3]).expect("consensus from survivors");
            // Fence the joint replay pair (fresh comms, but symmetric).
            recovery_fence(&mut rctx, Epoch::new(1).fence_channel(1), &[1, 2]).unwrap();
            let role = RecoveryRole {
                stage: mach, // stage == rank in this layout
                recovered_stages: vec![1, 2],
                group_ranks: vec![1, 2],
                replica: 0,
                num_replicas: 1,
                allreduce_peers: vec![mach],
            };
            let reader = WalReader::new(w.global.blob().clone());
            pipeline_replay(
                &mut rctx,
                &job,
                &role,
                &mut w.model,
                &mut *w.opt,
                &reader,
                &data,
                from,
                consensus,
            )
            .unwrap();
            w.iteration = consensus;
            recovery_fence(&mut rctx, Epoch::new(1).fence_channel(2), &[0, 1, 2, 3]).unwrap();
            // Resume normal training.
            loop {
                if w.iteration >= iters {
                    return w.model.state();
                }
                pipeline_train_iteration(&mut rctx, &job, &mut w, &data).unwrap();
                pipeline_maybe_checkpoint(&job, &mut w).unwrap();
            }
        }));
    }

    let s0 = survivors.remove(0).join().unwrap();
    let s3 = survivors.remove(0).join().unwrap();
    let s1 = repl.remove(0).join().unwrap();
    let s2 = repl.remove(0).join().unwrap();
    assert!(s0.bit_eq(&reference[0]), "stage 0");
    assert!(s1.bit_eq(&reference[1]), "stage 1 (jointly recovered)");
    assert!(s2.bit_eq(&reference[2]), "stage 2 (jointly recovered)");
    assert!(s3.bit_eq(&reference[3]), "stage 3");
}

fn kv_consensus(kv: &swift::net::KvStore, generation: u64, survivors: &[Rank]) -> Option<u64> {
    let mut consensus = u64::MAX;
    for &r in survivors {
        let v = kv.wait_for(
            &format!("consensus/{generation}/{r}"),
            Duration::from_secs(30),
        )?;
        consensus = consensus.min(v.parse().ok()?);
    }
    Some(consensus)
}

/// Non-adjacent failures recover independently (Appendix B): stages 1 and
/// 3 of a 4-stage pipeline die; each replacement replays alone.
#[test]
fn non_adjacent_double_failure_recovered_independently() {
    let stages = 4usize;
    let iters = 10u64;
    let kill_at = 7u64;
    let reference = pipeline_reference(stages, iters);

    let global = GlobalStore::new_temp().unwrap();
    let cluster = Cluster::new(Topology::uniform(stages, 1));
    let fc = cluster.failure_controller();
    let kv = cluster.kv();

    let mut survivors = Vec::new();
    for rank in [0usize, 2] {
        let g = global.clone();
        survivors.push(cluster.spawn(rank, move |mut ctx| {
            let topo = ctx.topology.clone();
            let mut w = make_pworker(stages, ctx.rank(), &topo, ctx.rank(), &g);
            let data = data_source(stages);
            let job = pipeline_job(stages);
            loop {
                if w.iteration >= iters {
                    return w.model.state();
                }
                match pipeline_train_iteration(&mut ctx, &job, &mut w, &data) {
                    Ok(_) => {
                        pipeline_maybe_checkpoint(&job, &mut w).unwrap();
                    }
                    Err(CommError::PeerFailed { .. }) => {
                        let gen = ctx.comm.failure_controller().generation();
                        pipeline_on_failure_survivor(&mut ctx, &mut w, &[0, 2]).unwrap();
                        recovery_fence(&mut ctx, Epoch::new(gen).fence_channel(2), &[0, 1, 2, 3])
                            .unwrap();
                    }
                    Err(e) => panic!("survivor: {e}"),
                }
            }
        }));
    }
    let mut victims = Vec::new();
    for rank in [1usize, 3] {
        let g = global.clone();
        victims.push(cluster.spawn(rank, move |mut ctx| {
            let topo = ctx.topology.clone();
            let mut w = make_pworker(stages, ctx.rank(), &topo, ctx.rank(), &g);
            let data = data_source(stages);
            let job = pipeline_job(stages);
            loop {
                if w.iteration == kill_at {
                    ctx.kv.incr("pp2-victims-ready");
                    while !ctx.comm.failure_controller().is_dead(ctx.rank()) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    return None;
                }
                match pipeline_train_iteration(&mut ctx, &job, &mut w, &data) {
                    Ok(_) => {
                        pipeline_maybe_checkpoint(&job, &mut w).unwrap();
                    }
                    Err(CommError::SelfKilled) => return None::<ModelState>,
                    Err(e) => panic!("victim: {e}"),
                }
            }
        }));
    }

    while kv.get("pp2-victims-ready").as_deref() != Some("2") {
        std::thread::sleep(Duration::from_millis(1));
    }
    fc.kill_machines(&[1, 3]);
    for v in victims {
        assert!(v.join().unwrap().is_none());
    }
    for r in [0usize, 2] {
        kv.wait_for(&format!("consensus/1/{r}"), Duration::from_secs(30))
            .expect("survivor consensus");
    }
    fc.replace_machine(1);
    fc.replace_machine(3);

    // Independent replacements: each replays its own stage alone.
    let mut repl = Vec::new();
    for mach in [1usize, 3] {
        let mut rctx = cluster.respawn(mach);
        let g = global.clone();
        repl.push(std::thread::spawn(move || {
            let topo = rctx.topology.clone();
            let mut w = make_pworker(stages, mach, &topo, mach, &g);
            let job = pipeline_job(stages);
            let data = data_source(stages);
            let ckpt = w.ckpt.load_latest().unwrap().expect("ckpt");
            w.model.load_state(&ckpt.model);
            w.opt.load_state(&ckpt.optim);
            let from = ckpt.iteration;
            let consensus = kv_consensus(&rctx.kv, 1, &[0, 2]).expect("consensus");
            let role = RecoveryRole {
                stage: mach,
                recovered_stages: vec![mach],
                group_ranks: vec![mach],
                replica: 0,
                num_replicas: 1,
                allreduce_peers: vec![mach],
            };
            let reader = WalReader::new(w.global.blob().clone());
            pipeline_replay(
                &mut rctx,
                &job,
                &role,
                &mut w.model,
                &mut *w.opt,
                &reader,
                &data,
                from,
                consensus,
            )
            .unwrap();
            w.iteration = consensus;
            recovery_fence(&mut rctx, Epoch::new(1).fence_channel(2), &[0, 1, 2, 3]).unwrap();
            loop {
                if w.iteration >= iters {
                    return w.model.state();
                }
                pipeline_train_iteration(&mut rctx, &job, &mut w, &data).unwrap();
                pipeline_maybe_checkpoint(&job, &mut w).unwrap();
            }
        }));
    }

    let s0 = survivors.remove(0).join().unwrap();
    let s2 = survivors.remove(0).join().unwrap();
    let s1 = repl.remove(0).join().unwrap();
    let s3 = repl.remove(0).join().unwrap();
    assert!(s0.bit_eq(&reference[0]), "stage 0");
    assert!(s1.bit_eq(&reference[1]), "stage 1 (independent recovery)");
    assert!(s2.bit_eq(&reference[2]), "stage 2");
    assert!(s3.bit_eq(&reference[3]), "stage 3 (independent recovery)");
}
